//! Quickstart: evaluate a design with the simulated HLS toolchain, train a
//! tiny surrogate, and compare its prediction against the ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use design_space::DesignSpace;
use gnn_dse::trainer::TrainConfig;
use gnn_dse::{dbgen, Predictor};
use gdse_gnn::{ModelConfig, ModelKind};
use hls_ir::kernels;
use merlin_sim::MerlinSimulator;
use proggraph::build_graph_bidirectional;

fn main() {
    // 1. Pick a kernel and enumerate its Merlin pragma design space.
    let kernel = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&kernel);
    println!(
        "kernel `{}`: {} candidate pragmas, {} configurations",
        kernel.name(),
        space.num_slots(),
        space.size()
    );

    // 2. Evaluate two designs with the (simulated) Merlin + HLS toolchain.
    let sim = MerlinSimulator::new();
    let default = space.default_point();
    let tuned = space.point_at(space.size() / 2);
    let r0 = sim.evaluate(&kernel, &space, &default);
    let r1 = sim.evaluate(&kernel, &space, &tuned);
    println!("default design : {} cycles, {} DSPs, valid={}", r0.cycles, r0.counts.dsp, r0.is_valid());
    println!(
        "design {}: {} cycles, {} DSPs, valid={}",
        tuned.describe(space.slots()),
        r1.cycles,
        r1.counts.dsp,
        r1.is_valid()
    );

    // 3. Build a small training database and train the surrogate.
    let ks = vec![kernels::gemm_ncubed()];
    let db = dbgen::generate_database(&ks, &[("gemm-ncubed", 80)], 80, 7);
    println!("\ndatabase: {} designs ({} valid)", db.len(), db.valid_count());
    let (predictor, _) = Predictor::train(
        &db,
        &ks,
        ModelKind::Transformer,
        ModelConfig::small(),
        &TrainConfig::quick(),
    );

    // 4. Predict in milliseconds what the tool takes (simulated) minutes for.
    let graph = build_graph_bidirectional(&kernel, &space);
    let started = std::time::Instant::now();
    let pred = predictor.predict(&graph, &default);
    println!(
        "\nsurrogate on the default design ({:?}):",
        started.elapsed()
    );
    println!("  predicted: {} cycles (valid prob {:.2})", pred.cycles, pred.valid_prob);
    println!("  truth    : {} cycles  — modelled HLS time {:.1} min", r0.cycles, r0.synth_minutes);
}
