//! The paper's headline flow (§5.4): train on a set of kernels, then
//! optimize a kernel the model has *never seen* and validate the winners
//! with the HLS tool.
//!
//! ```sh
//! cargo run --release --example optimize_unseen
//! ```

use design_space::DesignSpace;
use gnn_dse::dse::{run_dse, DseConfig};
use gnn_dse::trainer::TrainConfig;
use gnn_dse::{dbgen, Predictor};
use gdse_gnn::{ModelConfig, ModelKind};
use hls_ir::kernels;
use merlin_sim::MerlinSimulator;

fn main() {
    // Train on three matrix/vector kernels...
    let train_kernels = vec![kernels::gemm_ncubed(), kernels::atax(), kernels::mvt()];
    let db = dbgen::generate_database(
        &train_kernels,
        &[("gemm-ncubed", 150), ("atax", 150), ("mvt", 150)],
        150,
        11,
    );
    println!("training database: {} designs from 3 kernels", db.len());
    let (predictor, _) = Predictor::train(
        &db,
        &train_kernels,
        ModelKind::Full,
        ModelConfig { hidden: 32, gnn_layers: 4, mlp_layers: 4, seed: 42 },
        &TrainConfig { epochs: 40, batch_size: 32, lr: 1e-3, seed: 0, grad_clip: 5.0 },
    );

    // ...then optimize gesummv, which the model has never seen.
    let unseen = kernels::gesummv();
    let space = DesignSpace::from_kernel(&unseen);
    println!(
        "\nunseen kernel `{}`: {} pragmas, {} configurations",
        unseen.name(),
        space.num_slots(),
        space.size()
    );

    let outcome = run_dse(&predictor, &unseen, &space, &DseConfig::default());
    println!(
        "DSE: {} inferences in {:?} ({})",
        outcome.inferences,
        outcome.wall,
        if outcome.exhaustive { "exhaustive" } else { "heuristic order" }
    );

    // Validate the top designs with the HLS tool (top-10, run in parallel in
    // the paper's flow).
    let sim = MerlinSimulator::new();
    let baseline = sim.evaluate(&unseen, &space, &space.default_point());
    println!("\nbaseline (no pragmas): {} cycles", baseline.cycles);
    println!("top designs after HLS validation:");
    let mut best = u64::MAX;
    for (rank, (point, pred)) in outcome.top.iter().enumerate() {
        let truth = sim.evaluate(&unseen, &space, point);
        if truth.is_valid() {
            best = best.min(truth.cycles);
        }
        println!(
            "  #{:<2} predicted {:>9} cycles | actual {:>9} ({}) | {}",
            rank + 1,
            pred.cycles,
            truth.cycles,
            truth.validity,
            point.describe(space.slots())
        );
    }
    if best != u64::MAX {
        println!(
            "\nbest validated design: {} cycles — {:.0}x faster than the unoptimized kernel",
            best,
            baseline.cycles as f64 / best as f64
        );
    }
}
