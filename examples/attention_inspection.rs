//! Inspecting what the model attends to (the Fig. 5 analysis): train a
//! small M7 model and rank the stencil graph's nodes by attention.
//!
//! ```sh
//! cargo run --release --example attention_inspection
//! ```

use design_space::DesignSpace;
use gdse_analysis::attention::{attention_scores, pragma_attention_share};
use gnn_dse::trainer::TrainConfig;
use gnn_dse::{dbgen, Predictor};
use gdse_gnn::{ModelConfig, ModelKind};
use hls_ir::kernels;
use proggraph::build_graph_bidirectional;

fn main() {
    let ks = vec![kernels::stencil(), kernels::gemm_ncubed()];
    let db = dbgen::generate_database(&ks, &[("stencil", 120), ("gemm-ncubed", 80)], 80, 3);
    let (predictor, _) = Predictor::train(
        &db,
        &ks,
        ModelKind::Full,
        ModelConfig::small(),
        &TrainConfig::quick().with_epochs(12),
    );

    let kernel = kernels::stencil();
    let space = DesignSpace::from_kernel(&kernel);
    let graph = build_graph_bidirectional(&kernel, &space);
    let point = space.point_at(space.size() / 3);

    println!("design: {}\n", point.describe(space.slots()));
    let scores = attention_scores(predictor.regressor(), &graph, &point);
    println!("top 10 nodes by attention:");
    for s in scores.iter().take(10) {
        println!("  node {:>3} {:<10} {:<12?} score {:.4}", s.node, s.key_text, s.kind, s.score);
    }
    println!(
        "\npragma nodes hold {:.1}% of the total attention",
        pragma_attention_share(&scores) * 100.0
    );
}
