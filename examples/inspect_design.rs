//! Design inspection workflow: render a configuration as Merlin C, explain
//! its performance with the per-loop synthesis report, and export the
//! program graph as Graphviz DOT (Fig. 1b style).
//!
//! ```sh
//! cargo run --release --example inspect_design
//! dot -Tpng /tmp/gemm_graph.dot -o gemm_graph.png   # if graphviz is installed
//! ```

use design_space::{emit::emit_configured, DesignSpace, PipelineOpt, PragmaValue};
use hls_ir::{kernels, PragmaKind};
use merlin_sim::MerlinSimulator;
use proggraph::dot::{to_dot, DotOptions};
use proggraph::build_graph_bidirectional;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&kernel);

    // A sensible hand-written configuration: fg-pipeline the j loop
    // (unrolling the dot product), 4-way parallel on the outer loop.
    let mut point = space.default_point();
    let l0 = kernel.loop_by_label("L0").unwrap();
    let l1 = kernel.loop_by_label("L1").unwrap();
    point.set_value(
        space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
        PragmaValue::Pipeline(PipelineOpt::Fine),
    );
    point.set_value(space.slot_index(l0, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(4));

    // 1. The Merlin C the tool would receive.
    println!("=== configured Merlin C ===");
    println!("{}", emit_configured(&kernel, &space, &point));

    // 2. The per-loop synthesis report (II, cycles).
    let sim = MerlinSimulator::new();
    let report = sim.report(&kernel, &space, &point).expect("design is valid");
    println!("=== loop report ===");
    println!("{:<6} {:>6} {:>9} {:>9} {:>6} {:>10}", "loop", "trip", "parallel", "pipeline", "II", "cycles");
    for r in &report {
        println!(
            "{:<6} {:>6} {:>9} {:>9} {:>6} {:>10}",
            r.label, r.trip_count, r.parallel, r.pipeline, r.ii, r.cycles
        );
    }
    let result = sim.evaluate(&kernel, &space, &point);
    println!(
        "\ntotal: {} cycles, {} DSPs ({:.1}% of the chip), {:.1} modelled synthesis minutes",
        result.cycles,
        result.counts.dsp,
        result.util.dsp * 100.0,
        result.synth_minutes
    );

    // 3. The program graph as DOT.
    let graph = build_graph_bidirectional(&kernel, &space);
    let dot = to_dot(&graph, &DotOptions { skip_reverse_edges: true, ..Default::default() });
    let path = std::env::temp_dir().join("gemm_graph.dot");
    std::fs::write(&path, &dot)?;
    println!("\nprogram graph written to {} ({} nodes)", path.display(), graph.num_nodes());
    Ok(())
}
