//! Database generation with the explorers of §4.1 and Pareto analysis of
//! the result.
//!
//! ```sh
//! cargo run --release --example explore_database
//! ```

use design_space::DesignSpace;
use gnn_dse::explorer::{BottleneckExplorer, Budget, HybridExplorer, RandomExplorer};
use gnn_dse::{pareto_front, Database, Evaluated, Explorer, Objective};
use hls_ir::kernels;
use merlin_sim::MerlinSimulator;

fn main() {
    let kernel = kernels::stencil();
    let space = DesignSpace::from_kernel(&kernel);
    let sim = MerlinSimulator::new();
    let mut db = Database::new();
    // Every explorer is parameterized by an Objective; the default latency
    // objective reproduces the classic "minimize cycles under eq. 7".
    let objective = Objective::latency();

    // 1. The AutoDSE-style bottleneck optimizer finds high-quality designs.
    let log = BottleneckExplorer::new().explore_scored(
        &sim,
        &kernel,
        &space,
        &mut db,
        Budget::evals(80),
        &objective,
    );
    println!(
        "bottleneck: {} evals, {:.0} modelled tool-minutes, best = {:?} cycles",
        log.evals,
        log.tool_minutes,
        log.best.as_ref().map(|(_, r)| r.cycles)
    );

    // 2. The hybrid explorer adds neighbors of the incumbents.
    let log = HybridExplorer::with_seed(1).explore_scored(
        &sim,
        &kernel,
        &space,
        &mut db,
        Budget::evals(60),
        &objective,
    );
    println!("hybrid    : db now {} entries (best {:?})", db.len(), log.best.map(|(_, r)| r.cycles));

    // 3. The random explorer covers what the guided ones skip.
    RandomExplorer::new(2).explore_scored(
        &sim,
        &kernel,
        &space,
        &mut db,
        Budget::evals(60),
        &objective,
    );
    println!("random    : db now {} entries", db.len());

    // Database statistics (the Table 1 shape).
    for (name, stats) in db.stats() {
        println!("\nkernel {name}: {} total / {} valid designs", stats.total, stats.valid);
    }
    if let Some((lo, hi)) = db.latency_range() {
        println!("latency range: {lo} .. {hi} cycles ({}x spread)", hi / lo.max(1));
    }

    // Pareto frontier over (cycles, DSP, BRAM, LUT, FF).
    let results: Vec<Evaluated> = db
        .of_kernel(kernel.name())
        .map(|e| Evaluated::new(e.point.clone(), e.result, 0, &objective))
        .collect();
    let front = pareto_front(&results);
    println!("\nPareto-optimal designs ({} of {}):", front.len(), results.len());
    let mut rows: Vec<_> = front
        .iter()
        .map(|&i| (results[i].result.cycles, results[i].result.counts.dsp, results[i].point.clone()))
        .collect();
    rows.sort_by_key(|(c, d, _)| (*c, *d));
    for (cycles, dsp, point) in rows.iter().take(8) {
        println!("  {:>9} cycles, {:>5} DSPs  {}", cycles, dsp, point.describe(space.slots()));
    }
}
