//! A deterministic TCP fault-injection proxy — the network-layer twin of
//! the oracle-layer `FaultyOracle`.
//!
//! The proxy sits between a client and the real server and misbehaves on
//! purpose: it can **drop** a connection at accept, **delay** forwarded
//! bytes, **truncate** a response mid-stream, or **kill** the connection
//! right after the first response bytes. Which fault (if any) a connection
//! suffers is decided by a seeded xorshift PRNG keyed on the connection
//! ordinal, so a given `(seed, connection #)` always misbehaves the same
//! way — chaos tests are reproducible, never flaky-by-construction.
//!
//! Faults corrupt *delivery*, never *content*: a byte that does arrive is
//! the byte the server sent. Clients therefore see hangs, EOFs, and
//! half-answers — exactly the failures [`crate::ClientConfig`] retries are
//! built for — and anything that parses is still a truthful response.

use crate::ServeError;
use gdse_obs as obs;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often forwarding loops wake up to check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Fault mix of a [`ChaosProxy`]. Rates are probabilities in `[0, 1]`,
/// evaluated per connection in ladder order (drop, delay, truncate, kill);
/// their sum should stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Close the connection immediately at accept (client sees EOF/reset).
    pub drop_rate: f64,
    /// Stall every forwarded chunk by [`ChaosConfig::delay`].
    pub delay_rate: f64,
    /// Forward only half of the first server chunk, then close.
    pub truncate_rate: f64,
    /// Forward the first server chunk, then close before the next.
    pub kill_rate: f64,
    /// The stall injected on delayed connections.
    pub delay: Duration,
    /// PRNG seed: same seed, same per-connection fault schedule.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_rate: 0.0,
            delay_rate: 0.0,
            truncate_rate: 0.0,
            kill_rate: 0.0,
            delay: Duration::from_millis(100),
            seed: 7,
        }
    }
}

/// What the proxy did, cumulatively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections dropped at accept.
    pub dropped: u64,
    /// Connections with injected delays.
    pub delayed: u64,
    /// Connections whose response was truncated mid-stream.
    pub truncated: u64,
    /// Connections killed right after the first response bytes.
    pub killed: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    truncated: AtomicU64,
    killed: AtomicU64,
}

/// Which fault a given connection suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Drop,
    Delay,
    Truncate,
    Kill,
}

/// Best-effort sniff of a `"trace_id": "<hex>"` field inside a forwarded
/// chunk — how the proxy learns which request a fault is about to hurt,
/// without parsing the protocol. Returns the *last* id in the chunk (the
/// request most recently pipelined is the one the next fault hits).
/// Values over 64 bytes are assumed to be hostile, not trace ids.
fn extract_trace_id(chunk: &[u8]) -> Option<String> {
    const KEY: &[u8] = b"\"trace_id\"";
    let mut found = None;
    let mut at = 0;
    while at + KEY.len() <= chunk.len() {
        let Some(pos) = chunk[at..]
            .windows(KEY.len())
            .position(|w| w == KEY)
            .map(|p| at + p)
        else {
            break;
        };
        at = pos + KEY.len();
        let mut i = at;
        while i < chunk.len() && (chunk[i] == b' ' || chunk[i] == b'\t') {
            i += 1;
        }
        if i >= chunk.len() || chunk[i] != b':' {
            continue;
        }
        i += 1;
        while i < chunk.len() && (chunk[i] == b' ' || chunk[i] == b'\t') {
            i += 1;
        }
        if i >= chunk.len() || chunk[i] != b'"' {
            continue;
        }
        i += 1;
        let start = i;
        while i < chunk.len() && chunk[i] != b'"' && i - start <= 64 {
            i += 1;
        }
        if i < chunk.len() && chunk[i] == b'"' {
            found = Some(String::from_utf8_lossy(&chunk[start..i]).into_owned());
        }
        at = i;
    }
    found
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Decides the fault for connection `ordinal` under `config` — a pure
/// function, so tests can predict the schedule.
fn fault_for(config: &ChaosConfig, ordinal: u64) -> Fault {
    let mut state = (config.seed ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    let draw = (xorshift(&mut state) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    let mut edge = config.drop_rate;
    if draw < edge {
        return Fault::Drop;
    }
    edge += config.delay_rate;
    if draw < edge {
        return Fault::Delay;
    }
    edge += config.truncate_rate;
    if draw < edge {
        return Fault::Truncate;
    }
    edge += config.kill_rate;
    if draw < edge {
        return Fault::Kill;
    }
    Fault::None
}

/// A running fault-injection proxy; dropping it (or calling
/// [`ChaosProxy::shutdown`]) stops the accept loop.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on `listen` (e.g. `"127.0.0.1:0"`) forwarding to
    /// `upstream`, injecting faults per `config`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when `listen` cannot be bound,
    /// [`ServeError::Protocol`] when `upstream` does not resolve.
    pub fn start(
        listen: &str,
        upstream: &str,
        config: ChaosConfig,
    ) -> Result<ChaosProxy, ServeError> {
        let upstream_addr = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol(format!("`{upstream}` resolves to no address")))?;
        let listener = TcpListener::bind(listen)
            .map_err(|source| ServeError::Bind { addr: listen.to_string(), source })?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                accept_loop(&listener, upstream_addr, config, &shutdown, &counters);
            })
        };
        Ok(ChaosProxy { addr, shutdown, counters, accept_thread: Some(accept_thread) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cumulative fault statistics.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.counters.connections.load(Ordering::SeqCst),
            dropped: self.counters.dropped.load(Ordering::SeqCst),
            delayed: self.counters.delayed.load(Ordering::SeqCst),
            truncated: self.counters.truncated.load(Ordering::SeqCst),
            killed: self.counters.killed.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting and winds down the forwarding threads.
    pub fn shutdown(&mut self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Unblock the accept loop.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    config: ChaosConfig,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut ordinal = 0u64;
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        counters.connections.fetch_add(1, Ordering::SeqCst);
        let fault = fault_for(&config, ordinal);
        ordinal += 1;
        if fault == Fault::Drop {
            counters.dropped.fetch_add(1, Ordering::SeqCst);
            // Dropped at accept: no bytes flowed, so no trace id to blame.
            obs::warn!(
                "chaos.fault",
                "connection #{} dropped at accept", ordinal - 1;
                fault = "drop",
                trace_id = "-",
                connection = ordinal - 1,
            );
            drop(client); // EOF before a single byte
            continue;
        }
        let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
            drop(client); // upstream down reads as a dropped connection
            continue;
        };
        match fault {
            Fault::Delay => {
                counters.delayed.fetch_add(1, Ordering::SeqCst);
            }
            Fault::Truncate => {
                counters.truncated.fetch_add(1, Ordering::SeqCst);
            }
            Fault::Kill => {
                counters.killed.fetch_add(1, Ordering::SeqCst);
            }
            Fault::None | Fault::Drop => {}
        }
        let shutdown = Arc::clone(shutdown);
        workers.push(std::thread::spawn(move || {
            forward_connection(client, server, fault, config.delay, &shutdown);
        }));
    }
    for w in workers {
        let _ = w.join();
    }
}

/// Forwards bytes both ways until either side closes, a fault fires, or
/// the proxy shuts down. The client→server path is always faithful;
/// response faults live on the server→client path.
fn forward_connection(
    client: TcpStream,
    server: TcpStream,
    fault: Fault,
    delay: Duration,
    shutdown: &Arc<AtomicBool>,
) {
    let _ = client.set_read_timeout(Some(POLL));
    let _ = server.set_read_timeout(Some(POLL));
    // The proxy's only latency should be the configured faults, not
    // Nagle stalls on the relayed writes.
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    // The client→server pump sniffs trace ids off forwarded requests into
    // this slot; the server→client pump reads it when a fault fires, so
    // the chaos log names its victim.
    let victim: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let up = {
        // client → server: faithful.
        let (mut from, mut to) = match (client.try_clone(), server.try_clone()) {
            (Ok(f), Ok(t)) => (f, t),
            _ => return,
        };
        let shutdown = Arc::clone(shutdown);
        let victim = Arc::clone(&victim);
        std::thread::spawn(move || {
            pump(&mut from, &mut to, Pump::Sniff(&victim), Fault::None, delay, &shutdown);
        })
    };
    // server → client: where response faults are injected.
    let (mut from, mut to) = (server, client);
    pump(&mut from, &mut to, Pump::Inject(&victim), fault, delay, shutdown);
    let _ = up.join();
}

/// Which side of the connection a [`pump`] relays, and its relationship
/// to the shared victim slot.
enum Pump<'a> {
    /// client → server: records the last trace id seen in a request.
    Sniff(&'a Mutex<Option<String>>),
    /// server → client: blames the recorded id when a fault fires.
    Inject(&'a Mutex<Option<String>>),
}

/// The trace id the next fault should blame: the last one sniffed, or
/// `"-"` for untraced traffic.
fn victim_id(slot: &Mutex<Option<String>>) -> String {
    slot.lock()
        .ok()
        .and_then(|v| v.clone())
        .unwrap_or_else(|| "-".into())
}

fn log_fault(name: &str, slot: &Mutex<Option<String>>) {
    let trace_id = victim_id(slot);
    obs::warn!(
        "chaos.fault",
        "injected {name} (victim trace {trace_id})";
        fault = name,
        trace_id = trace_id.clone(),
    );
}

fn pump(
    from: &mut TcpStream,
    to: &mut TcpStream,
    role: Pump<'_>,
    fault: Fault,
    delay: Duration,
    shutdown: &Arc<AtomicBool>,
) {
    let mut buf = [0u8; 4096];
    let mut chunks_forwarded = 0u64;
    let mut delay_logged = false;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        if let Pump::Sniff(slot) = &role {
            if let Some(id) = extract_trace_id(&buf[..n]) {
                if let Ok(mut v) = slot.lock() {
                    *v = Some(id);
                }
            }
        }
        match (&role, fault) {
            (Pump::Inject(slot), Fault::Delay) => {
                // Delay fires per chunk; one log line per connection is
                // enough to correlate.
                if !delay_logged {
                    log_fault("delay", slot);
                    delay_logged = true;
                }
                std::thread::sleep(delay);
            }
            (Pump::Inject(slot), Fault::Truncate) if chunks_forwarded == 0 => {
                // Half the first response chunk, then a hard close: the
                // client is left holding an unparseable partial line.
                log_fault("truncate", slot);
                let _ = to.write_all(&buf[..n / 2]);
                let _ = to.shutdown(std::net::Shutdown::Both);
                let _ = from.shutdown(std::net::Shutdown::Both);
                return;
            }
            (Pump::Inject(slot), Fault::Kill) if chunks_forwarded >= 1 => {
                // The first chunk went through whole; die before the next.
                log_fault("kill", slot);
                let _ = to.shutdown(std::net::Shutdown::Both);
                let _ = from.shutdown(std::net::Shutdown::Both);
                return;
            }
            _ => {}
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        chunks_forwarded += 1;
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_rate_shaped() {
        let config = ChaosConfig {
            drop_rate: 0.25,
            delay_rate: 0.25,
            truncate_rate: 0.0,
            kill_rate: 0.0,
            ..ChaosConfig::default()
        };
        let a: Vec<Fault> = (0..100).map(|i| fault_for(&config, i)).collect();
        let b: Vec<Fault> = (0..100).map(|i| fault_for(&config, i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let drops = a.iter().filter(|f| **f == Fault::Drop).count();
        let clean = a.iter().filter(|f| **f == Fault::None).count();
        assert!(drops > 5 && drops < 50, "drop rate wildly off: {drops}/100");
        assert!(clean > 25, "too few clean connections: {clean}/100");
        let zero = ChaosConfig::default();
        assert!((0..100).all(|i| fault_for(&zero, i) == Fault::None));
    }

    #[test]
    fn trace_ids_are_sniffed_from_forwarded_chunks() {
        // The normal shapes: with and without whitespace, mid-chunk.
        assert_eq!(
            extract_trace_id(br#"{"id": 1, "kernel": "gemm", "trace_id": "00000000deadbeef"}"#),
            Some("00000000deadbeef".into())
        );
        assert_eq!(
            extract_trace_id(b"{\"trace_id\":\"abc123\"}"),
            Some("abc123".into())
        );
        // Two pipelined requests: the last id wins (it's the next victim).
        assert_eq!(
            extract_trace_id(
                b"{\"trace_id\": \"1111111111111111\"}\n{\"trace_id\": \"2222222222222222\"}\n"
            ),
            Some("2222222222222222".into())
        );
        // No field, wrong type, unterminated, or absurdly long: nothing.
        assert_eq!(extract_trace_id(b"{\"id\": 1}"), None);
        assert_eq!(extract_trace_id(b"{\"trace_id\": 42}"), None);
        assert_eq!(extract_trace_id(b"{\"trace_id\": \"unterminat"), None);
        let long = format!("{{\"trace_id\": \"{}\"}}", "a".repeat(200));
        assert_eq!(extract_trace_id(long.as_bytes()), None);
    }

    #[test]
    fn clean_proxy_is_transparent() {
        // An upstream that echoes one line and closes.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap().to_string();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        let mut proxy =
            ChaosProxy::start("127.0.0.1:0", &upstream_addr, ChaosConfig::default()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping\n").unwrap();
        let mut got = [0u8; 5];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ping\n");
        echo.join().unwrap();
        proxy.shutdown();
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats, ChaosStats { connections: 1, ..ChaosStats::default() });
    }

    #[test]
    fn drop_all_proxy_gives_immediate_eof() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap().to_string();
        let config = ChaosConfig { drop_rate: 1.0, ..ChaosConfig::default() };
        let mut proxy = ChaosProxy::start("127.0.0.1:0", &upstream_addr, config).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf).unwrap(), 0, "dropped connection reads EOF");
        proxy.shutdown();
        assert_eq!(proxy.stats().dropped, 1);
    }
}
