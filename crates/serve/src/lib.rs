//! # gdse-serve
//!
//! The fault-tolerant prediction service of the GNN-DSE reproduction: a
//! JSON-lines-over-TCP server that answers surrogate QoR queries from a
//! supervised pool of model replicas, built on `std` networking only (no
//! external dependencies, matching the `gdse-obs` / `gdse-exec` pattern).
//!
//! The crate is deliberately model-agnostic: it knows nothing about GNNs,
//! kernels, or design spaces. A backend implements [`BatchPredictor`]
//! (`(kernel, design-point indices) -> prediction rows`), a
//! [`ModelProvider`] versions backends by **epoch** (for hot swap), and
//! the server supplies everything around them:
//!
//! * a **supervised replica pool** — N replicas, each owning a private
//!   backend and a bounded queue, with per-kernel consistent shard routing
//!   so per-kernel caches stay hot; a panicking, killed, or wedged replica
//!   is isolated, its in-flight requests are re-routed to siblings, and it
//!   restarts under exponential backoff (see [`crate::pool`]'s module docs
//!   for the degradation ladder);
//! * **zero-downtime hot swap** — a `{"reload": true}` request (or a
//!   watched artifact changing on disk) makes every replica rebuild from
//!   the provider's new epoch at its next batch boundary; a version that
//!   fails validation is rolled back while the previous model keeps
//!   serving, and every `ok` response is tagged with the epoch that
//!   produced it;
//! * **bounded queues + load shedding** — a full queue rejects immediately
//!   with 429 + `retry_after_ms` instead of queueing unboundedly;
//!   overload is never spilled across replicas (backpressure must reach
//!   the client, not cascade);
//! * **hardened edges** — request lines are size-capped (413 on
//!   violation, connection stays in sync), connections can carry an idle
//!   timeout (408), handlers answer 504 past a request deadline, and the
//!   bundled [`Client`] adds connect/read timeouts with jittered bounded
//!   retries;
//! * **chaos tooling** — [`ChaosProxy`] injects deterministic TCP faults
//!   (drop/delay/truncate/kill) between client and server, and
//!   [`ServerHandle::kill_replica`] crashes replicas on purpose, so the
//!   failure story is tested, not asserted;
//! * **graceful shutdown** — a protocol-level `{"shutdown": true}`
//!   request, a [`ServerHandle::shutdown`] call, or a served-request limit
//!   all drain in-flight work before the server returns;
//! * **`serve.*` metrics** — the full catalog (epoch gauge, restart /
//!   reroute / shed / reload-failure counters, latency and batch-size
//!   histograms) is documented in [`crate::server`] and merged into the
//!   caller's [`gdse_obs`] registry when [`Server::run`] returns.
//!
//! ## Protocol
//!
//! One JSON object per line, newline-terminated, over TCP:
//!
//! ```text
//! -> {"id": 7, "kernel": "gemm-ncubed", "index": 123}
//! <- {"id": 7, "status": "ok", "code": 200, "epoch": 3, "valid_prob": 0.93,
//!     "cycles": 5113, "dsp": 0.21, "bram": 0.08, "lut": 0.17, "ff": 0.12}
//! -> {"id": 8, "kernel": "gemm-ncubed", "index": 124}     (queue full)
//! <- {"id": 8, "status": "rejected", "code": 429, "retry_after_ms": 50,
//!     "error": "prediction queue full"}
//! -> {"reload": true}
//! <- {"status": "reloaded", "code": 200, "epoch": 4}
//! -> {"kill_replica": 1}
//! <- {"status": "killed", "code": 200, "replica": 1}
//! -> {"shutdown": true}
//! <- {"status": "shutting_down", "code": 200}
//! ```
//!
//! Responses carry the request `id`, so a pipelining client can correlate
//! them; the bundled [`Client`] issues one request at a time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod client;
mod pool;
mod protocol;
mod queue;
mod server;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use client::{Client, ClientConfig};
pub use pool::{
    BatchPredictor, LearnStatusSource, ModelProvider, StaticProvider, BATCH_EDGES, MAX_ATTEMPTS,
};
pub use protocol::{parse_request, PredictionRow, Request, Response};
pub use server::{ServeConfig, ServeStats, Server, ServerHandle};

use std::fmt;
use std::io;
use std::time::Duration;

/// Failures of the serve layer (bind, socket I/O, malformed protocol,
/// timeouts, retry exhaustion).
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not be bound.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A socket read/write failed.
    Io(io::Error),
    /// The peer sent something that is not valid protocol.
    Protocol(String),
    /// A connect or read gave no answer within its deadline.
    Timeout {
        /// The deadline that expired.
        after: Duration,
    },
    /// Every configured retry failed; `last` is the terminal failure.
    RetriesExhausted {
        /// Total attempts made (initial + retries).
        attempts: u32,
        /// The failure of the final attempt.
        last: Box<ServeError>,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Timeout { after } => write!(f, "no answer within {after:?}"),
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(_) | ServeError::Timeout { .. } => None,
            ServeError::RetriesExhausted { last, .. } => Some(last.as_ref()),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
