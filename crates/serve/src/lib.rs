//! # gdse-serve
//!
//! The prediction service of the GNN-DSE reproduction: a JSON-lines-over-TCP
//! server that answers surrogate QoR queries from a persisted model, built on
//! `std` networking only (no external dependencies, matching the `gdse-obs` /
//! `gdse-exec` pattern).
//!
//! The crate is deliberately model-agnostic: it knows nothing about GNNs,
//! kernels, or design spaces. A backend implements [`BatchPredictor`]
//! (`(kernel, design-point indices) -> prediction rows`), and the server
//! supplies everything around it:
//!
//! * a **bounded request queue** — when it is full, new requests are
//!   *rejected immediately* with a 429-style JSON response instead of
//!   queueing unboundedly or hanging the client (backpressure);
//! * a **micro-batcher** — one dispatcher thread drains the queue in batches
//!   of up to `max_batch` requests, groups them by kernel, and answers each
//!   group with a single [`BatchPredictor::predict`] call, so concurrent
//!   clients amortize graph encoding exactly like the offline
//!   `predict_batch` path;
//! * **graceful shutdown** — a protocol-level `{"shutdown": true}` request,
//!   a [`ServerHandle::shutdown`] call, or an optional served-request limit
//!   all drain in-flight work before the server returns;
//! * **`serve.*` metrics** — queue depth gauge, batch-size histogram, and a
//!   request latency histogram (p50/p99 derivable from its buckets), merged
//!   into the caller's [`gdse_obs`] registry when [`Server::run`] returns.
//!
//! ## Protocol
//!
//! One JSON object per line, newline-terminated, over TCP:
//!
//! ```text
//! -> {"id": 7, "kernel": "gemm-ncubed", "index": 123}
//! <- {"id": 7, "status": "ok", "code": 200, "valid_prob": 0.93, "cycles": 5113,
//!     "dsp": 0.21, "bram": 0.08, "lut": 0.17, "ff": 0.12}
//! -> {"id": 8, "kernel": "gemm-ncubed", "index": 124}     (queue full)
//! <- {"id": 8, "status": "rejected", "code": 429, "error": "prediction queue full"}
//! -> {"shutdown": true}
//! <- {"status": "shutting_down", "code": 200}
//! ```
//!
//! Responses carry the request `id`, so a pipelining client can correlate
//! them; the bundled [`Client`] issues one request at a time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod protocol;
mod queue;
mod server;

pub use client::Client;
pub use protocol::{parse_request, PredictionRow, Request, Response};
pub use server::{BatchPredictor, ServeConfig, ServeStats, Server, ServerHandle};

use std::fmt;
use std::io;

/// Failures of the serve layer (bind, socket I/O, malformed protocol).
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not be bound.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A socket read/write failed.
    Io(io::Error),
    /// The peer sent something that is not valid protocol.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}
