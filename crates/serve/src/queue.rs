//! The bounded request queue between connection handlers and the batcher.
//!
//! `try_push` never blocks: a full (or closed) queue returns the item to the
//! caller, which turns it into a 429-style rejection. That is the whole
//! backpressure model — producers are rejected, never parked, so a client
//! always gets *an* answer promptly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Callback invoked with the queue's new depth after every enqueue and
/// dequeue — how the serving tier keeps a live `serve.queue_depth{replica}`
/// gauge without polling. Called *after* the queue lock is released, so
/// observers may take their own locks freely.
pub(crate) type DepthObserver = Box<dyn Fn(usize) + Send + Sync>;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A mutex+condvar bounded MPSC queue with batch draining.
pub(crate) struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    ready: Condvar,
    observer: Option<DepthObserver>,
}

/// Why `try_push` gave the item back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

impl<T> BoundedQueue<T> {
    /// A queue with no depth observer — the production path always
    /// attaches one, so this shorthand only serves the unit tests.
    #[cfg(test)]
    pub fn new(capacity: usize) -> Self {
        Self::with_observer(capacity, None)
    }

    /// A queue that reports its depth to `observer` after every mutation.
    pub fn with_observer(capacity: usize, observer: Option<DepthObserver>) -> Self {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            capacity,
            ready: Condvar::new(),
            observer,
        }
    }

    fn observe(&self, depth: usize) {
        if let Some(f) = &self.observer {
            f(depth);
        }
    }

    /// Enqueues without blocking; a full or closed queue returns the item.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.ready.notify_one();
        self.observe(depth);
        Ok(())
    }

    /// Waits up to `timeout` for at least one item, then drains up to `max`.
    /// Returns an empty vec on timeout; `None` once the queue is closed
    /// *and* empty (the consumer's exit signal).
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Option<Vec<T>> {
        let mut s = self.state.lock().expect("queue lock");
        while s.items.is_empty() {
            if s.closed {
                return None;
            }
            let (next, wait) = self.ready.wait_timeout(s, timeout).expect("queue lock");
            s = next;
            if wait.timed_out() && s.items.is_empty() {
                return if s.closed { None } else { Some(Vec::new()) };
            }
        }
        let n = s.items.len().min(max.max(1));
        let batch: Vec<T> = s.items.drain(..n).collect();
        let depth = s.items.len();
        drop(s);
        self.observe(depth);
        Some(batch)
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Empties the queue without waiting — how the supervisor strands a
    /// dead replica's backlog before re-routing it to siblings.
    pub fn drain_all(&self) -> Vec<T> {
        let mut s = self.state.lock().expect("queue lock");
        let drained: Vec<T> = s.items.drain(..).collect();
        drop(s);
        self.observe(0);
        drained
    }

    /// Closes the queue: future pushes are rejected, the consumer drains
    /// what is left and then sees `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3).unwrap_err(), (3, PushError::Full));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4).unwrap_err(), (4, PushError::Closed));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1).unwrap_err(), (1, PushError::Full));
    }

    #[test]
    fn drains_in_fifo_batches() {
        let q = BoundedQueue::new(10);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let a = q.pop_batch(3, Duration::from_millis(10)).unwrap();
        assert_eq!(a, vec![0, 1, 2]);
        let b = q.pop_batch(3, Duration::from_millis(10)).unwrap();
        assert_eq!(b, vec![3, 4]);
        assert_eq!(q.pop_batch(3, Duration::from_millis(1)), Some(vec![]));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(10);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.pop_batch(8, Duration::from_millis(10)), Some(vec![1]));
        assert_eq!(q.pop_batch(8, Duration::from_millis(10)), None);
    }

    #[test]
    fn depth_observer_sees_every_enqueue_and_dequeue() {
        use std::sync::Arc;
        let seen = Arc::new(Mutex::new(Vec::<usize>::new()));
        let sink = Arc::clone(&seen);
        let q = BoundedQueue::with_observer(
            4,
            Some(Box::new(move |d| sink.lock().unwrap().push(d))),
        );
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.pop_batch(1, Duration::from_millis(5)).unwrap();
        q.try_push(3).unwrap();
        q.drain_all();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2, 1, 2, 0]);
    }

    #[test]
    fn waiting_consumer_wakes_on_push() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(t.join().unwrap(), Some(vec![42]));
    }
}
