//! The JSON-lines wire protocol: request parsing and response formatting.
//!
//! Messages are built and inspected through the [`serde::Value`] data model
//! directly (no derives), so the wire shape is explicit in this file and a
//! malformed peer message degrades into a typed error string instead of a
//! panic.
//!
//! Every successful prediction carries the **model epoch** that served it:
//! clients observing a hot-swap see the epoch change mid-stream and can
//! correlate answers with model versions. Rejections carry a
//! `retry_after_ms` hint so a shedding server steers clients into backoff
//! instead of a tight retry loop.
//!
//! **Trace ids.** Predict requests may carry a `trace_id` (16 hex chars);
//! the server echoes it on the response and threads it through every hop
//! so logs, the flight recorder, and chaos-proxy fault records all
//! correlate. The field is optional in both directions: requests without
//! one get an id minted at ingress, and a *malformed* id is treated as
//! absent (minted over) rather than rejected — tracing must never turn a
//! servable request into an error. Responses append `trace_id` as an
//! extra top-level field via [`Response::to_json_line_traced`], which old
//! clients ignore by construction (parsing is field-tolerant).

use gdse_obs as obs;
use serde::Value;

/// One predicted row, as served over the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionRow {
    /// Probability the design synthesizes successfully.
    pub valid_prob: f64,
    /// Predicted latency in cycles.
    pub cycles: u64,
    /// Predicted DSP utilization.
    pub dsp: f64,
    /// Predicted BRAM utilization.
    pub bram: f64,
    /// Predicted LUT utilization.
    pub lut: f64,
    /// Predicted FF utilization.
    pub ff: f64,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict QoR of design-point `index` of `kernel`.
    Predict {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Kernel name.
        kernel: String,
        /// Design-point index into the kernel's design space.
        index: u128,
        /// Normalized trace id, if the client sent a well-formed one
        /// (absent or malformed → the server mints one at ingress).
        trace: Option<String>,
    },
    /// Ask the server to drain and exit.
    Shutdown,
    /// Ask the server to re-read its model artifact and cut over.
    Reload,
    /// Chaos drill: crash one replica (it restarts under supervision).
    KillReplica {
        /// Zero-based replica index.
        replica: usize,
    },
    /// Ask for a live telemetry snapshot of the running server.
    Stats,
    /// Ask for the continuous-learning driver's status (round, epoch,
    /// replay-buffer depth, last fine-tune loss). Only a daemon-mode
    /// server has one; a plain server answers 404.
    LearnStatus,
    /// Fetch traces from the flight recorder: a specific id, or `"slow"`
    /// for the slowest remembered requests.
    Trace {
        /// `"slow"` or a 16-hex-char trace id.
        query: String,
    },
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_u128(v: &Value) -> Option<u128> {
    match v {
        Value::Int(i) => u128::try_from(*i).ok(),
        // Indices beyond i128 don't occur in practice, but accept strings so
        // clients never have to worry about integer width.
        Value::Str(s) => s.parse().ok(),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable description of what is malformed; the server
/// reports it back as a `status: "error"` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = value.as_map().ok_or("request must be a JSON object")?;
    if let Some(v) = get(map, "shutdown") {
        if *v == Value::Bool(true) {
            return Ok(Request::Shutdown);
        }
    }
    if let Some(v) = get(map, "reload") {
        if *v == Value::Bool(true) {
            return Ok(Request::Reload);
        }
    }
    if let Some(v) = get(map, "kill_replica") {
        let replica = as_u64(v).ok_or("`kill_replica` needs a non-negative replica index")?;
        return Ok(Request::KillReplica { replica: replica as usize });
    }
    if let Some(v) = get(map, "stats") {
        if *v == Value::Bool(true) {
            return Ok(Request::Stats);
        }
    }
    if let Some(v) = get(map, "learn-status") {
        if *v == Value::Bool(true) {
            return Ok(Request::LearnStatus);
        }
    }
    if let Some(v) = get(map, "trace") {
        let query = v.as_str().ok_or("`trace` needs a string query (an id, or \"slow\")")?;
        return Ok(Request::Trace { query: query.to_string() });
    }
    let id = get(map, "id")
        .and_then(as_u64)
        .ok_or("request needs a non-negative integer `id`")?;
    let kernel = get(map, "kernel")
        .and_then(|v| v.as_str())
        .ok_or("request needs a string `kernel`")?
        .to_string();
    let index = get(map, "index")
        .and_then(as_u128)
        .ok_or("request needs a non-negative integer `index`")?;
    // A malformed id is *normalized away*, not an error: tracing is an
    // overlay and must never cost a client its prediction.
    let trace = get(map, "trace_id")
        .and_then(|v| v.as_str())
        .and_then(obs::trace::TraceId::parse)
        .map(|t| t.to_string());
    Ok(Request::Predict { id, kernel, index, trace })
}

/// A server response, one per request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The prediction succeeded.
    Ok {
        /// Echo of the request id.
        id: u64,
        /// Model epoch of the replica that answered (0 = unversioned).
        epoch: u64,
        /// The predicted row.
        row: PredictionRow,
    },
    /// The bounded queue was full — backpressure, try again later.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The request was understood but could not be served.
    Error {
        /// Echo of the request id (0 when the id itself was unreadable).
        id: u64,
        /// HTTP-style status code (400 bad request, 413 too large,
        /// 500 replica failure, 503 unavailable, 504 deadline exceeded).
        code: u32,
        /// What went wrong.
        message: String,
    },
    /// Acknowledgement of a reload request, with the new model epoch.
    Reloaded {
        /// The model epoch now serving.
        epoch: u64,
    },
    /// Acknowledgement of a kill-replica chaos drill.
    Killed {
        /// The replica that was crashed.
        replica: usize,
    },
    /// Acknowledgement of a shutdown request.
    ShuttingDown,
    /// Live telemetry snapshot of the running server.
    Stats {
        /// The snapshot document (replicas, histograms, percentiles, …).
        body: Value,
    },
    /// Traces fetched from the flight recorder.
    Trace {
        /// An array of trace documents (possibly empty).
        body: Value,
    },
    /// Status of the continuous-learning driver attached to the server.
    LearnStatus {
        /// The status document (round, epoch, buffer depth, last loss, …).
        body: Value,
    },
}

impl Response {
    /// HTTP-style status code of this response.
    pub fn code(&self) -> u32 {
        match self {
            Response::Ok { .. }
            | Response::ShuttingDown
            | Response::Reloaded { .. }
            | Response::Killed { .. }
            | Response::Stats { .. }
            | Response::Trace { .. }
            | Response::LearnStatus { .. } => 200,
            Response::Rejected { .. } => 429,
            Response::Error { code, .. } => *code,
        }
    }

    /// Serializes the response as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("protocol values always serialize")
    }

    /// Like [`Response::to_json_line`], but appends a top-level `trace_id`
    /// field when one is given. Kept at the wire layer (rather than on
    /// every enum variant) so the ~30 response construction sites stay
    /// trace-agnostic; old clients simply ignore the extra field.
    pub fn to_json_line_traced(&self, trace_id: Option<&str>) -> String {
        let mut value = self.to_value();
        if let (Some(tid), Value::Map(map)) = (trace_id, &mut value) {
            map.push(("trace_id".into(), Value::Str(tid.to_string())));
        }
        serde_json::to_string(&value).expect("protocol values always serialize")
    }

    fn to_value(&self) -> Value {
        match self {
            Response::Ok { id, epoch, row } => Value::Map(vec![
                ("id".into(), Value::Int(i128::from(*id))),
                ("status".into(), Value::Str("ok".into())),
                ("code".into(), Value::Int(200)),
                ("epoch".into(), Value::Int(i128::from(*epoch))),
                ("valid_prob".into(), Value::Float(row.valid_prob)),
                ("cycles".into(), Value::Int(i128::from(row.cycles))),
                ("dsp".into(), Value::Float(row.dsp)),
                ("bram".into(), Value::Float(row.bram)),
                ("lut".into(), Value::Float(row.lut)),
                ("ff".into(), Value::Float(row.ff)),
            ]),
            Response::Rejected { id, retry_after_ms } => Value::Map(vec![
                ("id".into(), Value::Int(i128::from(*id))),
                ("status".into(), Value::Str("rejected".into())),
                ("code".into(), Value::Int(429)),
                ("retry_after_ms".into(), Value::Int(i128::from(*retry_after_ms))),
                ("error".into(), Value::Str("prediction queue full".into())),
            ]),
            Response::Error { id, code, message } => Value::Map(vec![
                ("id".into(), Value::Int(i128::from(*id))),
                ("status".into(), Value::Str("error".into())),
                ("code".into(), Value::Int(i128::from(*code))),
                ("error".into(), Value::Str(message.clone())),
            ]),
            Response::Reloaded { epoch } => Value::Map(vec![
                ("status".into(), Value::Str("reloaded".into())),
                ("code".into(), Value::Int(200)),
                ("epoch".into(), Value::Int(i128::from(*epoch))),
            ]),
            Response::Killed { replica } => Value::Map(vec![
                ("status".into(), Value::Str("killed".into())),
                ("code".into(), Value::Int(200)),
                ("replica".into(), Value::Int(*replica as i128)),
            ]),
            Response::ShuttingDown => Value::Map(vec![
                ("status".into(), Value::Str("shutting_down".into())),
                ("code".into(), Value::Int(200)),
            ]),
            Response::Stats { body } => Value::Map(vec![
                ("status".into(), Value::Str("stats".into())),
                ("code".into(), Value::Int(200)),
                ("body".into(), body.clone()),
            ]),
            Response::Trace { body } => Value::Map(vec![
                ("status".into(), Value::Str("trace".into())),
                ("code".into(), Value::Int(200)),
                ("body".into(), body.clone()),
            ]),
            Response::LearnStatus { body } => Value::Map(vec![
                ("status".into(), Value::Str("learn_status".into())),
                ("code".into(), Value::Int(200)),
                ("body".into(), body.clone()),
            ]),
        }
    }

    /// Parses a response line (the client side of [`Response::to_json_line`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse(line: &str) -> Result<Response, String> {
        let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let map = value.as_map().ok_or("response must be a JSON object")?;
        let status = get(map, "status")
            .and_then(|v| v.as_str())
            .ok_or("response needs a string `status`")?;
        let id = get(map, "id").and_then(as_u64).unwrap_or(0);
        match status {
            "ok" => {
                let f = |k: &str| {
                    get(map, k)
                        .and_then(as_f64)
                        .ok_or_else(|| format!("ok response needs a number `{k}`"))
                };
                let cycles = get(map, "cycles")
                    .and_then(as_u64)
                    .ok_or("ok response needs an integer `cycles`")?;
                Ok(Response::Ok {
                    id,
                    // Absent on pre-epoch servers: treat as unversioned.
                    epoch: get(map, "epoch").and_then(as_u64).unwrap_or(0),
                    row: PredictionRow {
                        valid_prob: f("valid_prob")?,
                        cycles,
                        dsp: f("dsp")?,
                        bram: f("bram")?,
                        lut: f("lut")?,
                        ff: f("ff")?,
                    },
                })
            }
            "rejected" => Ok(Response::Rejected {
                id,
                retry_after_ms: get(map, "retry_after_ms").and_then(as_u64).unwrap_or(0),
            }),
            "error" => Ok(Response::Error {
                id,
                code: get(map, "code").and_then(as_u64).unwrap_or(500) as u32,
                message: get(map, "error")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            "reloaded" => Ok(Response::Reloaded {
                epoch: get(map, "epoch").and_then(as_u64).unwrap_or(0),
            }),
            "killed" => Ok(Response::Killed {
                replica: get(map, "replica").and_then(as_u64).unwrap_or(0) as usize,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "stats" => Ok(Response::Stats {
                body: get(map, "body").cloned().unwrap_or(Value::Null),
            }),
            "trace" => Ok(Response::Trace {
                body: get(map, "body").cloned().unwrap_or(Value::Seq(vec![])),
            }),
            "learn_status" => Ok(Response::LearnStatus {
                body: get(map, "body").cloned().unwrap_or(Value::Null),
            }),
            other => Err(format!("unknown response status `{other}`")),
        }
    }

    /// Parses a response line *and* its echoed `trace_id`, if present and
    /// well-formed (the pair to [`Response::to_json_line_traced`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse_traced(line: &str) -> Result<(Response, Option<String>), String> {
        let response = Response::parse(line)?;
        let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let trace_id = value
            .as_map()
            .and_then(|m| get(m, "trace_id"))
            .and_then(|v| v.as_str())
            .and_then(obs::trace::TraceId::parse)
            .map(|t| t.to_string());
        Ok((response, trace_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> PredictionRow {
        PredictionRow { valid_prob: 0.75, cycles: 1234, dsp: 0.1, bram: 0.2, lut: 0.3, ff: 0.4 }
    }

    #[test]
    fn predict_request_round_trips() {
        let r = parse_request(r#"{"id": 7, "kernel": "gemm-ncubed", "index": 123}"#).unwrap();
        assert_eq!(
            r,
            Request::Predict { id: 7, kernel: "gemm-ncubed".into(), index: 123, trace: None }
        );
    }

    #[test]
    fn string_index_is_accepted() {
        let r = parse_request(r#"{"id": 1, "kernel": "aes", "index": "340282366920938463463374607431768211455"}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Predict { id: 1, kernel: "aes".into(), index: u128::MAX, trace: None }
        );
    }

    #[test]
    fn trace_ids_parse_present_absent_and_malformed() {
        // Present and well-formed: normalized to 16 lowercase hex chars.
        let r = parse_request(
            r#"{"id": 1, "kernel": "aes", "index": 0, "trace_id": "DEADBEEF"}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Predict {
                id: 1,
                kernel: "aes".into(),
                index: 0,
                trace: Some("00000000deadbeef".into())
            }
        );
        // Absent: old clients keep working, server mints later.
        match parse_request(r#"{"id": 1, "kernel": "aes", "index": 0}"#).unwrap() {
            Request::Predict { trace: None, .. } => {}
            other => panic!("expected traceless predict, got {other:?}"),
        }
        // Malformed ids (wrong alphabet, too long, wrong type) degrade to
        // absent — the request is still served.
        for bad in [
            r#"{"id": 1, "kernel": "aes", "index": 0, "trace_id": "not-hex!"}"#,
            r#"{"id": 1, "kernel": "aes", "index": 0, "trace_id": "00112233445566778899"}"#,
            r#"{"id": 1, "kernel": "aes", "index": 0, "trace_id": 1234}"#,
            r#"{"id": 1, "kernel": "aes", "index": 0, "trace_id": ""}"#,
        ] {
            match parse_request(bad).unwrap() {
                Request::Predict { trace: None, .. } => {}
                other => panic!("malformed trace_id must degrade to None, got {other:?}"),
            }
        }
    }

    #[test]
    fn stats_and_trace_requests_parse() {
        assert_eq!(parse_request(r#"{"stats": true}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"learn-status": true}"#).unwrap(),
            Request::LearnStatus
        );
        assert_eq!(
            parse_request(r#"{"trace": "slow"}"#).unwrap(),
            Request::Trace { query: "slow".into() }
        );
        assert_eq!(
            parse_request(r#"{"trace": "00000000deadbeef"}"#).unwrap(),
            Request::Trace { query: "00000000deadbeef".into() }
        );
        assert!(parse_request(r#"{"trace": 7}"#).is_err(), "trace query must be a string");
    }

    #[test]
    fn control_requests_parse() {
        assert_eq!(parse_request(r#"{"shutdown": true}"#).unwrap(), Request::Shutdown);
        assert_eq!(parse_request(r#"{"reload": true}"#).unwrap(), Request::Reload);
        assert_eq!(
            parse_request(r#"{"kill_replica": 2}"#).unwrap(),
            Request::KillReplica { replica: 2 }
        );
        assert!(parse_request(r#"{"kill_replica": -1}"#).is_err());
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"id": 1, "kernel": "aes"}"#).is_err());
        assert!(parse_request(r#"{"id": -4, "kernel": "aes", "index": 0}"#).is_err());
        assert!(parse_request(r#"{"id": 1, "index": 0}"#).is_err());
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok { id: 9, epoch: 3, row: sample_row() },
            Response::Rejected { id: 3, retry_after_ms: 50 },
            Response::Error { id: 0, code: 400, message: "bad".into() },
            Response::Reloaded { epoch: 2 },
            Response::Killed { replica: 1 },
            Response::ShuttingDown,
        ] {
            let line = resp.to_json_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn traced_responses_round_trip_and_tolerate_garbage() {
        let resp = Response::Ok { id: 9, epoch: 3, row: sample_row() };
        // Echoed id comes back through parse_traced.
        let line = resp.to_json_line_traced(Some("00000000deadbeef"));
        assert_eq!(
            Response::parse_traced(&line).unwrap(),
            (resp.clone(), Some("00000000deadbeef".into()))
        );
        // Old clients parse the traced line exactly like an untraced one.
        assert_eq!(Response::parse(&line).unwrap(), resp);
        // No trace -> identical to the plain serialization.
        assert_eq!(resp.to_json_line_traced(None), resp.to_json_line());
        assert_eq!(Response::parse_traced(&resp.to_json_line()).unwrap(), (resp.clone(), None));
        // A server echoing garbage degrades to None, never an error.
        let garbled = r#"{"status": "shutting_down", "code": 200, "trace_id": "zz"}"#;
        assert_eq!(
            Response::parse_traced(garbled).unwrap(),
            (Response::ShuttingDown, None)
        );
        // Errors and rejections carry the echo too.
        for r in [
            Response::Rejected { id: 3, retry_after_ms: 50 },
            Response::Error { id: 0, code: 503, message: "unavailable".into() },
        ] {
            let line = r.to_json_line_traced(Some("abc123"));
            let (back, tid) = Response::parse_traced(&line).unwrap();
            assert_eq!(back, r);
            assert_eq!(tid, Some("0000000000abc123".into()), "{line}");
        }
    }

    #[test]
    fn stats_and_trace_responses_round_trip() {
        let body = Value::Map(vec![
            ("epoch".into(), Value::Int(2)),
            ("replicas".into(), Value::Seq(vec![Value::Int(0), Value::Int(1)])),
        ]);
        for resp in [
            Response::Stats { body: body.clone() },
            Response::Trace { body: Value::Seq(vec![body.clone()]) },
            Response::LearnStatus { body },
        ] {
            let line = resp.to_json_line();
            assert!(!line.contains('\n'));
            assert_eq!(Response::parse(&line).unwrap(), resp, "{line}");
            assert_eq!(resp.code(), 200);
        }
    }

    #[test]
    fn epochless_ok_response_parses_as_unversioned() {
        let legacy = r#"{"id": 1, "status": "ok", "code": 200, "valid_prob": 0.5,
                         "cycles": 10, "dsp": 0.1, "bram": 0.1, "lut": 0.1, "ff": 0.1}"#;
        match Response::parse(legacy).unwrap() {
            Response::Ok { epoch: 0, .. } => {}
            other => panic!("expected unversioned ok, got {other:?}"),
        }
    }

    #[test]
    fn response_codes_follow_http_convention() {
        assert_eq!(Response::Ok { id: 1, epoch: 0, row: sample_row() }.code(), 200);
        assert_eq!(Response::Rejected { id: 1, retry_after_ms: 0 }.code(), 429);
        assert_eq!(Response::Error { id: 1, code: 413, message: String::new() }.code(), 413);
        assert_eq!(Response::Reloaded { epoch: 2 }.code(), 200);
    }
}
