//! The supervised replica pool: N workers, each owning its own model
//! backend, behind consistent per-kernel shard routing.
//!
//! ## Topology
//!
//! Every replica owns a private [`BatchPredictor`] instance (built through
//! the pool's [`ModelProvider`]) and a private bounded queue. Requests are
//! routed to `fnv1a(kernel) % replicas` — the *home* replica — so each
//! replica's per-kernel caches stay hot. The degradation ladder, in order:
//!
//! 1. home replica up, queue has room → enqueue (the fast path);
//! 2. home replica **down** → probe siblings in ring order, enqueue at the
//!    first healthy one (cold caches beat no answer);
//! 3. first healthy replica's queue **full** → shed: 429 + `retry_after_ms`
//!    (deliberately *not* spilled to siblings — overload must surface as
//!    backpressure, not cascade through every queue);
//! 4. no healthy replica at all → 503.
//!
//! ## Supervision
//!
//! A replica that panics inside its backend (or is crashed by the
//! `kill_replica` chaos drill) is isolated: its un-answered jobs — both the
//! in-flight batch and its queued backlog — are handed to the supervisor,
//! which re-routes them to healthy siblings (bounded by
//! [`MAX_ATTEMPTS`], so a poison-pill request becomes a 500 instead of
//! serially crashing every replica). The supervisor then restarts the
//! replica with exponential backoff, doubling per consecutive failure up to
//! a cap, and resetting once a replica stays up.
//!
//! A replica *wedged* inside its backend (no progress for
//! `wedge_timeout`) is treated like a crash, except the stuck thread cannot
//! be killed: it is retired by bumping the slot's generation token —
//! if it ever wakes it answers its stale batch (late answers beat no
//! answers) and exits on the next generation check — while a fresh
//! replica takes over the slot.
//!
//! ## Hot swap
//!
//! The provider owns the model version; replicas compare the provider's
//! epoch against their own at every batch boundary and rebuild their
//! backend when it moved — a rolling, zero-downtime cut-over in which
//! every response is tagged with the epoch of the model that produced it.

use crate::protocol::{PredictionRow, Response};
use crate::queue::{BoundedQueue, PushError};
use gdse_obs as obs;
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bucket edges of the `serve.batch_size` histogram.
pub const BATCH_EDGES: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// How long blocked waits sleep before re-checking control flags.
pub(crate) const POLL: Duration = Duration::from_millis(25);

/// Most times one request is (re-)dispatched to a replica before it is
/// answered 500 — the poison-pill bound.
pub const MAX_ATTEMPTS: u32 = 3;

/// The model backend one replica batches requests into.
///
/// Implementations answer one kernel's worth of design-point indices per
/// call — the natural unit for amortized graph encoding. `Err` fails the
/// whole group (e.g. unknown kernel); per-row failure is not modelled.
/// A panic inside `predict` crashes only the calling replica: the
/// supervisor re-routes its requests and restarts it.
pub trait BatchPredictor: Send + Sync {
    /// Predicts QoR for `indices` of `kernel`'s design space, one row per
    /// index, in order.
    ///
    /// # Errors
    ///
    /// A human-readable reason the group cannot be served (reported to each
    /// client as a `status: "error"` response).
    fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String>;
}

/// Where replicas get their model backends, versioned by **epoch**.
///
/// One provider serves the whole pool; each replica builds its own backend
/// instance from it (so backends never share mutable state) and rebuilds
/// whenever [`ModelProvider::epoch`] moves past the epoch it was built at.
pub trait ModelProvider: Send + Sync {
    /// The epoch of the model version currently offered (0 = unversioned).
    fn epoch(&self) -> u64;

    /// Builds a fresh backend at the current version, returning it together
    /// with the epoch it was built at (read atomically, so a concurrent
    /// reload cannot mislabel it).
    ///
    /// # Errors
    ///
    /// A human-readable reason no backend can be built right now.
    fn build(&self) -> Result<(Box<dyn BatchPredictor>, u64), String>;

    /// Re-reads the model source, validates it, and — only if **every**
    /// check passes — cuts over and returns the new epoch. On any failure
    /// the previous version must keep serving (rollback is the default,
    /// not an action).
    ///
    /// # Errors
    ///
    /// Why the new version was rejected (the old one is still serving).
    fn reload(&self) -> Result<u64, String>;

    /// Checks whether the model source changed underneath (e.g. artifact
    /// mtime) and reloads if so. `None` = unchanged; `Some` = a reload was
    /// attempted, with [`ModelProvider::reload`]'s result.
    fn poll_reload(&self) -> Option<Result<u64, String>> {
        None
    }
}

/// Where the `learn-status` admin verb gets its answer.
///
/// A continuous-learning daemon attaches one of these to the server
/// ([`crate::ServerHandle::attach_learn_status`]) so operators can inspect
/// the background trainer — current round, model epoch, replay-buffer
/// depth, last fine-tune loss — through the same admin socket that serves
/// `stats`. Servers without a learner answer the verb with 404.
pub trait LearnStatusSource: Send + Sync {
    /// A JSON document describing the learner's current state.
    fn learn_status(&self) -> serde::Value;
}

/// A [`ModelProvider`] over one fixed backend shared by every replica:
/// epoch 0, never reloadable. What [`crate::Server::bind`] wraps a bare
/// [`BatchPredictor`] in.
pub struct StaticProvider {
    backend: Arc<dyn BatchPredictor>,
}

impl StaticProvider {
    /// Wraps `backend` as an unversioned model source.
    pub fn new(backend: impl BatchPredictor + 'static) -> Self {
        StaticProvider { backend: Arc::new(backend) }
    }
}

struct SharedBackend(Arc<dyn BatchPredictor>);

impl BatchPredictor for SharedBackend {
    fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
        self.0.predict(kernel, indices)
    }
}

impl ModelProvider for StaticProvider {
    fn epoch(&self) -> u64 {
        0
    }

    fn build(&self) -> Result<(Box<dyn BatchPredictor>, u64), String> {
        Ok((Box::new(SharedBackend(Arc::clone(&self.backend))), 0))
    }

    fn reload(&self) -> Result<u64, String> {
        Err("static model source cannot be reloaded".into())
    }
}

/// FNV-1a over the kernel name: the shard-routing hash. Stable across
/// runs, so a kernel always lands on the same home replica.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One in-flight request: owned by whichever replica popped it, handed
/// back to the supervisor if that replica dies before answering.
pub(crate) struct Job {
    pub id: u64,
    pub kernel: String,
    pub index: u128,
    /// Dispatch count; capped at [`MAX_ATTEMPTS`].
    pub attempts: u32,
    pub enqueued: Instant,
    /// When the router last pushed this job onto a replica queue — the
    /// boundary between the `route` and `queue_wait` spans.
    pub routed: Instant,
    /// The replica that popped this job (None until then, or when it
    /// never reached one).
    pub replica: Option<usize>,
    /// The request's span timeline, appended to at every hop and handed
    /// back to the connection handler inside [`Answer`].
    pub trace: obs::trace::TraceBuilder,
    pub reply: mpsc::Sender<Answer>,
}

/// What a replica (or the shed/error path) sends back on a job's reply
/// channel: the response plus the trace that traveled with the request,
/// so the handler can seal the timeline after the `write` span.
pub(crate) struct Answer {
    pub response: Response,
    pub trace: obs::trace::TraceBuilder,
    pub replica: Option<usize>,
}

/// Per-replica shared state: the routing/queueing surface of one replica.
pub(crate) struct ReplicaSlot {
    pub queue: BoundedQueue<Job>,
    /// Healthy and accepting work.
    pub up: AtomicBool,
    /// Chaos drill: crash on the next loop iteration.
    kill: AtomicBool,
    /// Instance token: bumped to retire a wedged thread.
    generation: AtomicU64,
    /// Model epoch of the backend currently serving this slot.
    pub epoch: AtomicU64,
    /// Times this slot's replica was restarted by the supervisor.
    pub restarts: AtomicU64,
    /// `0` when idle, else (ms since pool start of the current backend
    /// call) + 1 — the wedge-detection heartbeat.
    busy_since_ms: AtomicU64,
}

impl ReplicaSlot {
    fn new(capacity: usize, observer: Option<crate::queue::DepthObserver>) -> Self {
        ReplicaSlot {
            queue: BoundedQueue::with_observer(capacity, observer),
            // Born up (optimistically): requests arriving while the first
            // backend is still building queue here instead of bouncing
            // with 503; a failed build crashes the replica and the
            // supervisor re-routes whatever queued.
            up: AtomicBool::new(true),
            kill: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            busy_since_ms: AtomicU64::new(0),
        }
    }
}

/// Why a replica thread exited; `orphans` are its un-answered jobs.
enum ExitKind {
    /// Backend panic, build failure, or kill drill — supervise and restart.
    Crashed { cause: String, orphans: Vec<Job> },
    /// Retired by a generation bump (wedge takeover) — a successor is
    /// already running; just re-route what this instance still held.
    Retired { orphans: Vec<Job> },
    /// Queue closed and drained: clean shutdown.
    Drained,
}

struct Exit {
    slot: usize,
    generation: u64,
    kind: ExitKind,
}

/// Everything the accept loop, connection handlers, replicas, and the
/// supervisor share.
pub(crate) struct Shared {
    pub slots: Vec<Arc<ReplicaSlot>>,
    pub provider: Arc<dyn ModelProvider>,
    pub config: crate::server::ServeConfig,
    pub shutdown: AtomicBool,
    pub addr: SocketAddr,
    // Lifetime stats (the `ServeStats` source of truth).
    pub served: AtomicU64,
    pub rejected: AtomicU64,
    pub errors: AtomicU64,
    pub shed: AtomicU64,
    pub replica_restarts: AtomicU64,
    pub replica_crashes: AtomicU64,
    pub rerouted: AtomicU64,
    pub reloads: AtomicU64,
    pub reload_failures: AtomicU64,
    /// Thread-local registries of exited worker threads, merged into the
    /// caller's registry when `run` returns.
    pub registries: Mutex<Vec<obs::metrics::MetricsSnapshot>>,
    /// Cross-thread registry feeding the live `admin stats` endpoint:
    /// span histograms and queue-depth gauges land here (and *only* here)
    /// so they are readable while worker threads still run; `Server::run`
    /// folds it into the caller's registry at shutdown.
    pub live: Arc<obs::metrics::SharedMetrics>,
    /// Bounded rings of completed request traces (`admin trace`'s source).
    pub recorder: Arc<obs::trace::FlightRecorder>,
    /// The attached continuous-learning status source, if any (`admin
    /// learn-status` answers 404 while this is `None`).
    pub learn: Mutex<Option<Arc<dyn LearnStatusSource>>>,
    started: Instant,
}

impl Shared {
    pub fn new(
        config: crate::server::ServeConfig,
        provider: Arc<dyn ModelProvider>,
        addr: SocketAddr,
    ) -> Self {
        let replicas = config.replicas.max(1);
        let live = Arc::new(obs::metrics::SharedMetrics::new());
        let slots = (0..replicas)
            .map(|i| {
                // Each queue reports its depth into the live registry the
                // moment it changes — `admin stats` shows instantaneous
                // backlog, not a stale poll.
                let live = Arc::clone(&live);
                let gauge = obs::metrics::labeled("serve.queue_depth", "replica", &i.to_string());
                let observer: crate::queue::DepthObserver =
                    Box::new(move |depth| live.gauge_set(&gauge, depth as f64));
                Arc::new(ReplicaSlot::new(config.queue_capacity, Some(observer)))
            })
            .collect();
        Shared {
            slots,
            recorder: Arc::new(obs::trace::FlightRecorder::new(
                replicas,
                config.trace_capacity,
            )),
            live,
            provider,
            config,
            shutdown: AtomicBool::new(false),
            addr,
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            replica_restarts: AtomicU64::new(0),
            replica_crashes: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            registries: Mutex::new(Vec::new()),
            learn: Mutex::new(None),
            started: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            for slot in &self.slots {
                slot.queue.close();
            }
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    pub fn park_registry(&self) {
        let snap = obs::metrics::snapshot();
        self.registries.lock().expect("registry lock").push(snap);
        obs::metrics::reset();
    }

    /// Total depth across every replica queue.
    pub fn queue_depth(&self) -> usize {
        self.slots.iter().map(|s| s.queue.len()).sum()
    }

    /// The model epoch currently offered by the provider.
    pub fn epoch(&self) -> u64 {
        self.provider.epoch()
    }

    /// Forces a model reload through the provider, keeping the counters
    /// straight regardless of which thread asked.
    pub fn reload(&self) -> Result<u64, String> {
        match self.provider.reload() {
            Ok(epoch) => {
                self.reloads.fetch_add(1, Ordering::SeqCst);
                obs::metrics::counter_inc("serve.reloads");
                Ok(epoch)
            }
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::SeqCst);
                obs::metrics::counter_inc("serve.reload_failures");
                Err(e)
            }
        }
    }

    /// Chaos drill: crash replica `replica` (it restarts under
    /// supervision).
    ///
    /// # Errors
    ///
    /// When the index is out of range or the replica is already down.
    pub fn kill_replica(&self, replica: usize) -> Result<(), String> {
        let slot = self
            .slots
            .get(replica)
            .ok_or_else(|| format!("no replica {replica} (pool size {})", self.slots.len()))?;
        if !slot.up.load(Ordering::SeqCst) {
            return Err(format!("replica {replica} is already down"));
        }
        slot.kill.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Routes `job` per the degradation ladder. `skip` marks a replica the
    /// job must not return to (the one it just crashed). On failure the
    /// job is handed back so the caller can answer its reply channel.
    ///
    /// # Errors
    ///
    /// The job plus why it could not be enqueued.
    // The Err variant hands the whole Job back on purpose — the caller
    // must answer its reply channel and seal its trace. Boxing it would
    // put an allocation on the hot submit path to slim a cold error.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job: Job, skip: Option<usize>) -> Result<(), (Job, SubmitError)> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err((job, SubmitError::Closed));
        }
        let n = self.slots.len();
        let home = (fnv1a(job.kernel.as_bytes()) % n as u64) as usize;
        let mut job = job;
        for off in 0..n {
            let i = (home + off) % n;
            if Some(i) == skip {
                continue;
            }
            let slot = &self.slots[i];
            if !slot.up.load(Ordering::SeqCst) {
                continue;
            }
            // Stamp the route/queue boundary per attempt, so `queue_wait`
            // measures only the time actually spent in *this* queue.
            job.routed = Instant::now();
            match slot.queue.try_push(job) {
                Ok(()) => return Ok(()),
                // The first *healthy* replica on the ring is full: shed.
                // Spilling overload to siblings would collapse every queue
                // in turn; backpressure must reach the client instead.
                Err((j, PushError::Full)) => return Err((j, SubmitError::Shed)),
                Err((j, PushError::Closed)) => {
                    job = j;
                    continue;
                }
            }
        }
        Err((job, SubmitError::NoReplica))
    }

    /// The live telemetry document `admin stats` serves: uptime, epoch,
    /// per-replica state (depth/epoch/up/restarts), lifetime counters, and
    /// every live histogram with interpolated p50/p95/p99 — plus the full
    /// [`obs::MetricsSnapshot`] under `"metrics"` so clients can re-render
    /// it (e.g. as Prometheus exposition text) without a second verb.
    pub fn stats_value(&self) -> serde::Value {
        use serde::Value;
        let mut snap = self.live.snapshot();
        // Fold the lifetime atomics in as counters: one document carries
        // the whole picture regardless of which registry a metric lives in.
        let lifetime: [(&str, u64); 9] = [
            ("serve.predictions", self.served.load(Ordering::SeqCst)),
            ("serve.rejected", self.rejected.load(Ordering::SeqCst)),
            ("serve.errors", self.errors.load(Ordering::SeqCst)),
            ("serve.shed", self.shed.load(Ordering::SeqCst)),
            ("serve.replica_restarts", self.replica_restarts.load(Ordering::SeqCst)),
            ("serve.replica_crashes", self.replica_crashes.load(Ordering::SeqCst)),
            ("serve.rerouted", self.rerouted.load(Ordering::SeqCst)),
            ("serve.reloads", self.reloads.load(Ordering::SeqCst)),
            ("serve.reload_failures", self.reload_failures.load(Ordering::SeqCst)),
        ];
        for (k, v) in lifetime {
            if !snap.counters.iter().any(|(n, _)| n == k) {
                snap.counters.push((k.to_string(), v));
            }
        }
        snap.counters.sort();
        if !snap.gauges.iter().any(|(n, _)| n == "serve.epoch") {
            snap.gauges.push(("serve.epoch".into(), self.provider.epoch() as f64));
            snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        }

        let replicas: Vec<Value> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Value::Map(vec![
                    ("replica".into(), Value::Int(i as i128)),
                    ("queue_depth".into(), Value::Int(s.queue.len() as i128)),
                    ("epoch".into(), Value::Int(i128::from(s.epoch.load(Ordering::SeqCst)))),
                    ("up".into(), Value::Bool(s.up.load(Ordering::SeqCst))),
                    ("restarts".into(), Value::Int(i128::from(s.restarts.load(Ordering::SeqCst)))),
                ])
            })
            .collect();
        let histograms: Vec<Value> = snap
            .histograms
            .iter()
            .map(|h| {
                Value::Map(vec![
                    ("name".into(), Value::Str(h.name.clone())),
                    ("count".into(), Value::Int(i128::from(h.count))),
                    ("sum".into(), Value::Int(i128::from(h.sum))),
                    ("mean".into(), Value::Float(h.mean())),
                    ("p50".into(), Value::Float(h.quantile(0.50))),
                    ("p95".into(), Value::Float(h.quantile(0.95))),
                    ("p99".into(), Value::Float(h.quantile(0.99))),
                ])
            })
            .collect();
        let metrics: Value =
            serde_json::from_str(&serde_json::to_string(&snap).expect("snapshot serializes"))
                .expect("snapshot round-trips");
        Value::Map(vec![
            ("uptime_us".into(), Value::Int(self.started.elapsed().as_micros() as i128)),
            ("epoch".into(), Value::Int(i128::from(self.provider.epoch()))),
            ("replicas".into(), Value::Seq(replicas)),
            ("traces_recorded".into(), Value::Int(self.recorder.len() as i128)),
            ("histograms".into(), Value::Seq(histograms)),
            ("metrics".into(), metrics),
        ])
    }

    /// Flight-recorder lookup for `admin trace`: `"slow"` returns the
    /// slowest remembered traces, anything else is an id lookup. Always a
    /// JSON array (possibly empty — nothing remembered is not an error).
    pub fn trace_value(&self, query: &str) -> serde::Value {
        let traces = if query == "slow" {
            self.recorder.slow(5)
        } else {
            self.recorder.get(query).into_iter().collect()
        };
        serde_json::from_str(&serde_json::to_string(&traces).expect("traces serialize"))
            .expect("traces round-trip")
    }
}

/// Why [`Shared::submit`] handed the job back.
pub(crate) enum SubmitError {
    /// Load-shed: the client should back off and retry.
    Shed,
    /// Every replica is down.
    NoReplica,
    /// The server is shutting down.
    Closed,
}

/// Answers `job` with `response`, keeping stats and metrics straight.
pub(crate) fn answer(shared: &Shared, job: Job, response: Response) {
    obs::metrics::observe_us("serve.latency_us", job.enqueued.elapsed().as_micros() as u64);
    match &response {
        Response::Ok { .. } => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            obs::metrics::counter_inc("serve.predictions");
        }
        Response::Rejected { .. } => {
            shared.rejected.fetch_add(1, Ordering::SeqCst);
            shared.shed.fetch_add(1, Ordering::SeqCst);
            obs::metrics::counter_inc("serve.rejected");
            obs::metrics::counter_inc("serve.shed");
        }
        _ => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            obs::metrics::counter_inc("serve.errors");
        }
    }
    let Job { reply, trace, replica, .. } = job;
    let _ = reply.send(Answer { response, trace, replica });
    if let Some(limit) = shared.config.max_requests {
        let answered =
            shared.served.load(Ordering::SeqCst) + shared.errors.load(Ordering::SeqCst);
        if answered >= limit {
            shared.begin_shutdown();
        }
    }
}

fn flatten_groups(groups: Vec<(String, Vec<Job>)>) -> Vec<Job> {
    groups.into_iter().flat_map(|(_, jobs)| jobs).collect()
}

/// The body of one replica instance: build a backend, serve batches,
/// follow hot-swaps, exit with whatever it still owes.
fn replica_serve(shared: &Shared, idx: usize, generation: u64) -> ExitKind {
    let slot = &shared.slots[idx];
    let (mut backend, mut epoch) =
        match catch_unwind(AssertUnwindSafe(|| shared.provider.build())) {
            Ok(Ok(pair)) => pair,
            Ok(Err(e)) => {
                return ExitKind::Crashed { cause: format!("model build failed: {e}"), orphans: vec![] }
            }
            Err(_) => {
                return ExitKind::Crashed { cause: "model build panicked".into(), orphans: vec![] }
            }
        };
    slot.epoch.store(epoch, Ordering::SeqCst);
    slot.up.store(true, Ordering::SeqCst);

    loop {
        if slot.generation.load(Ordering::SeqCst) != generation {
            return ExitKind::Retired { orphans: vec![] };
        }
        if slot.kill.swap(false, Ordering::SeqCst) {
            return ExitKind::Crashed { cause: "kill drill".into(), orphans: vec![] };
        }
        // Hot swap: follow the provider's epoch at batch boundaries. A
        // failed rebuild keeps the old backend serving — degraded (stale
        // epoch) beats down.
        let offered = shared.provider.epoch();
        if offered != epoch {
            if let Ok(Ok((b, e))) = catch_unwind(AssertUnwindSafe(|| shared.provider.build())) {
                backend = b;
                epoch = e;
                slot.epoch.store(e, Ordering::SeqCst);
                obs::metrics::counter_inc("serve.replica_swaps");
            }
        }
        let mut batch = match slot.queue.pop_batch(shared.config.max_batch.max(1), POLL) {
            None => return ExitKind::Drained,
            Some(b) if b.is_empty() => continue,
            Some(b) => b,
        };
        obs::metrics::gauge_set("serve.queue_depth", slot.queue.len() as f64);
        obs::metrics::counter_inc("serve.batches");
        obs::metrics::observe_with_edges("serve.batch_size", &BATCH_EDGES, batch.len() as u64);
        let popped = Instant::now();
        for job in &mut batch {
            job.replica = Some(idx);
            // A re-routed job records a second route/queue_wait pair — the
            // timeline shows every hop it took, not just the last.
            job.trace.span("route", job.enqueued, job.routed);
            job.trace.span("queue_wait", job.routed, popped);
        }

        // Group by kernel, preserving arrival order, so each group is one
        // backend call with an amortized forward pass.
        let mut groups: Vec<(String, Vec<Job>)> = Vec::new();
        for job in batch {
            match groups.iter_mut().find(|(k, _)| *k == job.kernel) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((job.kernel.clone(), vec![job])),
            }
        }
        while !groups.is_empty() {
            if slot.generation.load(Ordering::SeqCst) != generation {
                return ExitKind::Retired { orphans: flatten_groups(groups) };
            }
            if slot.kill.swap(false, Ordering::SeqCst) {
                return ExitKind::Crashed {
                    cause: "kill drill (mid-batch)".into(),
                    orphans: flatten_groups(groups),
                };
            }
            let (kernel, mut jobs) = groups.remove(0);
            let indices: Vec<u128> = jobs.iter().map(|j| j.index).collect();
            let infer_start = Instant::now();
            for job in &mut jobs {
                job.trace.span("batch_wait", popped, infer_start);
            }
            slot.busy_since_ms.store(shared.now_ms() + 1, Ordering::SeqCst);
            let outcome =
                catch_unwind(AssertUnwindSafe(|| backend.predict(&kernel, &indices)));
            slot.busy_since_ms.store(0, Ordering::SeqCst);
            let infer_end = Instant::now();
            for job in &mut jobs {
                job.trace.span("infer", infer_start, infer_end);
            }
            match outcome {
                Err(_) => {
                    let mut orphans = jobs;
                    orphans.extend(flatten_groups(groups));
                    return ExitKind::Crashed {
                        cause: format!("backend panicked predicting `{kernel}`"),
                        orphans,
                    };
                }
                Ok(Ok(rows)) if rows.len() == jobs.len() => {
                    for (job, row) in jobs.into_iter().zip(rows) {
                        let id = job.id;
                        answer(shared, job, Response::Ok { id, epoch, row });
                    }
                }
                Ok(Ok(rows)) => {
                    let msg = format!(
                        "backend returned {} row(s) for {} request(s)",
                        rows.len(),
                        jobs.len()
                    );
                    for job in jobs {
                        let id = job.id;
                        answer(shared, job, Response::Error { id, code: 500, message: msg.clone() });
                    }
                }
                Ok(Err(message)) => {
                    for job in jobs {
                        let id = job.id;
                        answer(
                            shared,
                            job,
                            Response::Error { id, code: 400, message: message.clone() },
                        );
                    }
                }
            }
        }
    }
}

fn spawn_replica(
    shared: &Arc<Shared>,
    idx: usize,
    generation: u64,
    events: mpsc::Sender<Exit>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        shared.slots[idx].generation.store(generation, Ordering::SeqCst);
        let kind = replica_serve(&shared, idx, generation);
        // Only the current instance may mark the slot down — a retired
        // (wedged, superseded) instance must not knock out its successor.
        if shared.slots[idx].generation.load(Ordering::SeqCst) == generation {
            shared.slots[idx].up.store(false, Ordering::SeqCst);
        }
        shared.park_registry();
        let _ = events.send(Exit { slot: idx, generation, kind });
    })
}

/// Supervisor bookkeeping for one slot.
struct SlotState {
    handle: Option<JoinHandle<()>>,
    /// Generation of the instance the supervisor currently tracks.
    generation: u64,
    spawned_at: Instant,
    consecutive_failures: u32,
    restart_due: Option<Instant>,
}

/// Runs the pool: spawns the initial replicas, supervises crashes and
/// wedges, applies restart backoff, watches the model source, and drains
/// on shutdown. Returns when every live replica has exited.
pub(crate) fn supervise(shared: &Arc<Shared>) {
    let (tx, rx) = mpsc::channel::<Exit>();
    let mut slots: Vec<SlotState> = (0..shared.slots.len())
        .map(|i| SlotState {
            handle: Some(spawn_replica(shared, i, 1, tx.clone())),
            generation: 1,
            spawned_at: Instant::now(),
            consecutive_failures: 0,
            restart_due: None,
        })
        .collect();
    let mut alive = slots.len();
    let mut abandoned: Vec<JoinHandle<()>> = Vec::new();
    let mut last_watch = Instant::now();
    obs::metrics::gauge_set("serve.epoch", shared.provider.epoch() as f64);

    loop {
        match rx.recv_timeout(POLL) {
            Ok(exit) => {
                let st = &mut slots[exit.slot];
                let current = st.generation == exit.generation;
                if current {
                    if let Some(h) = st.handle.take() {
                        let _ = h.join();
                    }
                    alive -= 1;
                }
                match exit.kind {
                    ExitKind::Drained => {}
                    ExitKind::Retired { orphans } => {
                        redispatch(shared, exit.slot, orphans);
                    }
                    ExitKind::Crashed { cause, orphans } => {
                        shared.replica_crashes.fetch_add(1, Ordering::SeqCst);
                        obs::metrics::counter_inc("serve.replica_crashes");
                        obs::warn!(
                            "serve.replica_crashed",
                            "replica {} crashed ({cause}); re-routing {} in-flight job(s)",
                            exit.slot,
                            orphans.len();
                            replica = exit.slot,
                            orphans = orphans.len(),
                        );
                        let mut orphans = orphans;
                        orphans.extend(shared.slots[exit.slot].queue.drain_all());
                        redispatch(shared, exit.slot, orphans);
                        if current && !shared.shutdown.load(Ordering::SeqCst) {
                            let st = &mut slots[exit.slot];
                            // A replica that held steady for a while gets a
                            // fresh backoff ladder.
                            if st.spawned_at.elapsed() > Duration::from_secs(1) {
                                st.consecutive_failures = 1;
                            } else {
                                st.consecutive_failures = st.consecutive_failures.saturating_add(1);
                            }
                            let exp = st.consecutive_failures.saturating_sub(1).min(6);
                            let backoff = shared
                                .config
                                .restart_backoff
                                .saturating_mul(1 << exp)
                                .min(Duration::from_secs(2));
                            st.restart_due = Some(Instant::now() + backoff);
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        let shutting_down = shared.shutdown.load(Ordering::SeqCst);

        // Due restarts.
        for (i, st) in slots.iter_mut().enumerate() {
            if shutting_down {
                st.restart_due = None;
                continue;
            }
            if st.restart_due.is_some_and(|due| Instant::now() >= due) {
                st.restart_due = None;
                st.generation += 1;
                st.spawned_at = Instant::now();
                st.handle = Some(spawn_replica(shared, i, st.generation, tx.clone()));
                alive += 1;
                shared.replica_restarts.fetch_add(1, Ordering::SeqCst);
                shared.slots[i].restarts.fetch_add(1, Ordering::SeqCst);
                obs::metrics::counter_inc("serve.replica_restarts");
                obs::info!(
                    "serve.replica_restarted",
                    "replica {i} restarted (generation {})",
                    st.generation;
                    replica = i,
                    generation = st.generation,
                );
            }
        }

        // Wedge detection: a replica stuck inside one backend call past the
        // timeout is retired and replaced; its stuck thread is abandoned.
        if let Some(wedge) = shared.config.wedge_timeout {
            let now_ms = shared.now_ms();
            for (i, st) in slots.iter_mut().enumerate() {
                if shutting_down || st.handle.is_none() {
                    continue;
                }
                let slot = &shared.slots[i];
                let busy = slot.busy_since_ms.load(Ordering::SeqCst);
                if busy > 0 && now_ms.saturating_sub(busy - 1) > wedge.as_millis() as u64 {
                    shared.replica_crashes.fetch_add(1, Ordering::SeqCst);
                    obs::metrics::counter_inc("serve.replica_crashes");
                    obs::metrics::counter_inc("serve.replica_wedged");
                    obs::warn!(
                        "serve.replica_wedged",
                        "replica {i} made no progress for {wedge:?}; retiring it";
                        replica = i,
                    );
                    slot.up.store(false, Ordering::SeqCst);
                    // Retire the stuck instance; it exits (or answers its
                    // stale batch) whenever it wakes.
                    st.generation += 1;
                    slot.generation.store(st.generation, Ordering::SeqCst);
                    if let Some(h) = st.handle.take() {
                        abandoned.push(h);
                    }
                    alive -= 1;
                    redispatch(shared, i, slot.queue.drain_all());
                    st.consecutive_failures = st.consecutive_failures.saturating_add(1);
                    st.restart_due = Some(Instant::now() + shared.config.restart_backoff);
                }
            }
        }

        // Model-source watch (mtime polling).
        if let Some(interval) = shared.config.reload_watch {
            if !shutting_down && last_watch.elapsed() >= interval {
                last_watch = Instant::now();
                match shared.provider.poll_reload() {
                    None => {}
                    Some(Ok(epoch)) => {
                        shared.reloads.fetch_add(1, Ordering::SeqCst);
                        obs::metrics::counter_inc("serve.reloads");
                        obs::info!(
                            "serve.reloaded",
                            "model source changed on disk; now serving epoch {epoch}";
                            epoch = epoch,
                        );
                    }
                    Some(Err(e)) => {
                        shared.reload_failures.fetch_add(1, Ordering::SeqCst);
                        obs::metrics::counter_inc("serve.reload_failures");
                        obs::warn!(
                            "serve.reload_failed",
                            "model source changed but was rejected ({e}); previous epoch keeps serving"
                        );
                    }
                }
            }
        }
        // Only this thread sets the epoch gauge, so the additive registry
        // merge yields exactly the current epoch.
        obs::metrics::gauge_set("serve.epoch", shared.provider.epoch() as f64);

        if shutting_down && alive == 0 && slots.iter().all(|s| s.restart_due.is_none()) {
            break;
        }
    }

    // Strand nothing: answer anything left in a down slot's queue.
    for slot in &shared.slots {
        for job in slot.queue.drain_all() {
            let id = job.id;
            answer(
                shared,
                job,
                Response::Error { id, code: 503, message: "server is shutting down".into() },
            );
        }
    }
    // Abandoned (wedged) threads are detached deliberately: joining a
    // thread stuck in a backend call would hang shutdown forever.
    drop(abandoned);
    shared.park_registry();
}

/// Re-routes a dead replica's jobs to healthy siblings, answering 500
/// after [`MAX_ATTEMPTS`] dispatches (poison pill), 429 when the siblings
/// are saturated, and 503 when nobody is left.
fn redispatch(shared: &Shared, from: usize, orphans: Vec<Job>) {
    for mut job in orphans {
        job.attempts += 1;
        if job.attempts >= MAX_ATTEMPTS {
            let id = job.id;
            let message = format!(
                "request crashed {} replica(s) and was dropped (poison pill?)",
                job.attempts
            );
            answer(shared, job, Response::Error { id, code: 500, message });
            continue;
        }
        // A job that just crashed `from` must not be handed straight back
        // to its restarted incarnation.
        match shared.submit(job, Some(from)) {
            Ok(()) => {
                shared.rerouted.fetch_add(1, Ordering::SeqCst);
                obs::metrics::counter_inc("serve.rerouted");
            }
            Err((job, SubmitError::Shed)) => {
                let id = job.id;
                let retry_after_ms = shared.config.retry_after.as_millis() as u64;
                answer(shared, job, Response::Rejected { id, retry_after_ms });
            }
            Err((job, SubmitError::NoReplica | SubmitError::Closed)) => {
                let id = job.id;
                answer(
                    shared,
                    job,
                    Response::Error {
                        id,
                        code: 503,
                        message: "no healthy replica available".into(),
                    },
                );
            }
        }
    }
}
