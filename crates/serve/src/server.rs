//! The prediction server: accept loop and connection handlers in front of
//! the supervised replica pool ([`crate::pool`]).
//!
//! Thread model: the accept loop runs on the caller's thread
//! ([`Server::run`]), one handler thread per connection parses requests
//! and writes responses, one thread per replica drains its shard queue and
//! calls its private [`BatchPredictor`], and one supervisor thread restarts
//! crashed/wedged replicas and watches the model source. Every worker
//! thread records into its own thread-local [`gdse_obs`] registry; each
//! snapshot is accumulated at thread exit and merged into the caller's
//! registry when `run` returns, so `run_report.json` sees one consistent
//! `serve.*` total.
//!
//! ## Metric catalog (`serve.*`)
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `serve.connections` | counter | accepted TCP connections |
//! | `serve.requests` | counter | parsed predict requests |
//! | `serve.rejected` | counter | requests bounced off a full queue (429) |
//! | `serve.shed` | counter | load-shed requests (today identical to `serve.rejected`) |
//! | `serve.errors` | counter | malformed/unservable requests |
//! | `serve.predictions` | counter | rows answered with `status: ok` |
//! | `serve.batches` | counter | predictor micro-batches dispatched |
//! | `serve.batch_size` | histogram | requests per micro-batch ([`BATCH_EDGES`]) |
//! | `serve.queue_depth` | gauge | queue depth after the last drain |
//! | `serve.latency_us` | histogram | enqueue-to-response latency (p50/p99) |
//! | `serve.epoch` | gauge | model epoch currently serving |
//! | `serve.replica_crashes` | counter | replica panics/kill drills/wedges |
//! | `serve.replica_wedged` | counter | replicas retired for making no progress |
//! | `serve.replica_restarts` | counter | supervised replica restarts |
//! | `serve.replica_swaps` | counter | per-replica hot-swap backend rebuilds |
//! | `serve.rerouted` | counter | orphaned jobs re-routed to a sibling |
//! | `serve.reloads` | counter | successful model reloads |
//! | `serve.reload_failures` | counter | rejected model reloads (rolled back) |
//! | `serve.oversize` | counter | request lines over the size cap (413) |
//! | `serve.idle_closed` | counter | connections closed by the idle timeout |
//! | `serve.deadline_exceeded` | counter | predict requests answered 504 |
//! | `serve.queue_depth{replica}` | gauge | live per-replica queue depth (updated on every enqueue/dequeue) |
//! | `serve.trace.total_us` | histogram | end-to-end traced request duration |
//! | `serve.trace.ingress_us` | histogram | read + parse + job construction |
//! | `serve.trace.route_us` | histogram | shard routing / enqueue attempts |
//! | `serve.trace.queue_wait_us` | histogram | enqueued → popped by a replica (also per `{kernel}`/`{replica}`) |
//! | `serve.trace.batch_wait_us` | histogram | popped → backend dispatch (also per `{kernel}`/`{replica}`) |
//! | `serve.trace.infer_us` | histogram | the backend call itself (also per `{kernel}`/`{replica}`) |
//! | `serve.trace.write_us` | histogram | response serialization + socket write (also per `{kernel}`/`{replica}`) |
//! | `serve.trace.slow` | counter | traces over [`ServeConfig::trace_slow`], each dumped at Warn |
//!
//! A continuous-learning daemon additionally mirrors its `learn.*` series
//! (rounds, buffer depth, last fine-tune loss, swap counts) into the same
//! live registry through [`ServerHandle::live_metrics`], and answers the
//! `{"learn-status": true}` admin verb through an attached
//! [`crate::LearnStatusSource`]; servers without a learner answer it 404.
//!
//! Trace histograms and the queue-depth gauge live in the pool's
//! *shared* registry so `admin stats` reads them from the running server;
//! they are folded into the caller's thread-local registry exactly once,
//! when [`Server::run`] returns.

use crate::pool::{self, Job, ModelProvider, Shared, StaticProvider, SubmitError};
use crate::protocol::{parse_request, Request, Response};
use crate::ServeError;
use crate::pool::BatchPredictor;
use gdse_obs as obs;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::pool::POLL;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded queue capacity **per replica**; a full queue sheds with a
    /// 429 + retry-after (0 rejects everything — useful for drills).
    pub queue_capacity: usize,
    /// Most requests dispatched to one replica in one micro-batch.
    pub max_batch: usize,
    /// Stop (gracefully) after answering this many predict requests.
    pub max_requests: Option<u64>,
    /// Replica count: independent workers, each owning its own backend.
    pub replicas: usize,
    /// How long a connection handler waits for its prediction before
    /// answering 504.
    pub request_timeout: Duration,
    /// Close connections that send no complete request for this long
    /// (`None` = never — trusted clients).
    pub idle_timeout: Option<Duration>,
    /// Longest accepted request line; longer lines are answered 413
    /// without buffering them.
    pub max_line_bytes: usize,
    /// `retry_after_ms` hint attached to 429 responses.
    pub retry_after: Duration,
    /// Initial supervised-restart backoff (doubles per consecutive
    /// failure, capped internally at 2 s).
    pub restart_backoff: Duration,
    /// Retire a replica making no progress inside one backend call for
    /// this long (`None` = never).
    pub wedge_timeout: Option<Duration>,
    /// Poll the model source for changes this often (`None` = only
    /// explicit `{"reload": true}` requests).
    pub reload_watch: Option<Duration>,
    /// Dump a Warn-level span timeline for any request slower than this
    /// (`None` = never).
    pub trace_slow: Option<Duration>,
    /// Completed traces remembered per flight-recorder ring (per replica,
    /// plus one ring for requests that never reached a replica). 0 disables
    /// the recorder; `admin trace` then always answers an empty array.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 16,
            max_requests: None,
            replicas: 1,
            request_timeout: Duration::from_secs(60),
            idle_timeout: None,
            max_line_bytes: 64 * 1024,
            retry_after: Duration::from_millis(50),
            restart_backoff: Duration::from_millis(50),
            wedge_timeout: None,
            reload_watch: None,
            trace_slow: None,
            trace_capacity: 256,
        }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Predict requests answered with `status: ok`.
    pub served: u64,
    /// Requests rejected off a full queue.
    pub rejected: u64,
    /// Requests answered with `status: error`.
    pub errors: u64,
    /// Load-shed requests (currently identical to `rejected`).
    pub shed: u64,
    /// Replica crashes (panics, kill drills, wedges).
    pub replica_crashes: u64,
    /// Supervised replica restarts.
    pub replica_restarts: u64,
    /// Orphaned jobs re-routed to a sibling replica.
    pub rerouted: u64,
    /// Successful model reloads.
    pub reloads: u64,
    /// Rejected model reloads (previous model kept serving).
    pub reload_failures: u64,
}

/// A bound, not-yet-running prediction server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Clonable remote control of a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates graceful shutdown: the queues drain, in-flight requests
    /// are answered, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Total depth across every replica's request queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth()
    }

    /// The model epoch currently offered by the provider.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Forces a model reload (validate, cut over or roll back).
    ///
    /// # Errors
    ///
    /// Why the new model version was rejected; the old one keeps serving.
    pub fn reload(&self) -> Result<u64, String> {
        self.shared.reload()
    }

    /// Chaos drill: crash replica `replica`; the supervisor re-routes its
    /// requests and restarts it with backoff.
    ///
    /// # Errors
    ///
    /// When the index is out of range or the replica is already down.
    pub fn kill_replica(&self, replica: usize) -> Result<(), String> {
        self.shared.kill_replica(replica)
    }

    /// Lifetime stats so far (also returned by [`Server::run`]).
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.shared)
    }

    /// Attaches the source the `{"learn-status": true}` admin verb answers
    /// from. Until one is attached the verb answers 404.
    pub fn attach_learn_status(&self, source: Arc<dyn crate::LearnStatusSource>) {
        *self.shared.learn.lock().expect("learn lock") = Some(source);
    }

    /// The pool's live cross-thread registry: what `admin stats` reads
    /// while the server runs. A learner thread mirrors its `learn.*`
    /// series here so operators see them mid-flight.
    pub fn live_metrics(&self) -> Arc<obs::metrics::SharedMetrics> {
        Arc::clone(&self.shared.live)
    }

    /// Whether shutdown has begun (graceful drain in progress or done).
    /// A background learner polls this to stop between rounds.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

fn stats_of(shared: &Shared) -> ServeStats {
    ServeStats {
        served: shared.served.load(Ordering::SeqCst),
        rejected: shared.rejected.load(Ordering::SeqCst),
        errors: shared.errors.load(Ordering::SeqCst),
        shed: shared.shed.load(Ordering::SeqCst),
        replica_crashes: shared.replica_crashes.load(Ordering::SeqCst),
        replica_restarts: shared.replica_restarts.load(Ordering::SeqCst),
        rerouted: shared.rerouted.load(Ordering::SeqCst),
        reloads: shared.reloads.load(Ordering::SeqCst),
        reload_failures: shared.reload_failures.load(Ordering::SeqCst),
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port) and prepares the server around a single fixed `predictor`
    /// shared by every replica (epoch 0, not reloadable).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        predictor: impl BatchPredictor + 'static,
    ) -> Result<Server, ServeError> {
        Server::bind_with_provider(addr, config, Arc::new(StaticProvider::new(predictor)))
    }

    /// Binds `addr` around a versioned model source: each replica builds
    /// its own backend from `provider` and follows its epoch (hot swap).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn bind_with_provider(
        addr: &str,
        config: ServeConfig,
        provider: Arc<dyn ModelProvider>,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|source| ServeError::Bind { addr: addr.to_string(), source })?;
        let local = listener.local_addr().map_err(ServeError::Io)?;
        let shared = Arc::new(Shared::new(config, provider, local));
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that can control the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Runs until a shutdown request, a [`ServerHandle::shutdown`], or the
    /// configured request limit; drains in-flight work, folds every worker
    /// thread's `serve.*` metrics into the caller's registry, and reports
    /// what happened.
    pub fn run(self) -> ServeStats {
        let Server { listener, shared } = self;
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || pool::supervise(&shared))
        };

        let mut handlers = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        }
        drop(listener);
        for h in handlers {
            let _ = h.join();
        }
        let _ = supervisor.join();

        for snap in shared.registries.lock().expect("registry lock").drain(..) {
            obs::metrics::merge(&snap);
        }
        // Trace histograms and queue-depth gauges live in the shared live
        // registry (so `admin stats` sees them mid-flight); fold them into
        // the caller exactly once, here.
        obs::metrics::merge(&shared.live.snapshot());
        stats_of(&shared)
    }
}

fn write_line(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = response.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Writes `response` with the request's trace id echoed as a top-level
/// `trace_id` field, so clients can correlate answers with their own logs.
fn write_line_traced(
    stream: &mut TcpStream,
    response: &Response,
    trace_id: &str,
) -> std::io::Result<()> {
    let mut line = response.to_json_line_traced(Some(trace_id));
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Span names that also get per-kernel and per-replica labeled histogram
/// variants. `ingress`/`route`/`total` stay base-only: they happen before
/// routing, so replica labels would lie and kernel labels add little.
const LABELED_SPANS: [&str; 4] = ["queue_wait", "batch_wait", "infer", "write"];

/// Books a sealed trace into the live registry and the flight recorder,
/// and dumps a Warn-level timeline when it crossed the slow threshold.
fn record_trace(shared: &Shared, trace: &obs::trace::RequestTrace) {
    let live = &shared.live;
    live.observe_us("serve.trace.total_us", trace.total_us);
    for span in &trace.spans {
        let base = format!("serve.trace.{}_us", span.name);
        live.observe_us(&base, span.dur_us);
        if LABELED_SPANS.contains(&span.name.as_str()) {
            live.observe_us(&obs::metrics::labeled(&base, "kernel", &trace.kernel), span.dur_us);
            if trace.replica >= 0 {
                live.observe_us(
                    &obs::metrics::labeled(&base, "replica", &trace.replica.to_string()),
                    span.dur_us,
                );
            }
        }
    }
    shared.recorder.record(trace.clone());
    if let Some(slow) = shared.config.trace_slow {
        if u128::from(trace.total_us) >= slow.as_micros() {
            live.counter_inc("serve.trace.slow");
            obs::warn!(
                "serve.trace.slow",
                "trace {} took {} us ({})",
                trace.trace_id,
                trace.total_us,
                trace.timeline();
                trace_id = trace.trace_id.clone(),
                kernel = trace.kernel.clone(),
                replica = trace.replica,
                total_us = trace.total_us,
                timeline = trace.timeline(),
            );
        }
    }
}

/// One attempt at reading a request line, bounded in size and time.
enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// The line exceeded the cap; the excess was discarded up to the next
    /// newline, so the connection is still in sync.
    TooLarge,
    /// Peer hung up.
    Eof,
    /// Server is shutting down.
    Shutdown,
    /// No complete request within the idle timeout.
    Idle,
    /// Hard socket error.
    Failed,
}

/// Reads one `\n`-terminated line of at most `max_bytes` bytes, polling
/// the shutdown flag and the idle deadline while blocked. Never buffers
/// more than `max_bytes` + one socket read — an oversized line is
/// discarded as it streams past, not accumulated.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
    max_bytes: usize,
    idle: Option<Duration>,
) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    let started = Instant::now();
    loop {
        enum Step {
            Consumed(usize, bool), // (bytes, saw_newline)
            Eof,
            Blocked,
            Failed,
        }
        let step = match reader.fill_buf() {
            Ok([]) => Step::Eof,
            Ok(available) => match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !discarding {
                        line.extend_from_slice(&available[..pos]);
                    }
                    Step::Consumed(pos + 1, true)
                }
                None => {
                    let n = available.len();
                    if !discarding {
                        if line.len() + n > max_bytes {
                            discarding = true;
                            line.clear();
                        } else {
                            line.extend_from_slice(available);
                        }
                    }
                    Step::Consumed(n, false)
                }
            },
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Step::Blocked
            }
            Err(_) => Step::Failed,
        };
        match step {
            Step::Consumed(n, saw_newline) => {
                reader.consume(n);
                if saw_newline {
                    if discarding || line.len() > max_bytes {
                        return LineRead::TooLarge;
                    }
                    return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
                }
            }
            Step::Eof => return LineRead::Eof,
            Step::Blocked => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return LineRead::Shutdown;
                }
                if idle.is_some_and(|d| started.elapsed() > d) {
                    return LineRead::Idle;
                }
            }
            Step::Failed => return LineRead::Failed,
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    obs::metrics::counter_inc("serve.connections");
    let _ = stream.set_read_timeout(Some(POLL));
    // Answers are one small write each; without TCP_NODELAY they can sit
    // behind Nagle waiting for the peer's delayed ACK (~40 ms).
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shared.park_registry();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let config = shared.config;
    loop {
        let line = match read_request_line(
            &mut reader,
            shared,
            config.max_line_bytes,
            config.idle_timeout,
        ) {
            LineRead::Line(l) => l,
            LineRead::TooLarge => {
                obs::metrics::counter_inc("serve.oversize");
                obs::metrics::counter_inc("serve.errors");
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let resp = Response::Error {
                    id: 0,
                    code: 413,
                    message: format!(
                        "request line exceeds {} bytes (RequestTooLarge)",
                        config.max_line_bytes
                    ),
                };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
                continue;
            }
            LineRead::Idle => {
                obs::metrics::counter_inc("serve.idle_closed");
                let resp = Response::Error {
                    id: 0,
                    code: 408,
                    message: "connection idle past the request timeout".into(),
                };
                let _ = write_line(&mut writer, &resp);
                break;
            }
            LineRead::Eof | LineRead::Shutdown | LineRead::Failed => break,
        };
        // Trace clock zero: the moment the request line was fully read.
        let received = Instant::now();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Err(message) => {
                obs::metrics::counter_inc("serve.errors");
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let resp = Response::Error { id: 0, code: 400, message };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::Shutdown) => {
                let _ = write_line(&mut writer, &Response::ShuttingDown);
                shared.begin_shutdown();
                break;
            }
            Ok(Request::Reload) => {
                let resp = match shared.reload() {
                    Ok(epoch) => Response::Reloaded { epoch },
                    Err(message) => Response::Error { id: 0, code: 500, message },
                };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::KillReplica { replica }) => {
                let resp = match shared.kill_replica(replica) {
                    Ok(()) => Response::Killed { replica },
                    Err(message) => Response::Error { id: 0, code: 400, message },
                };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::Stats) => {
                let resp = Response::Stats { body: shared.stats_value() };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::LearnStatus) => {
                let source = shared.learn.lock().expect("learn lock").clone();
                let resp = match source {
                    Some(src) => Response::LearnStatus { body: src.learn_status() },
                    None => Response::Error {
                        id: 0,
                        code: 404,
                        message: "no continuous-learning driver attached".into(),
                    },
                };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::Trace { query }) => {
                let resp = Response::Trace { body: shared.trace_value(&query) };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::Predict { id, kernel, index, trace }) => {
                obs::metrics::counter_inc("serve.requests");
                // A usable client id is adopted; absent or malformed ones
                // are replaced by a minted id — every request is traced.
                let tid = trace
                    .as_deref()
                    .and_then(obs::trace::TraceId::parse)
                    .unwrap_or_else(obs::trace::TraceId::mint);
                let trace_id = tid.to_string();
                let kernel_name = kernel.clone();
                let mut tb = obs::trace::TraceBuilder::new_at(tid, received);
                let accepted = Instant::now();
                tb.span("ingress", received, accepted);
                let (tx, rx) = mpsc::channel();
                let job = Job {
                    id,
                    kernel,
                    index,
                    attempts: 0,
                    enqueued: accepted,
                    routed: accepted,
                    replica: None,
                    trace: tb,
                    reply: tx,
                };
                // `sealed` is the trace that traveled with the job, handed
                // back by whichever path answered; a timed-out request's
                // trace is still in flight, so there is nothing to seal.
                let (response, sealed) = match shared.submit(job, None) {
                    Ok(()) => match rx.recv_timeout(config.request_timeout) {
                        Ok(ans) => (ans.response, Some((ans.trace, ans.replica))),
                        Err(_) if shared.shutdown.load(Ordering::SeqCst) => (
                            Response::Error {
                                id,
                                code: 503,
                                message: "server stopped before answering".into(),
                            },
                            None,
                        ),
                        Err(_) => {
                            obs::metrics::counter_inc("serve.deadline_exceeded");
                            (
                                Response::Error {
                                    id,
                                    code: 504,
                                    message: "request deadline exceeded".into(),
                                },
                                None,
                            )
                        }
                    },
                    Err((job, SubmitError::Shed)) => {
                        let retry_after_ms = config.retry_after.as_millis() as u64;
                        pool::answer(shared, job, Response::Rejected { id, retry_after_ms });
                        match rx.try_recv() {
                            Ok(ans) => (ans.response, Some((ans.trace, ans.replica))),
                            Err(_) => (Response::Rejected { id, retry_after_ms }, None),
                        }
                    }
                    Err((job, SubmitError::NoReplica)) => {
                        let resp = Response::Error {
                            id,
                            code: 503,
                            message: "no healthy replica available".into(),
                        };
                        pool::answer(shared, job, resp.clone());
                        match rx.try_recv() {
                            Ok(ans) => (ans.response, Some((ans.trace, ans.replica))),
                            Err(_) => (resp, None),
                        }
                    }
                    Err((job, SubmitError::Closed)) => {
                        let resp = Response::Error {
                            id,
                            code: 503,
                            message: "server is shutting down".into(),
                        };
                        pool::answer(shared, job, resp.clone());
                        match rx.try_recv() {
                            Ok(ans) => (ans.response, Some((ans.trace, ans.replica))),
                            Err(_) => (resp, None),
                        }
                    }
                };
                let write_start = Instant::now();
                let wrote = write_line_traced(&mut writer, &response, &trace_id);
                if let Some((mut tb, replica)) = sealed {
                    tb.span("write", write_start, Instant::now());
                    let epoch = match &response {
                        Response::Ok { epoch, .. } => *epoch,
                        _ => 0,
                    };
                    record_trace(shared, &tb.finish(&kernel_name, replica, epoch));
                }
                if wrote.is_err() {
                    break;
                }
            }
        }
    }
    shared.park_registry();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ModelProvider;
    use crate::protocol::PredictionRow;
    use crate::Client;
    use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize};
    use std::sync::Barrier;

    /// Deterministic backend: row fields are pure functions of the inputs,
    /// except `lut`, which carries the epoch the backend was built at (so
    /// hot-swap tests can prove the backend really rebuilt).
    fn echo_row(kernel: &str, index: u128, epoch: u64) -> PredictionRow {
        PredictionRow {
            valid_prob: (index % 100) as f64 / 100.0,
            cycles: (index as u64).wrapping_mul(3).wrapping_add(kernel.len() as u64),
            dsp: (index % 5) as f64 / 10.0,
            bram: (index % 7) as f64,
            lut: epoch as f64,
            ff: (index % 13) as f64,
        }
    }

    struct EchoBackend;

    impl BatchPredictor for EchoBackend {
        fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
            if kernel == "no-such-kernel" {
                return Err(format!("unknown kernel `{kernel}`"));
            }
            Ok(indices.iter().map(|&i| echo_row(kernel, i, 0)).collect())
        }
    }

    /// Backend whose first call announces itself and then blocks on a
    /// barrier — pins later jobs in the queue for backpressure tests.
    struct GatedBackend {
        gate: Arc<Barrier>,
        calls: Arc<AtomicUsize>,
    }

    impl BatchPredictor for GatedBackend {
        fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
            if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                self.gate.wait();
            }
            Ok(indices.iter().map(|&i| echo_row(kernel, i, 0)).collect())
        }
    }

    /// A chaos-instrumented provider: versioned echo backends that can be
    /// told to panic on `poison` or stall on `slow` a bounded number of
    /// times, plus a switch to make reloads fail.
    struct TestProvider {
        epoch: AtomicU64,
        fail_reload: std::sync::atomic::AtomicBool,
        poison_remaining: Arc<AtomicI64>,
        slow_remaining: Arc<AtomicI64>,
        slow_for: Duration,
    }

    impl TestProvider {
        fn new() -> Self {
            TestProvider {
                epoch: AtomicU64::new(1),
                fail_reload: std::sync::atomic::AtomicBool::new(false),
                poison_remaining: Arc::new(AtomicI64::new(0)),
                slow_remaining: Arc::new(AtomicI64::new(0)),
                slow_for: Duration::from_millis(400),
            }
        }
    }

    fn take(counter: &AtomicI64) -> bool {
        counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| match v {
                0 => None,
                v if v < 0 => Some(v), // negative = unlimited
                v => Some(v - 1),
            })
            .is_ok()
    }

    struct TestBackend {
        epoch: u64,
        poison_remaining: Arc<AtomicI64>,
        slow_remaining: Arc<AtomicI64>,
        slow_for: Duration,
    }

    impl BatchPredictor for TestBackend {
        fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
            if kernel == "poison" && take(&self.poison_remaining) {
                panic!("synthetic backend crash");
            }
            if kernel == "slow" && take(&self.slow_remaining) {
                std::thread::sleep(self.slow_for);
            }
            Ok(indices.iter().map(|&i| echo_row(kernel, i, self.epoch)).collect())
        }
    }

    impl ModelProvider for TestProvider {
        fn epoch(&self) -> u64 {
            self.epoch.load(Ordering::SeqCst)
        }

        fn build(&self) -> Result<(Box<dyn BatchPredictor>, u64), String> {
            let epoch = self.epoch.load(Ordering::SeqCst);
            Ok((
                Box::new(TestBackend {
                    epoch,
                    poison_remaining: Arc::clone(&self.poison_remaining),
                    slow_remaining: Arc::clone(&self.slow_remaining),
                    slow_for: self.slow_for,
                }),
                epoch,
            ))
        }

        fn reload(&self) -> Result<u64, String> {
            if self.fail_reload.load(Ordering::SeqCst) {
                return Err("checksum mismatch (synthetic)".into());
            }
            Ok(self.epoch.fetch_add(1, Ordering::SeqCst) + 1)
        }
    }

    fn start(
        config: ServeConfig,
        backend: impl BatchPredictor + 'static,
    ) -> (ServerHandle, std::thread::JoinHandle<ServeStats>) {
        let server = Server::bind("127.0.0.1:0", config, backend).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    fn start_with_provider(
        config: ServeConfig,
        provider: Arc<dyn ModelProvider>,
    ) -> (ServerHandle, std::thread::JoinHandle<ServeStats>) {
        let server = Server::bind_with_provider("127.0.0.1:0", config, provider).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    fn wait_until(deadline_ms: u64, what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn concurrent_clients_get_deterministic_answers() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr().to_string();
        std::thread::scope(|s| {
            for c in 0..6u64 {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    for i in 0..10u64 {
                        let idx = u128::from(c * 1_000 + i);
                        let resp = client.predict(c * 100 + i, "gemm", idx).expect("predict");
                        match resp {
                            Response::Ok { id, epoch: 0, row } => {
                                assert_eq!(id, c * 100 + i);
                                assert_eq!(row, echo_row("gemm", idx, 0), "responses are pure");
                            }
                            other => panic!("expected ok, got {other:?}"),
                        }
                    }
                });
            }
        });
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 60);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.replica_crashes, 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_hanging() {
        let gate = Arc::new(Barrier::new(2));
        let calls = Arc::new(AtomicUsize::new(0));
        let backend = GatedBackend { gate: Arc::clone(&gate), calls: Arc::clone(&calls) };
        let config = ServeConfig {
            queue_capacity: 1,
            max_batch: 1,
            ..ServeConfig::default()
        };
        let (handle, join) = start(config, backend);
        let addr = handle.addr().to_string();

        // Request 1 is popped by the replica and blocks inside the backend.
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.predict(1, "gemm", 10).expect("predict")
            })
        };
        wait_until(5_000, "first batch to reach the backend", || {
            calls.load(Ordering::SeqCst) >= 1
        });

        // Request 2 occupies the single queue slot (response arrives later).
        let second = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.predict(2, "gemm", 20).expect("predict")
            })
        };
        wait_until(5_000, "second request to occupy the queue", || handle.queue_depth() == 1);

        // Request 3 finds the queue full: immediate 429 with a backoff
        // hint, no hang.
        let mut c3 = Client::connect(&addr).expect("connect");
        let started = Instant::now();
        let rejected = c3.predict(3, "gemm", 30).expect("predict");
        match rejected {
            Response::Rejected { id: 3, retry_after_ms } => {
                assert!(retry_after_ms > 0, "shed responses carry a retry-after hint");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(rejected.code(), 429);
        assert!(started.elapsed() < Duration::from_secs(5), "rejection must be prompt");

        // Open the gate: the pinned and queued requests complete normally.
        gate.wait();
        assert!(matches!(first.join().unwrap(), Response::Ok { id: 1, .. }));
        assert!(matches!(second.join().unwrap(), Response::Ok { id: 2, .. }));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.shed, 1);
    }

    #[test]
    fn backend_errors_are_reported_not_fatal() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        match client.predict(5, "no-such-kernel", 1).expect("roundtrip") {
            Response::Error { id: 5, code: 400, message } => {
                assert!(message.contains("no-such-kernel"));
            }
            other => panic!("expected error, got {other:?}"),
        }
        // The server is still healthy.
        assert!(matches!(
            client.predict(6, "gemm", 2).expect("roundtrip"),
            Response::Ok { id: 6, .. }
        ));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn malformed_lines_get_400() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"this is not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match Response::parse(line.trim()).unwrap() {
            Response::Error { code: 400, .. } => {}
            other => panic!("expected 400, got {other:?}"),
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn oversized_request_line_is_rejected_with_413_not_buffered() {
        let config = ServeConfig { max_line_bytes: 1024, ..ServeConfig::default() };
        let (handle, join) = start(config, EchoBackend);
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        // 64 KiB of garbage on one line: far over the 1 KiB cap.
        let big = vec![b'x'; 64 * 1024];
        stream.write_all(&big).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match Response::parse(line.trim()).unwrap() {
            Response::Error { code: 413, message, .. } => {
                assert!(message.contains("RequestTooLarge"), "{message}");
            }
            other => panic!("expected 413, got {other:?}"),
        }
        // The connection is still in sync: a normal request works.
        stream.write_all(b"{\"id\": 9, \"kernel\": \"gemm\", \"index\": 4}\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(matches!(
            Response::parse(line.trim()).unwrap(),
            Response::Ok { id: 9, .. }
        ));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn idle_connections_are_closed_after_the_timeout() {
        let config = ServeConfig {
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServeConfig::default()
        };
        let (handle, join) = start(config, EchoBackend);
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        // Send nothing; the server must hang up (with a best-effort 408).
        let n = reader.read_line(&mut line).unwrap();
        if n > 0 {
            assert_eq!(Response::parse(line.trim()).unwrap().code(), 408);
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn protocol_shutdown_drains_and_exits() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        assert!(matches!(
            client.predict(1, "gemm", 1).expect("roundtrip"),
            Response::Ok { .. }
        ));
        client.shutdown_server().expect("shutdown ack");
        let stats = join.join().unwrap();
        let _ = handle;
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn request_limit_stops_the_server() {
        let config = ServeConfig { max_requests: Some(3), ..ServeConfig::default() };
        let (_handle, join) = start(config, EchoBackend);
        let addr = _handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        for i in 0..3u64 {
            assert!(matches!(
                client.predict(i, "gemm", u128::from(i)).expect("roundtrip"),
                Response::Ok { .. }
            ));
        }
        // No explicit shutdown: the limit ends the run.
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 3);
    }

    #[test]
    fn panicking_backend_is_isolated_and_requests_rerouted_to_a_sibling() {
        let provider = Arc::new(TestProvider::new());
        provider.poison_remaining.store(1, Ordering::SeqCst);
        let config = ServeConfig {
            replicas: 2,
            restart_backoff: Duration::from_millis(10),
            ..ServeConfig::default()
        };
        let (handle, join) = start_with_provider(config, Arc::clone(&provider) as _);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        // The first `poison` request crashes its home replica; the job is
        // re-routed to the sibling, whose backend serves it (the panic
        // trigger is consumed by the first attempt).
        match client.predict(1, "poison", 7).expect("roundtrip") {
            Response::Ok { id: 1, row, .. } => assert_eq!(row, echo_row("poison", 7, 1)),
            other => panic!("expected rerouted ok, got {other:?}"),
        }
        // The crashed replica restarts under supervision.
        wait_until(5_000, "supervised restart", || handle.stats().replica_restarts >= 1);
        // And ordinary traffic never stopped.
        assert!(matches!(
            client.predict(2, "gemm", 3).expect("roundtrip"),
            Response::Ok { id: 2, .. }
        ));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 2);
        assert!(stats.replica_crashes >= 1);
        assert!(stats.rerouted >= 1);
        assert!(stats.replica_restarts >= 1);
    }

    #[test]
    fn poison_pill_is_dropped_after_bounded_attempts_not_served_forever() {
        let provider = Arc::new(TestProvider::new());
        provider.poison_remaining.store(-1, Ordering::SeqCst); // always panic
        let config = ServeConfig {
            replicas: 2,
            restart_backoff: Duration::from_millis(10),
            ..ServeConfig::default()
        };
        let (handle, join) = start_with_provider(config, Arc::clone(&provider) as _);
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        match client.predict(1, "poison", 1).expect("roundtrip") {
            Response::Error { code, .. } => {
                assert!(
                    code == 500 || code == 503,
                    "poison pill must terminate as 500/503, got {code}"
                );
            }
            other => panic!("expected error, got {other:?}"),
        }
        // The pool heals: healthy traffic is served again.
        wait_until(5_000, "a replica to come back up", || {
            let mut c = Client::connect(&handle.addr().to_string()).expect("connect");
            matches!(c.predict(9, "gemm", 2), Ok(Response::Ok { .. }))
        });
        handle.shutdown();
        let stats = join.join().unwrap();
        assert!(stats.replica_crashes >= 2, "both dispatches must have crashed a replica");
    }

    #[test]
    fn kill_drill_restarts_replica_while_siblings_serve() {
        let provider = Arc::new(TestProvider::new());
        let config = ServeConfig {
            replicas: 3,
            restart_backoff: Duration::from_millis(10),
            ..ServeConfig::default()
        };
        let (handle, join) = start_with_provider(config, Arc::clone(&provider) as _);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        assert!(matches!(client.predict(1, "gemm", 1), Ok(Response::Ok { .. })));
        handle.kill_replica(0).expect("kill accepted");
        // Traffic keeps flowing throughout the crash + restart window.
        for i in 2..30u64 {
            match client.predict(i, "gemm", u128::from(i)).expect("roundtrip") {
                Response::Ok { .. } => {}
                Response::Rejected { .. } => {} // shed under churn is allowed
                other => panic!("request {i} failed: {other:?}"),
            }
        }
        wait_until(5_000, "killed replica to restart", || {
            handle.stats().replica_restarts >= 1
        });
        handle.shutdown();
        let stats = join.join().unwrap();
        assert!(stats.replica_crashes >= 1);
        assert!(stats.replica_restarts >= 1);
    }

    #[test]
    fn hot_swap_retags_epoch_and_rebuilds_backends_without_downtime() {
        let provider = Arc::new(TestProvider::new());
        let (handle, join) =
            start_with_provider(ServeConfig::default(), Arc::clone(&provider) as _);
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        match client.predict(1, "gemm", 5).expect("roundtrip") {
            Response::Ok { epoch: 1, row, .. } => assert_eq!(row.lut, 1.0, "built at epoch 1"),
            other => panic!("expected epoch-1 ok, got {other:?}"),
        }
        assert_eq!(handle.reload().expect("reload"), 2);
        assert_eq!(handle.epoch(), 2);
        // The replica follows at the next batch boundary.
        wait_until(5_000, "replica to adopt epoch 2", || {
            matches!(
                client.predict(99, "gemm", 5),
                Ok(Response::Ok { epoch: 2, row, .. }) if row.lut == 2.0
            )
        });
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.reloads, 1);
        assert_eq!(stats.reload_failures, 0);
    }

    #[test]
    fn failed_reload_rolls_back_and_previous_model_keeps_serving() {
        let provider = Arc::new(TestProvider::new());
        provider.fail_reload.store(true, Ordering::SeqCst);
        let (handle, join) =
            start_with_provider(ServeConfig::default(), Arc::clone(&provider) as _);
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        assert!(matches!(
            client.predict(1, "gemm", 5),
            Ok(Response::Ok { epoch: 1, .. })
        ));
        let err = handle.reload().expect_err("reload must fail");
        assert!(err.contains("checksum"), "{err}");
        assert_eq!(handle.epoch(), 1, "epoch must not advance on failure");
        // Protocol-level reload reports the same failure.
        assert!(matches!(
            client.reload_server(),
            Err(crate::ServeError::Protocol(_)) | Ok(_)
        ));
        assert!(matches!(
            client.predict(2, "gemm", 5),
            Ok(Response::Ok { epoch: 1, .. })
        ));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert!(stats.reload_failures >= 1);
        assert_eq!(stats.reloads, 0);
    }

    #[test]
    fn wedged_replica_is_retired_and_replaced() {
        let provider = Arc::new(TestProvider::new());
        provider.slow_remaining.store(1, Ordering::SeqCst);
        let config = ServeConfig {
            replicas: 1,
            max_batch: 1,
            wedge_timeout: Some(Duration::from_millis(100)),
            restart_backoff: Duration::from_millis(10),
            ..ServeConfig::default()
        };
        let (handle, join) = start_with_provider(config, Arc::clone(&provider) as _);
        let addr = handle.addr().to_string();
        // Request A wedges the only replica for 400 ms.
        let slow = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.predict(1, "slow", 1).expect("roundtrip")
            })
        };
        wait_until(5_000, "wedge to be detected", || handle.stats().replica_crashes >= 1);
        // A replacement replica serves new traffic long before the stuck
        // call would have finished.
        wait_until(5_000, "replacement replica", || {
            let mut c = Client::connect(&addr).expect("connect");
            matches!(c.predict(2, "gemm", 2), Ok(Response::Ok { .. }))
        });
        // The stale instance answers its batch late (late beats never).
        assert!(matches!(slow.join().unwrap(), Response::Ok { id: 1, .. }));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert!(stats.replica_crashes >= 1);
        assert!(stats.replica_restarts >= 1);
    }

    #[test]
    fn serve_metrics_are_merged_into_the_caller() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), EchoBackend).expect("bind");
        let handle = server.handle();
        // The merge lands in the registry of the thread that calls `run`,
        // so capture that thread's snapshot alongside the stats.
        let join = std::thread::spawn(move || {
            obs::metrics::reset();
            let stats = server.run();
            (stats, obs::metrics::snapshot())
        });
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        for i in 0..5u64 {
            client.predict(i, "gemm", u128::from(i)).expect("roundtrip");
        }
        drop(client);
        handle.shutdown();
        let (_stats, snap) = join.join().unwrap();
        assert_eq!(snap.counter("serve.requests"), Some(5));
        assert_eq!(snap.counter("serve.predictions"), Some(5));
        assert_eq!(snap.counter("serve.connections"), Some(1));
        assert_eq!(snap.gauge("serve.epoch"), Some(0.0), "static provider serves epoch 0");
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.batch_size")
            .expect("batch-size histogram present");
        assert!(hist.count >= 1);
        assert!(snap.histograms.iter().any(|h| h.name == "serve.latency_us"));
    }

    #[test]
    fn stats_and_trace_endpoints_reflect_live_state() {
        let config = ServeConfig { replicas: 2, ..ServeConfig::default() };
        let (handle, join) = start(config, EchoBackend);
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        // A traced predict: the echoed trace_id matches what we sent.
        stream
            .write_all(b"{\"id\": 1, \"kernel\": \"gemm\", \"index\": 5, \"trace_id\": \"deadbeef\"}\n")
            .unwrap();
        reader.read_line(&mut line).unwrap();
        let (resp, tid) = Response::parse_traced(line.trim()).unwrap();
        assert!(matches!(resp, Response::Ok { id: 1, .. }));
        assert_eq!(tid.as_deref(), Some("00000000deadbeef"), "client id normalized + echoed");

        // An untraced predict still gets a (minted) id echoed back.
        line.clear();
        stream.write_all(b"{\"id\": 2, \"kernel\": \"gemm\", \"index\": 6}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let (_, minted) = Response::parse_traced(line.trim()).unwrap();
        let minted = minted.expect("server mints when the client sends none");
        assert_eq!(minted.len(), 16);
        assert_ne!(minted, "00000000deadbeef");

        // Live stats from the RUNNING server: per-replica state + span
        // histograms with interpolated quantiles.
        line.clear();
        stream.write_all(b"{\"stats\": true}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let body = match Response::parse(line.trim()).unwrap() {
            Response::Stats { body } => body,
            other => panic!("expected stats, got {other:?}"),
        };
        let map = body.as_map().expect("stats body is a map");
        let get = |k: &str| map.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        let replicas = get("replicas").unwrap();
        assert_eq!(replicas.as_seq().unwrap().len(), 2);
        for r in replicas.as_seq().unwrap() {
            let rm = r.as_map().unwrap();
            for field in ["replica", "queue_depth", "epoch", "up", "restarts"] {
                assert!(rm.iter().any(|(n, _)| n == field), "replica entry has {field}");
            }
        }
        let hists = get("histograms").unwrap();
        let infer = hists
            .as_seq()
            .unwrap()
            .iter()
            .find(|h| {
                h.as_map()
                    .unwrap()
                    .iter()
                    .any(|(n, v)| n == "name" && v.as_str() == Some("serve.trace.infer_us"))
            })
            .expect("infer span histogram present in live stats")
            .as_map()
            .unwrap();
        let num = |k: &str| -> f64 {
            match infer.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()) {
                Some(serde::Value::Int(i)) => i as f64,
                Some(serde::Value::Float(f)) => f,
                other => panic!("{k} missing or non-numeric: {other:?}"),
            }
        };
        assert!(num("count") >= 2.0, "both predicts recorded an infer span");
        assert!(num("p50") <= num("p95") && num("p95") <= num("p99"));

        // The flight recorder answers by id and by "slow".
        line.clear();
        stream.write_all(b"{\"trace\": \"00000000deadbeef\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let by_id = match Response::parse(line.trim()).unwrap() {
            Response::Trace { body } => body,
            other => panic!("expected trace, got {other:?}"),
        };
        assert_eq!(by_id.as_seq().unwrap().len(), 1);
        line.clear();
        stream.write_all(b"{\"trace\": \"slow\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let slow = match Response::parse(line.trim()).unwrap() {
            Response::Trace { body } => body,
            other => panic!("expected trace, got {other:?}"),
        };
        let slowest = slow.as_seq().unwrap();
        assert!(!slowest.is_empty(), "slow listing remembers completed traces");
        let spans = slowest[0]
            .as_map()
            .unwrap()
            .iter()
            .find(|(n, _)| n == "spans")
            .map(|(_, v)| v.clone())
            .expect("trace carries its span timeline");
        assert!(!spans.as_seq().unwrap().is_empty());

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shard_routing_is_stable_per_kernel() {
        // Routing is an implementation detail, but its *stability* is the
        // contract: the same kernel must always map to the same home.
        let provider = Arc::new(TestProvider::new());
        let config = ServeConfig { replicas: 4, ..ServeConfig::default() };
        let shared = Shared::new(config, provider, "127.0.0.1:1".parse().unwrap());
        let homes: Vec<usize> = (0..4)
            .map(|_| {
                let (tx, _rx) = mpsc::channel();
                let now = Instant::now();
                let job = Job {
                    id: 0,
                    kernel: "gemm-ncubed".into(),
                    index: 0,
                    attempts: 0,
                    enqueued: now,
                    routed: now,
                    replica: None,
                    trace: obs::trace::TraceBuilder::new(obs::trace::TraceId::mint()),
                    reply: tx,
                };
                shared.slots.iter().for_each(|s| s.up.store(true, Ordering::SeqCst));
                shared.submit(job, None).ok().unwrap();
                shared
                    .slots
                    .iter()
                    .position(|s| s.queue.len() > 0)
                    .expect("job landed somewhere")
            })
            .collect();
        assert!(homes.windows(2).all(|w| w[0] == w[1]), "home must be stable: {homes:?}");
    }
}
