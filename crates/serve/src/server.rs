//! The prediction server: accept loop, connection handlers, micro-batcher.
//!
//! Thread model: the accept loop runs on the caller's thread
//! ([`Server::run`]), one handler thread per connection parses requests and
//! writes responses, and a single batcher thread drains the bounded queue
//! and calls the [`BatchPredictor`]. Handler and batcher threads record into
//! their own thread-local [`gdse_obs`] registries; each snapshot is
//! accumulated at thread exit and merged into the caller's registry when
//! `run` returns, so `run_report.json` sees one consistent `serve.*` total.
//!
//! ## Metric catalog (`serve.*`)
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `serve.connections` | counter | accepted TCP connections |
//! | `serve.requests` | counter | parsed predict requests |
//! | `serve.rejected` | counter | requests bounced off the full queue (429) |
//! | `serve.errors` | counter | malformed/unservable requests |
//! | `serve.predictions` | counter | rows answered with `status: ok` |
//! | `serve.batches` | counter | predictor micro-batches dispatched |
//! | `serve.batch_size` | histogram | requests per micro-batch ([`BATCH_EDGES`]) |
//! | `serve.queue_depth` | gauge | queue depth after the last drain |
//! | `serve.latency_us` | histogram | enqueue-to-response latency (p50/p99) |

use crate::protocol::{parse_request, PredictionRow, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::ServeError;
use gdse_obs as obs;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Bucket edges of the `serve.batch_size` histogram.
pub const BATCH_EDGES: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// How long blocked reads/waits sleep before re-checking the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// The model backend the server batches requests into.
///
/// Implementations answer one kernel's worth of design-point indices per
/// call — the natural unit for amortized graph encoding. `Err` fails the
/// whole group (e.g. unknown kernel); per-row failure is not modelled.
pub trait BatchPredictor: Send + Sync {
    /// Predicts QoR for `indices` of `kernel`'s design space, one row per
    /// index, in order.
    ///
    /// # Errors
    ///
    /// A human-readable reason the group cannot be served (reported to each
    /// client as a `status: "error"` response).
    fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String>;
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded queue capacity; a full queue rejects with 429 (0 rejects
    /// everything — useful for drills).
    pub queue_capacity: usize,
    /// Most requests dispatched to the predictor in one micro-batch.
    pub max_batch: usize,
    /// Stop (gracefully) after answering this many predict requests.
    pub max_requests: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { queue_capacity: 64, max_batch: 16, max_requests: None }
    }
}

/// What the server did over its lifetime, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Predict requests answered with `status: ok`.
    pub served: u64,
    /// Requests rejected off the full queue.
    pub rejected: u64,
    /// Requests answered with `status: error`.
    pub errors: u64,
}

struct Job {
    id: u64,
    kernel: String,
    index: u128,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    served: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    max_requests: Option<u64>,
    addr: SocketAddr,
    /// Thread-local registries of exited handler/batcher threads, merged
    /// into the caller's registry when `run` returns.
    registries: Mutex<Vec<obs::metrics::MetricsSnapshot>>,
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn park_registry(&self) {
        let snap = obs::metrics::snapshot();
        self.registries.lock().expect("registry lock").push(snap);
        obs::metrics::reset();
    }
}

/// A bound, not-yet-running prediction server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    predictor: Arc<dyn BatchPredictor>,
    max_batch: usize,
}

/// Clonable remote control of a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates graceful shutdown: the queue drains, in-flight requests are
    /// answered, then [`Server::run`] returns.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Current depth of the bounded request queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for an ephemeral
    /// port) and prepares the server around `predictor`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound.
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        predictor: impl BatchPredictor + 'static,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|source| ServeError::Bind { addr: addr.to_string(), source })?;
        let local = listener.local_addr().map_err(ServeError::Io)?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            max_requests: config.max_requests,
            addr: local,
            registries: Mutex::new(Vec::new()),
        });
        Ok(Server {
            listener,
            shared,
            predictor: Arc::new(predictor),
            max_batch: config.max_batch.max(1),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Runs until a shutdown request, a [`ServerHandle::shutdown`], or the
    /// configured request limit; drains in-flight work, folds every worker
    /// thread's `serve.*` metrics into the caller's registry, and reports
    /// what happened.
    pub fn run(self) -> ServeStats {
        let Server { listener, shared, predictor, max_batch } = self;
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared, predictor.as_ref(), max_batch))
        };

        let mut handlers = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let shared = Arc::clone(&shared);
                    handlers.push(std::thread::spawn(move || handle_connection(stream, &shared)));
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        }
        drop(listener);
        for h in handlers {
            let _ = h.join();
        }
        let _ = batcher.join();

        for snap in shared.registries.lock().expect("registry lock").drain(..) {
            obs::metrics::merge(&snap);
        }
        ServeStats {
            served: shared.served.load(Ordering::SeqCst),
            rejected: shared.rejected.load(Ordering::SeqCst),
            errors: shared.errors.load(Ordering::SeqCst),
        }
    }
}

fn answer(shared: &Shared, job: Job, response: Response) {
    obs::metrics::observe_us("serve.latency_us", job.enqueued.elapsed().as_micros() as u64);
    match &response {
        Response::Ok { .. } => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            obs::metrics::counter_inc("serve.predictions");
        }
        _ => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            obs::metrics::counter_inc("serve.errors");
        }
    }
    let _ = job.reply.send(response);
}

fn batcher_loop(shared: &Shared, predictor: &dyn BatchPredictor, max_batch: usize) {
    loop {
        let batch = match shared.queue.pop_batch(max_batch, POLL) {
            None => break, // closed and fully drained
            Some(b) if b.is_empty() => continue,
            Some(b) => b,
        };
        obs::metrics::gauge_set("serve.queue_depth", shared.queue.len() as f64);
        obs::metrics::counter_inc("serve.batches");
        obs::metrics::observe_with_edges("serve.batch_size", &BATCH_EDGES, batch.len() as u64);

        // Group by kernel, preserving arrival order, so each group is one
        // predictor call with an amortized forward pass.
        let mut groups: Vec<(String, Vec<Job>)> = Vec::new();
        for job in batch {
            match groups.iter_mut().find(|(k, _)| *k == job.kernel) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((job.kernel.clone(), vec![job])),
            }
        }
        for (kernel, jobs) in groups {
            let indices: Vec<u128> = jobs.iter().map(|j| j.index).collect();
            match predictor.predict(&kernel, &indices) {
                Ok(rows) if rows.len() == jobs.len() => {
                    for (job, row) in jobs.into_iter().zip(rows) {
                        let id = job.id;
                        answer(shared, job, Response::Ok { id, row });
                    }
                }
                Ok(rows) => {
                    let msg = format!(
                        "backend returned {} row(s) for {} request(s)",
                        rows.len(),
                        jobs.len()
                    );
                    for job in jobs {
                        let id = job.id;
                        answer(
                            shared,
                            job,
                            Response::Error { id, code: 500, message: msg.clone() },
                        );
                    }
                }
                Err(message) => {
                    for job in jobs {
                        let id = job.id;
                        answer(
                            shared,
                            job,
                            Response::Error { id, code: 400, message: message.clone() },
                        );
                    }
                }
            }
        }

        if let Some(limit) = shared.max_requests {
            let answered = shared.served.load(Ordering::SeqCst)
                + shared.errors.load(Ordering::SeqCst);
            if answered >= limit {
                shared.begin_shutdown();
            }
        }
    }
    shared.park_registry();
}

fn write_line(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = response.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    obs::metrics::counter_inc("serve.connections");
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shared.park_registry();
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    'conn: loop {
        line.clear();
        // Retry timed-out reads so a quiet connection notices shutdown;
        // read_line appends, so a partial line survives the retry.
        let read = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'conn;
                    }
                }
                Err(_) => break 'conn,
            }
        };
        if read == 0 {
            break; // EOF: client hung up
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_request(trimmed) {
            Err(message) => {
                obs::metrics::counter_inc("serve.errors");
                shared.errors.fetch_add(1, Ordering::SeqCst);
                let resp = Response::Error { id: 0, code: 400, message };
                if write_line(&mut writer, &resp).is_err() {
                    break;
                }
            }
            Ok(Request::Shutdown) => {
                let _ = write_line(&mut writer, &Response::ShuttingDown);
                shared.begin_shutdown();
                break;
            }
            Ok(Request::Predict { id, kernel, index }) => {
                obs::metrics::counter_inc("serve.requests");
                let (tx, rx) = mpsc::channel();
                let job = Job { id, kernel, index, enqueued: Instant::now(), reply: tx };
                let response = match shared.queue.try_push(job) {
                    Err((_, PushError::Full)) => {
                        obs::metrics::counter_inc("serve.rejected");
                        shared.rejected.fetch_add(1, Ordering::SeqCst);
                        Response::Rejected { id }
                    }
                    Err((_, PushError::Closed)) => Response::Error {
                        id,
                        code: 503,
                        message: "server is shutting down".into(),
                    },
                    Ok(()) => rx.recv_timeout(Duration::from_secs(60)).unwrap_or(
                        Response::Error {
                            id,
                            code: 503,
                            message: "server stopped before answering".into(),
                        },
                    ),
                };
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
            }
        }
    }
    shared.park_registry();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    /// Deterministic backend: row fields are pure functions of the inputs.
    struct EchoBackend;

    fn echo_row(kernel: &str, index: u128) -> PredictionRow {
        PredictionRow {
            valid_prob: (index % 100) as f64 / 100.0,
            cycles: (index as u64).wrapping_mul(3).wrapping_add(kernel.len() as u64),
            dsp: (index % 5) as f64 / 10.0,
            bram: (index % 7) as f64,
            lut: kernel.len() as f64,
            ff: (index % 13) as f64,
        }
    }

    impl BatchPredictor for EchoBackend {
        fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
            if kernel == "no-such-kernel" {
                return Err(format!("unknown kernel `{kernel}`"));
            }
            Ok(indices.iter().map(|&i| echo_row(kernel, i)).collect())
        }
    }

    /// Backend whose first call announces itself and then blocks on a
    /// barrier — pins later jobs in the queue for backpressure tests.
    struct GatedBackend {
        gate: Arc<Barrier>,
        calls: Arc<AtomicUsize>,
    }

    impl BatchPredictor for GatedBackend {
        fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
            if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                self.gate.wait();
            }
            Ok(indices.iter().map(|&i| echo_row(kernel, i)).collect())
        }
    }

    fn start(
        config: ServeConfig,
        backend: impl BatchPredictor + 'static,
    ) -> (ServerHandle, std::thread::JoinHandle<ServeStats>) {
        let server = Server::bind("127.0.0.1:0", config, backend).expect("bind");
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    fn wait_until(deadline_ms: u64, what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn concurrent_clients_get_deterministic_answers() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr().to_string();
        std::thread::scope(|s| {
            for c in 0..6u64 {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    for i in 0..10u64 {
                        let idx = u128::from(c * 1_000 + i);
                        let resp = client.predict(c * 100 + i, "gemm", idx).expect("predict");
                        match resp {
                            Response::Ok { id, row } => {
                                assert_eq!(id, c * 100 + i);
                                assert_eq!(row, echo_row("gemm", idx), "responses are pure");
                            }
                            other => panic!("expected ok, got {other:?}"),
                        }
                    }
                });
            }
        });
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 60);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn full_queue_rejects_instead_of_hanging() {
        let gate = Arc::new(Barrier::new(2));
        let calls = Arc::new(AtomicUsize::new(0));
        let backend = GatedBackend { gate: Arc::clone(&gate), calls: Arc::clone(&calls) };
        let config = ServeConfig { queue_capacity: 1, max_batch: 1, max_requests: None };
        let (handle, join) = start(config, backend);
        let addr = handle.addr().to_string();

        // Request 1 is popped by the batcher and blocks inside the backend.
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.predict(1, "gemm", 10).expect("predict")
            })
        };
        wait_until(5_000, "first batch to reach the backend", || {
            calls.load(Ordering::SeqCst) >= 1
        });

        // Request 2 occupies the single queue slot (response arrives later).
        let second = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.predict(2, "gemm", 20).expect("predict")
            })
        };
        wait_until(5_000, "second request to occupy the queue", || handle.queue_depth() == 1);

        // Request 3 finds the queue full: immediate 429, no hang.
        let mut c3 = Client::connect(&addr).expect("connect");
        let started = Instant::now();
        let rejected = c3.predict(3, "gemm", 30).expect("predict");
        assert_eq!(rejected, Response::Rejected { id: 3 });
        assert_eq!(rejected.code(), 429);
        assert!(started.elapsed() < Duration::from_secs(5), "rejection must be prompt");

        // Open the gate: the pinned and queued requests complete normally.
        gate.wait();
        assert!(matches!(first.join().unwrap(), Response::Ok { id: 1, .. }));
        assert!(matches!(second.join().unwrap(), Response::Ok { id: 2, .. }));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn backend_errors_are_reported_not_fatal() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        match client.predict(5, "no-such-kernel", 1).expect("roundtrip") {
            Response::Error { id: 5, code: 400, message } => {
                assert!(message.contains("no-such-kernel"));
            }
            other => panic!("expected error, got {other:?}"),
        }
        // The server is still healthy.
        assert!(matches!(
            client.predict(6, "gemm", 2).expect("roundtrip"),
            Response::Ok { id: 6, .. }
        ));
        handle.shutdown();
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn malformed_lines_get_400() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"this is not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        match Response::parse(line.trim()).unwrap() {
            Response::Error { code: 400, .. } => {}
            other => panic!("expected 400, got {other:?}"),
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn protocol_shutdown_drains_and_exits() {
        let (handle, join) = start(ServeConfig::default(), EchoBackend);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        assert!(matches!(
            client.predict(1, "gemm", 1).expect("roundtrip"),
            Response::Ok { .. }
        ));
        client.shutdown_server().expect("shutdown ack");
        let stats = join.join().unwrap();
        let _ = handle;
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn request_limit_stops_the_server() {
        let config = ServeConfig { max_requests: Some(3), ..ServeConfig::default() };
        let (_handle, join) = start(config, EchoBackend);
        let addr = _handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        for i in 0..3u64 {
            assert!(matches!(
                client.predict(i, "gemm", u128::from(i)).expect("roundtrip"),
                Response::Ok { .. }
            ));
        }
        // No explicit shutdown: the limit ends the run.
        let stats = join.join().unwrap();
        assert_eq!(stats.served, 3);
    }

    #[test]
    fn serve_metrics_are_merged_into_the_caller() {
        let server =
            Server::bind("127.0.0.1:0", ServeConfig::default(), EchoBackend).expect("bind");
        let handle = server.handle();
        // The merge lands in the registry of the thread that calls `run`,
        // so capture that thread's snapshot alongside the stats.
        let join = std::thread::spawn(move || {
            obs::metrics::reset();
            let stats = server.run();
            (stats, obs::metrics::snapshot())
        });
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        for i in 0..5u64 {
            client.predict(i, "gemm", u128::from(i)).expect("roundtrip");
        }
        drop(client);
        handle.shutdown();
        let (_stats, snap) = join.join().unwrap();
        assert_eq!(snap.counter("serve.requests"), Some(5));
        assert_eq!(snap.counter("serve.predictions"), Some(5));
        assert_eq!(snap.counter("serve.connections"), Some(1));
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.batch_size")
            .expect("batch-size histogram present");
        assert!(hist.count >= 1);
        assert!(snap.histograms.iter().any(|h| h.name == "serve.latency_us"));
    }
}
