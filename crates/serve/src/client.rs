//! A small blocking client for the JSON-lines protocol — what the `gnndse
//! predict --addr` subcommand and the e2e tests use.
//!
//! The client is built for an unreliable wire: connects and reads are
//! bounded by timeouts (a hung or half-dead server surfaces as
//! [`ServeError::Timeout`], never an infinite block), and
//! [`ClientConfig::retries`] turns transport failures and 429 rejections
//! into bounded, jitter-backed reconnect-and-retry loops. Requests are
//! idempotent predictions, so retrying after an ambiguous failure is safe.

use crate::protocol::{Request, Response};
use crate::ServeError;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side resilience knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Give up on `connect` after this long.
    pub connect_timeout: Duration,
    /// Give up on a response after this long (`None` = wait forever —
    /// only sensible against an in-process test server).
    pub read_timeout: Option<Duration>,
    /// How many times one request is retried after a transport failure or
    /// a 429 rejection (0 = fail fast). Each transport retry reconnects.
    pub retries: u32,
    /// Base backoff between retries; doubles per attempt, ±50% jitter.
    pub backoff: Duration,
    /// Honor 429 `retry_after_ms` hints by backing off and retrying
    /// (only when `retries` allows).
    pub retry_rejected: bool,
    /// Seed of the jitter PRNG, so tests can be made deterministic.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            retries: 0,
            backoff: Duration::from_millis(50),
            retry_rejected: true,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// A connected protocol client issuing one request at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    rng: u64,
}

impl Client {
    /// Connects to a running server, e.g. `"127.0.0.1:7878"`, with the
    /// default timeouts and no retries.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address does not resolve or the
    /// connection fails; [`ServeError::Timeout`] when it hangs.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience settings.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address does not resolve or the
    /// connection fails; [`ServeError::Timeout`] when it hangs.
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Client, ServeError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::Protocol(format!("`{addr}` resolves to no address")))?;
        let (reader, writer) = open(resolved, &config)?;
        Ok(Client { reader, writer, addr: resolved, config, rng: config.jitter_seed | 1 })
    }

    /// Tears down the current connection and dials again.
    ///
    /// # Errors
    ///
    /// Same as [`Client::connect`].
    pub fn reconnect(&mut self) -> Result<(), ServeError> {
        let (reader, writer) = open(self.addr, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    fn send_line(&mut self, line: &str) -> Result<(), ServeError> {
        // One write per request: a separate write for the trailing newline
        // would interact with Nagle + delayed ACK into ~40 ms round trips.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| {
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                ServeError::Timeout {
                    after: self.config.read_timeout.unwrap_or(Duration::ZERO),
                }
            } else {
                ServeError::Io(e)
            }
        })?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        Ok(line)
    }

    fn read_response(&mut self) -> Result<Response, ServeError> {
        let line = self.read_line()?;
        Response::parse(line.trim()).map_err(ServeError::Protocol)
    }

    fn roundtrip(&mut self, line: &str) -> Result<Response, ServeError> {
        self.send_line(line)?;
        self.read_response()
    }

    /// Like [`Client::roundtrip`] but also returns the server's echoed
    /// `trace_id`, when present and well-formed.
    fn roundtrip_traced(
        &mut self,
        line: &str,
    ) -> Result<(Response, Option<String>), ServeError> {
        self.send_line(line)?;
        let answer = self.read_line()?;
        Response::parse_traced(answer.trim()).map_err(ServeError::Protocol)
    }

    fn backoff_for(&mut self, attempt: u32, hint_ms: u64) -> Duration {
        backoff_duration(self.config.backoff, attempt, hint_ms, &mut self.rng)
    }

    /// Requests a prediction for `index` of `kernel` and waits for the
    /// response (which may be a rejection or an error — inspect the
    /// variant). With [`ClientConfig::retries`] > 0, transport failures
    /// reconnect and retry with jittered exponential backoff, and 429
    /// rejections back off by at least the server's `retry_after_ms` hint;
    /// when every attempt fails the last failure is wrapped in
    /// [`ServeError::RetriesExhausted`].
    ///
    /// # Errors
    ///
    /// Socket failures, timeouts, an unparseable response, or retry
    /// exhaustion.
    pub fn predict(&mut self, id: u64, kernel: &str, index: u128) -> Result<Response, ServeError> {
        self.predict_traced(id, kernel, index, None).map(|(resp, _)| resp)
    }

    /// [`Client::predict`] with request tracing: sends `trace` as the
    /// request's trace id (or lets the server mint one when `None`) and
    /// returns the trace id the server echoed alongside the response —
    /// the key for `admin <addr> trace <id>` and for correlating client
    /// and server logs.
    ///
    /// # Errors
    ///
    /// Same as [`Client::predict`].
    pub fn predict_traced(
        &mut self,
        id: u64,
        kernel: &str,
        index: u128,
        trace: Option<&str>,
    ) -> Result<(Response, Option<String>), ServeError> {
        let line = request_line(&Request::Predict {
            id,
            kernel: kernel.to_string(),
            index,
            trace: trace.map(str::to_string),
        });
        let mut last: Option<ServeError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                // Reconnect after transport failures (a failed dial is
                // itself retried on the next lap).
                if last.is_some() {
                    if let Err(e) = self.reconnect() {
                        let wait = self.backoff_for(attempt, 0);
                        std::thread::sleep(wait);
                        last = Some(e);
                        continue;
                    }
                }
            }
            match self.roundtrip_traced(&line) {
                Ok((Response::Rejected { id: rid, retry_after_ms }, _))
                    if self.config.retry_rejected && attempt < self.config.retries =>
                {
                    let wait = self.backoff_for(attempt, retry_after_ms);
                    std::thread::sleep(wait);
                    last = None; // the connection is fine; no reconnect
                    let _ = rid;
                }
                Ok(answer) => return Ok(answer),
                Err(e) if attempt < self.config.retries => {
                    let wait = self.backoff_for(attempt, 0);
                    std::thread::sleep(wait);
                    last = Some(e);
                }
                Err(e) => {
                    return Err(if self.config.retries == 0 {
                        e
                    } else {
                        ServeError::RetriesExhausted {
                            attempts: self.config.retries + 1,
                            last: Box::new(e),
                        }
                    });
                }
            }
        }
        // Every attempt was consumed by 429 backoffs: surface the shed.
        Err(ServeError::RetriesExhausted {
            attempts: self.config.retries + 1,
            last: Box::new(last.unwrap_or_else(|| {
                ServeError::Protocol("server kept shedding (429) through every retry".into())
            })),
        })
    }

    /// Asks the server to re-read its model artifact and cut over,
    /// returning the server's verdict ([`Response::Reloaded`] with the new
    /// epoch, or a `status: error` explaining the rollback).
    ///
    /// # Errors
    ///
    /// Socket failures or an unparseable response.
    pub fn reload_server(&mut self) -> Result<Response, ServeError> {
        let line = request_line(&Request::Reload);
        self.roundtrip(&line)
    }

    /// Chaos drill: asks the server to crash replica `replica`.
    ///
    /// # Errors
    ///
    /// Socket failures or an unparseable response.
    pub fn kill_replica(&mut self, replica: usize) -> Result<Response, ServeError> {
        let line = request_line(&Request::KillReplica { replica });
        self.roundtrip(&line)
    }

    /// Asks the server to shut down gracefully and waits for the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// Socket failures, or a non-acknowledgement response.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.send_line(&request_line(&Request::Shutdown))?;
        match self.read_response()? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected shutdown acknowledgement, got {other:?}"
            ))),
        }
    }

    /// Fetches the live telemetry snapshot of the RUNNING server: uptime,
    /// per-replica state, interpolated latency quantiles, and the full
    /// metrics snapshot (see `admin <addr> stats`).
    ///
    /// # Errors
    ///
    /// Socket failures or a non-stats response.
    pub fn stats(&mut self) -> Result<serde::Value, ServeError> {
        let line = request_line(&Request::Stats);
        match self.roundtrip(&line)? {
            Response::Stats { body } => Ok(body),
            other => Err(ServeError::Protocol(format!("expected stats, got {other:?}"))),
        }
    }

    /// Fetches the continuous-learning daemon's status document: round,
    /// epoch, replay-buffer depth, last fine-tune loss. A plain server
    /// without a learner answers 404, surfaced as
    /// [`ServeError::Protocol`].
    ///
    /// # Errors
    ///
    /// Socket failures, a 404 (no learner attached), or a non-learn-status
    /// response.
    pub fn learn_status(&mut self) -> Result<serde::Value, ServeError> {
        let line = request_line(&Request::LearnStatus);
        match self.roundtrip(&line)? {
            Response::LearnStatus { body } => Ok(body),
            other => {
                Err(ServeError::Protocol(format!("expected learn-status, got {other:?}")))
            }
        }
    }

    /// Queries the server's flight recorder: `"slow"` for the slowest
    /// remembered traces, anything else as a trace-id lookup. Always an
    /// array (empty = nothing remembered, not an error).
    ///
    /// # Errors
    ///
    /// Socket failures or a non-trace response.
    pub fn trace(&mut self, query: &str) -> Result<serde::Value, ServeError> {
        let line = request_line(&Request::Trace { query: query.to_string() });
        match self.roundtrip(&line)? {
            Response::Trace { body } => Ok(body),
            other => Err(ServeError::Protocol(format!("expected trace, got {other:?}"))),
        }
    }
}

/// xorshift64* step — cheap deterministic jitter, no external RNG.
fn next_jitter(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Exponential backoff with ±50% jitter: `base * 2^attempt` scaled by a
/// factor drawn from [0.5, 1.5), floored to honor `hint_ms` (a 429's
/// retry-after hint) when the server asked for a longer pause, and capped
/// at 5 s so retry loops stay responsive.
fn backoff_duration(base: Duration, attempt: u32, hint_ms: u64, rng: &mut u64) -> Duration {
    let scaled = base.saturating_mul(1 << attempt.min(6));
    let jitter_permille = 500 + (next_jitter(rng) % 1000); // [500, 1500)
    let jittered = scaled.mul_f64(jitter_permille as f64 / 1000.0);
    jittered.max(Duration::from_millis(hint_ms)).min(Duration::from_secs(5))
}

fn open(
    addr: SocketAddr,
    config: &ClientConfig,
) -> Result<(BufReader<TcpStream>, TcpStream), ServeError> {
    let stream = TcpStream::connect_timeout(&addr, config.connect_timeout).map_err(|e| {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            ServeError::Timeout { after: config.connect_timeout }
        } else {
            ServeError::Io(e)
        }
    })?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

/// Serializes a request as one JSON line (no trailing newline).
pub(crate) fn request_line(request: &Request) -> String {
    use serde::Value;
    let value = match request {
        Request::Predict { id, kernel, index, trace } => {
            let mut fields = vec![
                ("id".into(), Value::Int(i128::from(*id))),
                ("kernel".into(), Value::Str(kernel.clone())),
                // i128 covers every index our design spaces produce; fall
                // back to the string form for the (theoretical) top bit.
                (
                    "index".into(),
                    match i128::try_from(*index) {
                        Ok(i) => Value::Int(i),
                        Err(_) => Value::Str(index.to_string()),
                    },
                ),
            ];
            if let Some(t) = trace {
                fields.push(("trace_id".into(), Value::Str(t.clone())));
            }
            Value::Map(fields)
        }
        Request::Shutdown => Value::Map(vec![("shutdown".into(), Value::Bool(true))]),
        Request::Reload => Value::Map(vec![("reload".into(), Value::Bool(true))]),
        Request::KillReplica { replica } => {
            Value::Map(vec![("kill_replica".into(), Value::Int(*replica as i128))])
        }
        Request::Stats => Value::Map(vec![("stats".into(), Value::Bool(true))]),
        Request::LearnStatus => {
            Value::Map(vec![("learn-status".into(), Value::Bool(true))])
        }
        Request::Trace { query } => {
            Value::Map(vec![("trace".into(), Value::Str(query.clone()))])
        }
    };
    serde_json::to_string(&value).expect("protocol values always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use std::io::Read;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn request_lines_round_trip_through_the_parser() {
        for req in [
            Request::Predict { id: 3, kernel: "aes".into(), index: 77, trace: None },
            Request::Predict { id: 0, kernel: "gemm".into(), index: u128::MAX, trace: None },
            Request::Predict {
                id: 9,
                kernel: "spmv".into(),
                index: 1,
                trace: Some("00000000deadbeef".into()),
            },
            Request::Shutdown,
            Request::Reload,
            Request::KillReplica { replica: 2 },
            Request::Stats,
            Request::LearnStatus,
            Request::Trace { query: "slow".into() },
        ] {
            let line = request_line(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn hung_server_times_out_instead_of_blocking_forever() {
        // A listener that accepts and then never answers.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let silent = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Hold the connection open until the client gives up.
            let mut buf = [0u8; 256];
            while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
        });
        let config = ClientConfig {
            read_timeout: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(&addr, config).unwrap();
        let started = Instant::now();
        match client.predict(1, "gemm", 1) {
            Err(ServeError::Timeout { .. }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(5));
        drop(client);
        silent.join().unwrap();
    }

    #[test]
    fn retries_are_bounded_and_wrap_the_last_failure() {
        // Nothing listens on this port (bind, learn the port, drop).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Some(Duration::from_millis(100)),
            retries: 2,
            backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        // The initial connect fails fast (no retry loop wraps `connect`).
        assert!(Client::connect_with(&addr, config).is_err());

        // A connection that dies mid-stream exhausts its retries.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = listener.local_addr().unwrap().to_string();
        let rst = std::thread::spawn(move || {
            // Accept + immediately drop every connection: the initial dial
            // plus one reconnect per retry — exactly 3 with retries: 2.
            for _ in 0..3 {
                if listener.accept().is_err() {
                    break;
                }
            }
        });
        let mut client = Client::connect_with(&live_addr, config).unwrap();
        match client.predict(1, "gemm", 1) {
            Err(ServeError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(
                    matches!(*last, ServeError::Protocol(_) | ServeError::Io(_)),
                    "unexpected terminal error: {last:?}"
                );
            }
            other => panic!("expected retry exhaustion, got {other:?}"),
        }
        drop(client);
        rst.join().unwrap();
    }

    #[test]
    fn jittered_backoff_honors_retry_after_hint_and_stays_bounded() {
        let base = Duration::from_millis(10);
        let mut rng = 42u64;
        for attempt in 0..8 {
            let d = backoff_duration(base, attempt, 0, &mut rng);
            assert!(d >= Duration::from_millis(5), "attempt {attempt}: {d:?}");
            assert!(d <= Duration::from_secs(5), "attempt {attempt}: {d:?}");
        }
        // The server's retry-after hint is a floor.
        let d = backoff_duration(base, 0, 500, &mut rng);
        assert!(d >= Duration::from_millis(500), "{d:?}");
        // Jitter is deterministic per seed, and actually jitters.
        let (mut a, mut b) = (7u64, 7u64);
        let first = next_jitter(&mut a);
        assert_eq!(first, next_jitter(&mut b));
        assert_ne!(first, next_jitter(&mut a), "successive draws must differ");
    }
}
