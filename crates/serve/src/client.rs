//! A small blocking client for the JSON-lines protocol — what the `gnndse
//! predict --addr` subcommand and the e2e tests use.

use crate::protocol::{Request, Response};
use crate::ServeError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected protocol client issuing one request at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server, e.g. `"127.0.0.1:7878"`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    fn send_line(&mut self, line: &str) -> Result<(), ServeError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        Response::parse(line.trim()).map_err(ServeError::Protocol)
    }

    /// Requests a prediction for `index` of `kernel` and waits for the
    /// response (which may be a rejection or an error — inspect the variant).
    ///
    /// # Errors
    ///
    /// Socket failures or an unparseable response.
    pub fn predict(&mut self, id: u64, kernel: &str, index: u128) -> Result<Response, ServeError> {
        let line = request_line(&Request::Predict { id, kernel: kernel.to_string(), index });
        self.send_line(&line)?;
        self.read_response()
    }

    /// Asks the server to shut down gracefully and waits for the
    /// acknowledgement.
    ///
    /// # Errors
    ///
    /// Socket failures, or a non-acknowledgement response.
    pub fn shutdown_server(&mut self) -> Result<(), ServeError> {
        self.send_line(&request_line(&Request::Shutdown))?;
        match self.read_response()? {
            Response::ShuttingDown => Ok(()),
            other => Err(ServeError::Protocol(format!(
                "expected shutdown acknowledgement, got {other:?}"
            ))),
        }
    }
}

/// Serializes a request as one JSON line (no trailing newline).
pub(crate) fn request_line(request: &Request) -> String {
    use serde::Value;
    let value = match request {
        Request::Predict { id, kernel, index } => Value::Map(vec![
            ("id".into(), Value::Int(i128::from(*id))),
            ("kernel".into(), Value::Str(kernel.clone())),
            // i128 covers every index our design spaces produce; fall back
            // to the string form for the (theoretical) top bit.
            (
                "index".into(),
                match i128::try_from(*index) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Str(index.to_string()),
                },
            ),
        ]),
        Request::Shutdown => Value::Map(vec![("shutdown".into(), Value::Bool(true))]),
    };
    serde_json::to_string(&value).expect("protocol values always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    #[test]
    fn request_lines_round_trip_through_the_parser() {
        for req in [
            Request::Predict { id: 3, kernel: "aes".into(), index: 77 },
            Request::Predict { id: 0, kernel: "gemm".into(), index: u128::MAX },
            Request::Shutdown,
        ] {
            let line = request_line(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }
}
