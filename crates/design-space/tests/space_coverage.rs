//! Coverage tests over all benchmark design spaces: sizes, ordering, and
//! pruning statistics that the experiments rely on.

use design_space::{options, order, rules, DesignSpace, PragmaValue};
use hls_ir::{kernels, PragmaKind};

#[test]
fn space_sizes_are_stable() {
    // These sizes are quoted in EXPERIMENTS.md; a change to the option-
    // generation rules must update both places deliberately.
    let expected: &[(&str, u128)] = &[
        ("aes", 45),
        ("atax", 1_125),
        ("gemm-blocked", 145_152),
        ("gemm-ncubed", 37_044),
        ("mvt", 1_185_921),
        ("spmv-crs", 54),
        ("spmv-ellpack", 72),
        ("stencil", 7_920),
        ("nw", 5_292),
        ("bicg", 5_445),
        ("doitgen", 13_824),
        ("gesummv", 324),
        ("2mm", 31_442_411_520),
    ];
    for &(name, size) in expected {
        let k = kernels::kernel_by_name(name).unwrap();
        let space = DesignSpace::from_kernel(&k);
        assert_eq!(space.size(), size, "space size of {name} drifted");
    }
}

#[test]
fn parallel_factors_divide_trip_counts() {
    for k in kernels::all_kernels() {
        let space = DesignSpace::from_kernel(&k);
        for slot in space.slots() {
            let info = k.loop_info(slot.loop_id);
            for &opt in &slot.options {
                if let PragmaValue::Parallel(f) = opt {
                    if !info.variable_bound {
                        assert_eq!(
                            info.trip_count % u64::from(f),
                            0,
                            "{}: parallel {f} does not divide trip {} of {}",
                            k.name(),
                            info.trip_count,
                            info.label
                        );
                    }
                    assert!(f <= options::MAX_PARALLEL);
                }
                if let PragmaValue::Tile(f) = opt {
                    assert!(f <= options::MAX_TILE);
                    assert_eq!(info.trip_count % u64::from(f), 0);
                }
            }
        }
    }
}

#[test]
fn ordered_slots_prioritize_depth_then_kind() {
    // Among slots of the same loop, parallel precedes pipeline precedes
    // tile in the §4.4 order (modulo dependency promotion from deeper
    // levels).
    for k in kernels::all_kernels() {
        let space = DesignSpace::from_kernel(&k);
        let order = order::ordered_slots(&k, &space);
        for info in k.loops() {
            let of_loop: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&si| space.slots()[si].loop_id == info.id)
                .collect();
            // Check relative order of parallel vs tile on the same loop —
            // tile can never be promoted (it is not a dependency target).
            let pos = |kind: PragmaKind| {
                of_loop
                    .iter()
                    .position(|&si| space.slots()[si].kind == kind)
            };
            if let (Some(pa), Some(ti)) = (pos(PragmaKind::Parallel), pos(PragmaKind::Tile)) {
                assert!(pa < ti, "{}: tile before parallel on {}", k.name(), info.label);
            }
        }
    }
}

#[test]
fn canonical_fraction_is_reasonable() {
    // Pruning removes some but not all configurations on kernels with
    // nested pragma-carrying loops.
    for name in ["gemm-ncubed", "stencil", "spmv-ellpack"] {
        let k = kernels::kernel_by_name(name).unwrap();
        let space = DesignSpace::from_kernel(&k);
        if space.size() > 50_000 {
            continue;
        }
        let canonical = rules::canonical_count(&k, &space);
        let total = space.size() as u64;
        assert!(canonical < total, "{name}: fg pruning must remove something");
        assert!(
            canonical * 3 > total,
            "{name}: pruning should not remove most of the space ({canonical}/{total})"
        );
    }
}

#[test]
fn describe_round_trips_slot_names() {
    let k = kernels::toy();
    let space = DesignSpace::from_kernel(&k);
    let text = space.default_point().describe(space.slots());
    assert_eq!(text, "__PIPE__L1=off __PARA__L1=1");
}

#[test]
fn every_space_has_nontrivial_choice_per_slot() {
    for k in kernels::all_kernels() {
        let space = DesignSpace::from_kernel(&k);
        for slot in space.slots() {
            assert!(
                slot.options.len() >= 2,
                "{}: slot {} offers no real choice",
                k.name(),
                slot.name
            );
            assert!(slot.options[0].is_default(), "{}: {}", k.name(), slot.name);
        }
    }
}
