//! Option-generation rules: which values each pragma placeholder may take.
//!
//! These mirror AutoDSE's design-space generator: parallel factors are the
//! divisors of the trip count up to a cap (so unrolling divides evenly),
//! tile factors are small divisors, and pipeline placeholders always offer
//! `off | cg | fg`. Variable-bound loops (data-dependent trip counts) only
//! offer small power-of-two parallel factors, since Merlin must guard the
//! unrolled copies.

use crate::pragma::{PipelineOpt, PragmaValue};
use hls_ir::LoopInfo;

/// Largest parallel (unroll) factor the generator offers.
pub const MAX_PARALLEL: u32 = 64;
/// Largest tile factor the generator offers.
pub const MAX_TILE: u32 = 8;
/// Largest parallel factor for variable-bound loops.
pub const MAX_PARALLEL_VARIABLE: u32 = 8;

/// Divisors of `n` that are `<= cap`, ascending (always contains 1).
pub fn divisors_up_to(n: u64, cap: u32) -> Vec<u32> {
    let cap = u64::from(cap).min(n);
    (1..=cap).filter(|d| n.is_multiple_of(*d)).map(|d| d as u32).collect()
}

/// Powers of two `<= cap.min(n)`, ascending (always contains 1).
pub fn powers_of_two_up_to(n: u64, cap: u32) -> Vec<u32> {
    let cap = u64::from(cap).min(n);
    let mut v = Vec::new();
    let mut p = 1u64;
    while p <= cap {
        v.push(p as u32);
        p *= 2;
    }
    v
}

/// Legal pipeline options for a loop: always `off | cg | fg`.
pub fn pipeline_options(_info: &LoopInfo) -> Vec<PragmaValue> {
    PipelineOpt::ALL.iter().map(|&o| PragmaValue::Pipeline(o)).collect()
}

/// Legal parallel factors for a loop.
pub fn parallel_options(info: &LoopInfo) -> Vec<PragmaValue> {
    let factors = if info.variable_bound {
        powers_of_two_up_to(info.trip_count, MAX_PARALLEL_VARIABLE)
    } else {
        divisors_up_to(info.trip_count, MAX_PARALLEL)
    };
    factors.into_iter().map(PragmaValue::Parallel).collect()
}

/// Legal tile factors for a loop.
pub fn tile_options(info: &LoopInfo) -> Vec<PragmaValue> {
    divisors_up_to(info.trip_count, MAX_TILE)
        .into_iter()
        .map(PragmaValue::Tile)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{LoopId, PragmaKind};

    fn info(trip: u64, variable: bool) -> LoopInfo {
        LoopInfo {
            id: LoopId(0),
            label: "L0".into(),
            depth: 0,
            parent: None,
            function: "f".into(),
            trip_count: trip,
            variable_bound: variable,
            candidate_pragmas: vec![PragmaKind::Parallel],
            carried_dep: false,
            children: vec![],
        }
    }

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors_up_to(16, 64), vec![1, 2, 4, 8, 16]);
        assert_eq!(divisors_up_to(400, 64), vec![1, 2, 4, 5, 8, 10, 16, 20, 25, 40, 50]);
        assert_eq!(divisors_up_to(7, 64), vec![1, 7]);
    }

    #[test]
    fn divisors_capped_by_n() {
        assert_eq!(divisors_up_to(3, 64), vec![1, 3]);
    }

    #[test]
    fn powers_of_two() {
        assert_eq!(powers_of_two_up_to(100, 8), vec![1, 2, 4, 8]);
        assert_eq!(powers_of_two_up_to(3, 8), vec![1, 2]);
    }

    #[test]
    fn parallel_options_static_loop() {
        let opts = parallel_options(&info(64, false));
        assert_eq!(opts.len(), 7); // 1,2,4,8,16,32,64
        assert_eq!(opts[0], PragmaValue::Parallel(1));
        assert_eq!(*opts.last().unwrap(), PragmaValue::Parallel(64));
    }

    #[test]
    fn parallel_options_variable_loop() {
        let opts = parallel_options(&info(4, true));
        assert_eq!(opts, vec![PragmaValue::Parallel(1), PragmaValue::Parallel(2), PragmaValue::Parallel(4)]);
    }

    #[test]
    fn tile_options_small() {
        let opts = tile_options(&info(64, false));
        assert_eq!(
            opts,
            vec![
                PragmaValue::Tile(1),
                PragmaValue::Tile(2),
                PragmaValue::Tile(4),
                PragmaValue::Tile(8)
            ]
        );
    }

    #[test]
    fn pipeline_always_three() {
        assert_eq!(pipeline_options(&info(10, false)).len(), 3);
    }

    #[test]
    fn first_option_is_neutral() {
        let i = info(32, false);
        assert!(parallel_options(&i)[0].is_default());
        assert!(tile_options(&i)[0].is_default());
        assert!(pipeline_options(&i)[0].is_default());
    }
}
