//! Configured-C emission: the "Pragma Fill" step of Fig. 3 applied to
//! source text — every `auto{...}` placeholder replaced by the design
//! point's concrete value.

use crate::point::DesignPoint;
use crate::space::DesignSpace;
use hls_ir::Kernel;

/// Emits the kernel's Merlin C with the design point's values substituted
/// for the `auto{...}` placeholders (what the Merlin Compiler would receive
/// for this configuration).
///
/// # Panics
///
/// Panics if `point` does not belong to `space`.
pub fn emit_configured(kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> String {
    assert_eq!(point.len(), space.num_slots(), "point does not match space");
    let mut text = hls_ir::emit::emit_c(kernel);
    for (slot, &value) in space.slots().iter().zip(point.values()) {
        let placeholder = format!("auto{{{}}}", slot.name);
        text = text.replace(&placeholder, &value.to_string());
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma::{PipelineOpt, PragmaValue};
    use hls_ir::{kernels, PragmaKind};

    #[test]
    fn placeholders_are_fully_substituted() {
        let k = kernels::toy();
        let space = DesignSpace::from_kernel(&k);
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        p.set_value(space.slot_index(l1, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(8));
        let c = emit_configured(&k, &space, &p);
        assert!(c.contains("#pragma ACCEL pipeline fg"));
        assert!(c.contains("#pragma ACCEL parallel factor=8"));
        assert!(!c.contains("auto{"), "no placeholder left behind:\n{c}");
    }

    #[test]
    fn default_point_emits_neutral_values() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let c = emit_configured(&k, &space, &space.default_point());
        assert!(c.contains("pipeline off"));
        assert!(c.contains("parallel factor=1"));
        assert!(c.contains("tile factor=1"));
        assert!(!c.contains("auto{"));
    }

    #[test]
    fn different_points_emit_different_text() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let a = emit_configured(&k, &space, &space.default_point());
        let b = emit_configured(&k, &space, &space.point_at(space.size() - 1));
        assert_ne!(a, b);
    }
}
