//! Pragma values and slots.

use hls_ir::{LoopId, PragmaKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Option of a `#pragma ACCEL pipeline` placeholder: `off | cg | fg`
/// (coarse-grained / fine-grained, §2.3 and §4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PipelineOpt {
    /// No pipelining.
    Off,
    /// Coarse-grained pipelining: the loop body's sub-stages are overlapped
    /// (Merlin dataflow between sub-loops).
    Coarse,
    /// Fine-grained pipelining: all sub-loops are completely unrolled and the
    /// loop is pipelined at the instruction level.
    Fine,
}

impl PipelineOpt {
    /// Source spelling (`off`, `cg`, `fg`).
    pub fn as_str(self) -> &'static str {
        match self {
            PipelineOpt::Off => "off",
            PipelineOpt::Coarse => "cg",
            PipelineOpt::Fine => "fg",
        }
    }

    /// All options, in canonical order.
    pub const ALL: [PipelineOpt; 3] = [PipelineOpt::Off, PipelineOpt::Coarse, PipelineOpt::Fine];
}

impl fmt::Display for PipelineOpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A concrete value assigned to one pragma placeholder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PragmaValue {
    /// Pipeline mode.
    Pipeline(PipelineOpt),
    /// Parallel (unroll) factor; `1` means the pragma is absent.
    Parallel(u32),
    /// Tile factor; `1` means the pragma is absent.
    Tile(u32),
}

impl PragmaValue {
    /// The pragma kind this value belongs to.
    pub fn kind(self) -> PragmaKind {
        match self {
            PragmaValue::Pipeline(_) => PragmaKind::Pipeline,
            PragmaValue::Parallel(_) => PragmaKind::Parallel,
            PragmaValue::Tile(_) => PragmaKind::Tile,
        }
    }

    /// The neutral value of a kind (pipeline off / factor 1).
    pub fn default_of(kind: PragmaKind) -> Self {
        match kind {
            PragmaKind::Pipeline => PragmaValue::Pipeline(PipelineOpt::Off),
            PragmaKind::Parallel => PragmaValue::Parallel(1),
            PragmaKind::Tile => PragmaValue::Tile(1),
        }
    }

    /// Whether this is the neutral (pragma-absent) value.
    pub fn is_default(self) -> bool {
        self == Self::default_of(self.kind())
    }

    /// Numeric factor for parallel/tile, `None` for pipeline.
    pub fn factor(self) -> Option<u32> {
        match self {
            PragmaValue::Parallel(f) | PragmaValue::Tile(f) => Some(f),
            PragmaValue::Pipeline(_) => None,
        }
    }
}

impl fmt::Display for PragmaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PragmaValue::Pipeline(o) => write!(f, "{o}"),
            PragmaValue::Parallel(v) | PragmaValue::Tile(v) => write!(f, "{v}"),
        }
    }
}

/// One tunable pragma placeholder of a kernel, with its legal options.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PragmaSlot {
    /// Placeholder name as it appears in the source (`__PIPE__L0`, ...).
    pub name: String,
    /// The loop the pragma is attached to.
    pub loop_id: LoopId,
    /// Pragma kind.
    pub kind: PragmaKind,
    /// Legal options, first option is the neutral/default one.
    pub options: Vec<PragmaValue>,
}

impl PragmaSlot {
    /// The neutral value of this slot.
    pub fn default_value(&self) -> PragmaValue {
        PragmaValue::default_of(self.kind)
    }

    /// Index of a value in `options`, if legal for this slot.
    pub fn option_index(&self, v: PragmaValue) -> Option<usize> {
        self.options.iter().position(|&o| o == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_spellings() {
        assert_eq!(PipelineOpt::Off.to_string(), "off");
        assert_eq!(PipelineOpt::Coarse.to_string(), "cg");
        assert_eq!(PipelineOpt::Fine.to_string(), "fg");
    }

    #[test]
    fn default_values() {
        assert!(PragmaValue::Pipeline(PipelineOpt::Off).is_default());
        assert!(PragmaValue::Parallel(1).is_default());
        assert!(!PragmaValue::Parallel(4).is_default());
        assert!(PragmaValue::Tile(1).is_default());
        assert_eq!(PragmaValue::default_of(PragmaKind::Tile), PragmaValue::Tile(1));
    }

    #[test]
    fn kinds_and_factors() {
        assert_eq!(PragmaValue::Parallel(8).kind(), PragmaKind::Parallel);
        assert_eq!(PragmaValue::Parallel(8).factor(), Some(8));
        assert_eq!(PragmaValue::Pipeline(PipelineOpt::Fine).factor(), None);
    }
}
