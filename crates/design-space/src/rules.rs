//! AutoDSE pruning rules (§4.1) — canonicalizing redundant configurations.
//!
//! The key rule: *fine-grained pipelining of a loop completely unrolls its
//! sub-loops*, so any pragma on a descendant loop is meaningless. Two
//! configurations differing only in pragmas under an `fg`-pipelined loop
//! synthesize to the same design; exploration should visit only the
//! canonical representative (all-default under `fg`).

use crate::point::DesignPoint;
use crate::pragma::{PipelineOpt, PragmaValue};
use crate::space::DesignSpace;
use hls_ir::{Kernel, LoopId, PragmaKind};

/// Returns all transitive descendants of `loop_id` in the kernel's loop tree.
pub fn descendants(kernel: &Kernel, loop_id: LoopId) -> Vec<LoopId> {
    let mut out = Vec::new();
    let mut stack = kernel.loop_info(loop_id).children.clone();
    while let Some(id) = stack.pop() {
        out.push(id);
        stack.extend(kernel.loop_info(id).children.iter().copied());
    }
    out
}

/// Loops whose pipeline slot is set to `fg` in `point`.
fn fg_loops(kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> Vec<LoopId> {
    kernel
        .loops()
        .iter()
        .filter_map(|info| {
            let slot = space.slot_index(info.id, PragmaKind::Pipeline)?;
            (point.value(slot) == PragmaValue::Pipeline(PipelineOpt::Fine)).then_some(info.id)
        })
        .collect()
}

/// Maps a point to its canonical representative: every slot attached to a
/// descendant of an `fg`-pipelined loop is reset to its neutral value.
pub fn canonicalize(kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> DesignPoint {
    let mut out = point.clone();
    for fg in fg_loops(kernel, space, point) {
        for d in descendants(kernel, fg) {
            for si in space.slots_of_loop(d) {
                out.set_value(si, space.slots()[si].default_value());
            }
        }
    }
    out
}

/// Whether `point` is its own canonical representative.
pub fn is_canonical(kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> bool {
    &canonicalize(kernel, space, point) == point
}

/// Number of canonical (post-pruning) configurations in a space.
///
/// Only call on spaces small enough to enumerate.
pub fn canonical_count(kernel: &Kernel, space: &DesignSpace) -> u64 {
    space.iter().filter(|p| is_canonical(kernel, space, p)).count() as u64
}

/// The pragma dependency of §4.4: the parallel pragma of a loop depends on
/// the pipeline pragma of its *parent* loop (an `fg` parent subsumes the
/// child's parallelization). Returns the slot index of the pragma that
/// `slot` depends on, if any.
pub fn dependency_of(kernel: &Kernel, space: &DesignSpace, slot: usize) -> Option<usize> {
    let s = &space.slots()[slot];
    if s.kind != PragmaKind::Parallel {
        return None;
    }
    let parent = kernel.loop_info(s.loop_id).parent?;
    space.slot_index(parent, PragmaKind::Pipeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;

    #[test]
    fn fg_on_outer_resets_inner_pragmas() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        let l2 = k.loop_by_label("L2").unwrap();
        let pipe0 = space.slot_index(l0, PragmaKind::Pipeline).unwrap();
        let para2 = space.slot_index(l2, PragmaKind::Parallel).unwrap();

        let mut p = space.default_point();
        p.set_value(pipe0, PragmaValue::Pipeline(PipelineOpt::Fine));
        p.set_value(para2, PragmaValue::Parallel(8));
        assert!(!is_canonical(&k, &space, &p));
        let c = canonicalize(&k, &space, &p);
        assert_eq!(c.value(para2), PragmaValue::Parallel(1));
        assert_eq!(c.value(pipe0), PragmaValue::Pipeline(PipelineOpt::Fine));
        assert!(is_canonical(&k, &space, &c));
    }

    #[test]
    fn cg_does_not_reset_inner() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        let l2 = k.loop_by_label("L2").unwrap();
        let pipe0 = space.slot_index(l0, PragmaKind::Pipeline).unwrap();
        let para2 = space.slot_index(l2, PragmaKind::Parallel).unwrap();

        let mut p = space.default_point();
        p.set_value(pipe0, PragmaValue::Pipeline(PipelineOpt::Coarse));
        p.set_value(para2, PragmaValue::Parallel(8));
        assert!(is_canonical(&k, &space, &p));
    }

    #[test]
    fn descendants_transitive() {
        let k = kernels::gemm_blocked();
        let l0 = k.loop_by_label("L0").unwrap();
        assert_eq!(descendants(&k, l0).len(), 4);
        let l3 = k.loop_by_label("L3").unwrap();
        assert_eq!(descendants(&k, l3).len(), 1);
    }

    #[test]
    fn canonical_count_smaller_than_space() {
        let k = kernels::spmv_ellpack();
        let space = DesignSpace::from_kernel(&k);
        let n = canonical_count(&k, &space);
        assert!(n < space.size() as u64, "fg on L0 should prune L1 pragmas");
        assert!(n > 0);
    }

    #[test]
    fn call_boundary_limits_pruning() {
        // aes: L1 lives in the called round function, not nested under L0 in
        // the loop tree, so fg on L0 prunes nothing and every point is
        // canonical.
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        assert_eq!(canonical_count(&k, &space), space.size() as u64);
    }

    #[test]
    fn parallel_depends_on_parent_pipeline() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l1 = k.loop_by_label("L1").unwrap();
        let l0 = k.loop_by_label("L0").unwrap();
        let para1 = space.slot_index(l1, PragmaKind::Parallel).unwrap();
        let pipe0 = space.slot_index(l0, PragmaKind::Pipeline).unwrap();
        assert_eq!(dependency_of(&k, &space, para1), Some(pipe0));
        // Top-level loop's parallel has no dependency.
        let para0 = space.slot_index(l0, PragmaKind::Parallel).unwrap();
        assert_eq!(dependency_of(&k, &space, para0), None);
    }
}
