//! The design space of a kernel: all pragma slots and their option sets.

use crate::options::{parallel_options, pipeline_options, tile_options};
use crate::point::DesignPoint;
use crate::pragma::{PragmaSlot, PragmaValue};
use hls_ir::{Kernel, LoopId, PragmaKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The full combinatorial design space of one kernel.
///
/// Slots are ordered by loop (depth-first source order) and, within a loop,
/// by [`PragmaKind`] order (tile, pipeline, parallel) — matching how the
/// Merlin source annotation lists them.
///
/// # Examples
///
/// ```
/// use design_space::DesignSpace;
/// use hls_ir::kernels;
///
/// let space = DesignSpace::from_kernel(&kernels::aes());
/// assert_eq!(space.num_slots(), 3);
/// assert_eq!(space.size(), 45); // matches Table 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpace {
    kernel: String,
    slots: Vec<PragmaSlot>,
}

impl DesignSpace {
    /// Builds the design space of a kernel from its declared pragma
    /// placeholders and the option-generation rules of [`crate::options`].
    pub fn from_kernel(kernel: &Kernel) -> Self {
        let mut slots = Vec::new();
        for info in kernel.loops() {
            for &kind in &info.candidate_pragmas {
                let options = match kind {
                    PragmaKind::Pipeline => pipeline_options(info),
                    PragmaKind::Parallel => parallel_options(info),
                    PragmaKind::Tile => tile_options(info),
                };
                slots.push(PragmaSlot {
                    name: format!("{}{}", kind.placeholder_stem(), info.label),
                    loop_id: info.id,
                    kind,
                    options,
                });
            }
        }
        Self { kernel: kernel.name().to_string(), slots }
    }

    /// Name of the kernel this space belongs to.
    pub fn kernel_name(&self) -> &str {
        &self.kernel
    }

    /// All slots in canonical order.
    pub fn slots(&self) -> &[PragmaSlot] {
        &self.slots
    }

    /// Number of pragma slots (the paper's "# pragmas").
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Total number of configurations (the paper's "# Design configs"):
    /// the product of per-slot option counts.
    pub fn size(&self) -> u128 {
        self.slots.iter().map(|s| s.options.len() as u128).product()
    }

    /// The all-default design point (no pragmas applied).
    pub fn default_point(&self) -> DesignPoint {
        DesignPoint::new(self.slots.iter().map(|s| s.default_value()).collect())
    }

    /// The point at a mixed-radix `index` in `[0, size())`, counting the
    /// last slot fastest.
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn point_at(&self, index: u128) -> DesignPoint {
        assert!(index < self.size(), "index {index} out of space of size {}", self.size());
        let mut rem = index;
        let mut values = vec![PragmaValue::Parallel(1); self.slots.len()];
        for (i, slot) in self.slots.iter().enumerate().rev() {
            let radix = slot.options.len() as u128;
            values[i] = slot.options[(rem % radix) as usize];
            rem /= radix;
        }
        DesignPoint::new(values)
    }

    /// The mixed-radix index of a point, if every value is a legal option.
    pub fn index_of(&self, point: &DesignPoint) -> Option<u128> {
        if point.len() != self.slots.len() {
            return None;
        }
        let mut idx: u128 = 0;
        for (slot, &v) in self.slots.iter().zip(point.values()) {
            let oi = slot.option_index(v)?;
            idx = idx * slot.options.len() as u128 + oi as u128;
        }
        Some(idx)
    }

    /// Whether every value of `point` is a legal option of its slot.
    pub fn contains(&self, point: &DesignPoint) -> bool {
        self.index_of(point).is_some()
    }

    /// Iterates over the entire space in index order.
    ///
    /// Only call this on spaces known to be small (guard with [`Self::size`]).
    pub fn iter(&self) -> PointIter<'_> {
        PointIter { space: self, next: 0 }
    }

    /// Draws a uniformly random point.
    pub fn random_point(&self, rng: &mut impl Rng) -> DesignPoint {
        DesignPoint::new(
            self.slots
                .iter()
                .map(|s| s.options[rng.gen_range(0..s.options.len())])
                .collect(),
        )
    }

    /// All points at Hamming distance 1 from `point` (the local-search
    /// neighborhood of the hybrid explorer, §4.1).
    pub fn neighbors(&self, point: &DesignPoint) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            for &opt in &slot.options {
                if opt != point.value(i) {
                    out.push(point.with_value(i, opt));
                }
            }
        }
        out
    }

    /// Slot indices attached to a given loop.
    pub fn slots_of_loop(&self, loop_id: LoopId) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.loop_id == loop_id)
            .map(|(i, _)| i)
            .collect()
    }

    /// Index of the slot of `kind` on `loop_id`, if declared.
    pub fn slot_index(&self, loop_id: LoopId, kind: PragmaKind) -> Option<usize> {
        self.slots.iter().position(|s| s.loop_id == loop_id && s.kind == kind)
    }
}

/// Iterator over all points of a [`DesignSpace`] (see [`DesignSpace::iter`]).
#[derive(Debug)]
pub struct PointIter<'a> {
    space: &'a DesignSpace,
    next: u128,
}

impl Iterator for PointIter<'_> {
    type Item = DesignPoint;

    fn next(&mut self) -> Option<DesignPoint> {
        if self.next >= self.space.size() {
            return None;
        }
        let p = self.space.point_at(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.space.size() - self.next).min(usize::MAX as u128) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aes_space_matches_table1_exactly() {
        let space = DesignSpace::from_kernel(&kernels::aes());
        assert_eq!(space.num_slots(), 3);
        assert_eq!(space.size(), 45);
    }

    #[test]
    fn point_index_round_trip() {
        let space = DesignSpace::from_kernel(&kernels::aes());
        for i in 0..space.size() {
            let p = space.point_at(i);
            assert_eq!(space.index_of(&p), Some(i));
        }
    }

    #[test]
    fn iter_covers_space_without_duplicates() {
        let space = DesignSpace::from_kernel(&kernels::spmv_ellpack());
        let pts: Vec<DesignPoint> = space.iter().collect();
        assert_eq!(pts.len() as u128, space.size());
        let mut set = std::collections::HashSet::new();
        for p in &pts {
            assert!(set.insert(p.clone()), "duplicate point {p}");
        }
    }

    #[test]
    fn default_point_is_index_zero() {
        let space = DesignSpace::from_kernel(&kernels::gemm_ncubed());
        assert_eq!(space.point_at(0), space.default_point());
        assert!(space.default_point().is_all_default());
    }

    #[test]
    fn random_points_are_contained() {
        let space = DesignSpace::from_kernel(&kernels::stencil());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = space.random_point(&mut rng);
            assert!(space.contains(&p));
        }
    }

    #[test]
    fn neighbors_have_hamming_distance_one() {
        let space = DesignSpace::from_kernel(&kernels::aes());
        let p = space.default_point();
        let ns = space.neighbors(&p);
        // 3 slots with 3, 3, 5 options: (3-1)+(3-1)+(5-1) = 8 neighbors.
        assert_eq!(ns.len(), 8);
        assert!(ns.iter().all(|n| n.hamming_distance(&p) == 1));
    }

    #[test]
    fn slot_lookup_by_loop_and_kind() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        assert_eq!(space.slots_of_loop(l0).len(), 3);
        assert!(space.slot_index(l0, PragmaKind::Tile).is_some());
        let l1 = k.loop_by_label("L1").unwrap();
        assert!(space.slot_index(l1, PragmaKind::Tile).is_none());
    }

    #[test]
    fn slot_names_follow_merlin_convention() {
        let space = DesignSpace::from_kernel(&kernels::aes());
        let names: Vec<&str> = space.slots().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"__PIPE__L0"));
        assert!(names.contains(&"__PIPE__L1"));
        assert!(names.contains(&"__PARA__L1"));
    }

    #[test]
    fn mvt_space_is_in_the_millions() {
        let space = DesignSpace::from_kernel(&kernels::mvt());
        assert!(space.size() > 1_000_000, "mvt space should need heuristic search");
    }

    #[test]
    fn mm2_space_is_the_largest() {
        let sizes: Vec<(String, u128)> = kernels::all_kernels()
            .iter()
            .map(|k| (k.name().to_string(), DesignSpace::from_kernel(k).size()))
            .collect();
        let max = sizes.iter().max_by_key(|(_, s)| *s).unwrap();
        assert_eq!(max.0, "2mm");
    }
}
