//! Design points: one concrete assignment of values to all pragma slots.

use crate::pragma::{PragmaSlot, PragmaValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A design configuration `theta`: one value per pragma slot of the kernel's
/// design space, in slot order.
///
/// Design points are small, hashable value objects used as database keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignPoint {
    values: Vec<PragmaValue>,
}

impl DesignPoint {
    /// Creates a point from per-slot values.
    pub fn new(values: Vec<PragmaValue>) -> Self {
        Self { values }
    }

    /// Values in slot order.
    pub fn values(&self) -> &[PragmaValue] {
        &self.values
    }

    /// Value of slot `i`.
    pub fn value(&self, i: usize) -> PragmaValue {
        self.values[i]
    }

    /// Returns a copy with slot `i` replaced by `v`.
    pub fn with_value(&self, i: usize, v: PragmaValue) -> Self {
        let mut values = self.values.clone();
        values[i] = v;
        Self { values }
    }

    /// Sets slot `i` to `v` in place.
    pub fn set_value(&mut self, i: usize, v: PragmaValue) {
        self.values[i] = v;
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the point has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether every slot holds its neutral value (the unoptimized design).
    pub fn is_all_default(&self) -> bool {
        self.values.iter().all(|v| v.is_default())
    }

    /// Number of slots whose values differ from `other`.
    ///
    /// # Panics
    ///
    /// Panics if the points have different lengths.
    pub fn hamming_distance(&self, other: &DesignPoint) -> usize {
        assert_eq!(self.len(), other.len(), "points from different spaces");
        self.values.iter().zip(&other.values).filter(|(a, b)| a != b).count()
    }

    /// Renders the point as `name=value` pairs using the slot metadata.
    pub fn describe(&self, slots: &[PragmaSlot]) -> String {
        slots
            .iter()
            .zip(&self.values)
            .map(|(s, v)| format!("{}={v}", s.name))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma::PipelineOpt;

    fn point() -> DesignPoint {
        DesignPoint::new(vec![
            PragmaValue::Pipeline(PipelineOpt::Coarse),
            PragmaValue::Parallel(4),
            PragmaValue::Tile(1),
        ])
    }

    #[test]
    fn accessors() {
        let p = point();
        assert_eq!(p.len(), 3);
        assert_eq!(p.value(1), PragmaValue::Parallel(4));
        assert!(!p.is_all_default());
    }

    #[test]
    fn with_value_is_persistent() {
        let p = point();
        let q = p.with_value(1, PragmaValue::Parallel(8));
        assert_eq!(p.value(1), PragmaValue::Parallel(4));
        assert_eq!(q.value(1), PragmaValue::Parallel(8));
        assert_eq!(p.hamming_distance(&q), 1);
    }

    #[test]
    fn all_default_detection() {
        let d = DesignPoint::new(vec![
            PragmaValue::Pipeline(PipelineOpt::Off),
            PragmaValue::Parallel(1),
            PragmaValue::Tile(1),
        ]);
        assert!(d.is_all_default());
    }

    #[test]
    fn display_format() {
        assert_eq!(point().to_string(), "[cg, 4, 1]");
    }
}
