//! The ordered-pragma traversal of §4.4.
//!
//! For design spaces too large to enumerate, GNN-DSE evaluates pragmas in a
//! priority order: a BFS-like traversal starting from the *innermost* loops
//! (HLS implements fine-grained optimizations best), with `parallel`
//! prioritized over `pipeline` over `tile` within one loop level. When a
//! picked pragma A depends on another pragma B from the same or the next
//! loop level (e.g. a loop's `parallel` depends on its parent's `pipeline`),
//! B is moved up right after A.

use crate::rules::dependency_of;
use crate::space::DesignSpace;
use hls_ir::{Kernel, PragmaKind};

/// Priority of a pragma kind within one loop level (§4.4: parallel over
/// pipeline over tile). Lower sorts first.
fn kind_priority(kind: PragmaKind) -> u8 {
    match kind {
        PragmaKind::Parallel => 0,
        PragmaKind::Pipeline => 1,
        PragmaKind::Tile => 2,
    }
}

/// Produces the ordered list of slot indices the heuristic DSE sweeps.
///
/// Innermost loop levels come first; within a level, slots follow
/// [`kind_priority`]; dependencies are promoted immediately after the slot
/// that depends on them.
pub fn ordered_slots(kernel: &Kernel, space: &DesignSpace) -> Vec<usize> {
    let max_depth = kernel.loops().iter().map(|l| l.depth).max().unwrap_or(0);

    // Collect (depth descending, source order, kind priority).
    let mut order: Vec<usize> = Vec::with_capacity(space.num_slots());
    for depth in (0..=max_depth).rev() {
        // Loops at this depth, in source order.
        for info in kernel.loops().iter().filter(|l| l.depth == depth) {
            let mut level_slots = space.slots_of_loop(info.id);
            level_slots.sort_by_key(|&si| kind_priority(space.slots()[si].kind));
            for si in level_slots {
                push_with_dependency(kernel, space, si, &mut order);
            }
        }
    }
    debug_assert_eq!(order.len(), space.num_slots());
    order
}

fn push_with_dependency(kernel: &Kernel, space: &DesignSpace, slot: usize, order: &mut Vec<usize>) {
    if order.contains(&slot) {
        return;
    }
    order.push(slot);
    if let Some(dep) = dependency_of(kernel, space, slot) {
        if !order.contains(&dep) {
            order.push(dep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;

    #[test]
    fn covers_every_slot_once() {
        for k in kernels::all_kernels() {
            let space = DesignSpace::from_kernel(&k);
            let order = ordered_slots(&k, &space);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), space.num_slots(), "kernel {}", k.name());
        }
    }

    #[test]
    fn innermost_parallel_comes_first() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let order = ordered_slots(&k, &space);
        let first = &space.slots()[order[0]];
        // L2 is the innermost loop; parallel has top priority.
        assert_eq!(first.kind, PragmaKind::Parallel);
        assert_eq!(first.loop_id, k.loop_by_label("L2").unwrap());
    }

    #[test]
    fn dependency_promoted_after_dependent() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let order = ordered_slots(&k, &space);
        let l2 = k.loop_by_label("L2").unwrap();
        let l1 = k.loop_by_label("L1").unwrap();
        let para2 = space.slot_index(l2, PragmaKind::Parallel).unwrap();
        let pipe1 = space.slot_index(l1, PragmaKind::Pipeline).unwrap();
        let pos_para2 = order.iter().position(|&s| s == para2).unwrap();
        let pos_pipe1 = order.iter().position(|&s| s == pipe1).unwrap();
        // L2's parallel depends on L1's pipeline, which is promoted right
        // after it — well before L1's own (depth-based) turn.
        assert_eq!(pos_pipe1, pos_para2 + 1);
    }

    #[test]
    fn outermost_tile_comes_last_for_gemm() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let order = ordered_slots(&k, &space);
        let last = &space.slots()[*order.last().unwrap()];
        assert_eq!(last.kind, PragmaKind::Tile);
        assert_eq!(last.loop_id, k.loop_by_label("L0").unwrap());
    }
}
