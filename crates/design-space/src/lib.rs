//! # design-space
//!
//! The Merlin pragma design space of an HLS kernel: pragma values and
//! option-generation rules, the combinatorial [`DesignSpace`], AutoDSE-style
//! pruning rules, and the §4.4 ordered-pragma traversal used by GNN-DSE's
//! heuristic explorer.
//!
//! ## Quickstart
//!
//! ```
//! use design_space::{DesignSpace, rules};
//! use hls_ir::kernels;
//!
//! let kernel = kernels::gemm_ncubed();
//! let space = DesignSpace::from_kernel(&kernel);
//! println!("{} pragmas, {} configurations", space.num_slots(), space.size());
//!
//! let point = space.point_at(1234 % space.size());
//! let canonical = rules::canonicalize(&kernel, &space, &point);
//! assert!(rules::is_canonical(&kernel, &space, &canonical));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod options;
pub mod order;
mod point;
mod pragma;
pub mod rules;
mod space;

pub use point::DesignPoint;
pub use pragma::{PipelineOpt, PragmaSlot, PragmaValue};
pub use space::{DesignSpace, PointIter};
