//! Prometheus text exposition rendering of a [`MetricsSnapshot`].
//!
//! The workspace's metric names are dotted (`serve.trace.infer_us`) with
//! an optional one-label suffix (`serve.queue_depth{replica=0}`);
//! Prometheus names allow `[a-zA-Z0-9_:]`, so dots become underscores and
//! the label is re-quoted into Prometheus label syntax. Counters are
//! suffixed `_total` per convention; histograms render as cumulative
//! `_bucket{le="…"}` series with `_sum` and `_count`, which is exactly
//! what `histogram_quantile()` consumes.
//!
//! ```text
//! # TYPE serve_trace_infer_us histogram
//! serve_trace_infer_us_bucket{le="10"} 3
//! serve_trace_infer_us_bucket{le="+Inf"} 17
//! serve_trace_infer_us_sum 48213
//! serve_trace_infer_us_count 17
//! ```

use crate::metrics::MetricsSnapshot;

/// Splits a composed key `name{key=value}` into its base name and label.
fn split_label(name: &str) -> (&str, Option<(&str, &str)>) {
    if let Some(open) = name.find('{') {
        if let Some(rest) = name[open + 1..].strip_suffix('}') {
            if let Some(eq) = rest.find('=') {
                return (&name[..open], Some((&rest[..eq], &rest[eq + 1..])));
            }
        }
    }
    (name, None)
}

/// Maps a dotted metric name onto the Prometheus alphabet.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn labels_fragment(label: Option<(&str, &str)>, extra: Option<(&str, String)>) -> String {
    let mut parts = Vec::new();
    if let Some((k, v)) = label {
        parts.push(format!("{}=\"{}\"", sanitize(k), escape_label(v)));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn type_line(out: &mut String, seen: &mut Vec<String>, family: &str, kind: &str) {
    if !seen.iter().any(|f| f == family) {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        seen.push(family.to_string());
    }
}

/// Renders `snap` in the Prometheus text exposition format. Entries are
/// already sorted (snapshots are deterministic), so series of one family
/// group naturally under a single `# TYPE` line.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen = Vec::new();

    for (name, value) in &snap.counters {
        let (base, label) = split_label(name);
        let family = format!("{}_total", sanitize(base));
        type_line(&mut out, &mut seen, &family, "counter");
        out.push_str(&format!("{family}{} {value}\n", labels_fragment(label, None)));
    }

    for (name, value) in &snap.gauges {
        let (base, label) = split_label(name);
        let family = sanitize(base);
        type_line(&mut out, &mut seen, &family, "gauge");
        out.push_str(&format!("{family}{} {value}\n", labels_fragment(label, None)));
    }

    for h in &snap.histograms {
        let (base, label) = split_label(&h.name);
        let family = sanitize(base);
        type_line(&mut out, &mut seen, &family, "histogram");
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum += c;
            let le = match h.edges.get(i) {
                Some(e) => e.to_string(),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{family}_bucket{} {cum}\n",
                labels_fragment(label, Some(("le", le)))
            ));
        }
        out.push_str(&format!("{family}_sum{} {}\n", labels_fragment(label, None), h.sum));
        out.push_str(&format!("{family}_count{} {}\n", labels_fragment(label, None), h.count));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn names_and_labels_translate_to_the_prometheus_alphabet() {
        assert_eq!(sanitize("serve.trace.infer_us"), "serve_trace_infer_us");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(split_label("a.b{replica=2}"), ("a.b", Some(("replica", "2"))));
        assert_eq!(split_label("a.b"), ("a.b", None));
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn counters_gauges_and_histograms_render_as_exposition_text() {
        let mut h = Histogram::new(&[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5_000);
        let snap = MetricsSnapshot {
            counters: vec![
                ("serve.requests".into(), 7),
                ("serve.requests{kernel=gemm}".into(), 4),
            ],
            gauges: vec![("serve.queue_depth{replica=0}".into(), 3.0)],
            histograms: vec![h.snapshot("serve.trace.infer_us")],
        };
        let text = render(&snap);
        assert!(text.contains("# TYPE serve_requests_total counter\n"));
        assert_eq!(
            text.matches("# TYPE serve_requests_total counter").count(),
            1,
            "one TYPE line per family"
        );
        assert!(text.contains("serve_requests_total 7\n"));
        assert!(text.contains("serve_requests_total{kernel=\"gemm\"} 4\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\n"));
        assert!(text.contains("serve_queue_depth{replica=\"0\"} 3\n"));
        assert!(text.contains("# TYPE serve_trace_infer_us histogram\n"));
        // Buckets are cumulative and end in +Inf == count.
        assert!(text.contains("serve_trace_infer_us_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("serve_trace_infer_us_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("serve_trace_infer_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_trace_infer_us_sum 5055\n"));
        assert!(text.contains("serve_trace_infer_us_count 3\n"));
    }

    #[test]
    fn labeled_histograms_merge_the_le_label() {
        let mut h = Histogram::new(&[10]);
        h.record(1);
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![h.snapshot("lat_us{replica=1}")],
        };
        let text = render(&snap);
        assert!(text.contains("lat_us_bucket{replica=\"1\",le=\"10\"} 1\n"));
        assert!(text.contains("lat_us_sum{replica=\"1\"} 1\n"));
        assert!(text.contains("lat_us_count{replica=\"1\"} 1\n"));
    }
}
