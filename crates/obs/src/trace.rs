//! Request tracing: trace ids, span timelines, and the flight recorder.
//!
//! A **trace** follows one request through the serving path. The client (or
//! the server at ingress, for clients that predate tracing) mints a
//! [`TraceId`]; every hop appends [`Span`]s to a [`TraceBuilder`] that
//! travels *with* the request; the final hop seals it into a
//! [`RequestTrace`] — a self-contained timeline whose span offsets are all
//! relative to the moment the request was first seen.
//!
//! Completed traces land in a [`FlightRecorder`]: bounded per-replica ring
//! buffers that keep the most recent traces in memory so a live server can
//! answer "where did request X spend its time" and "show me the slowest
//! requests you remember" without any external collector.
//!
//! The span taxonomy used by the serving tier (names are free-form here;
//! the convention lives in the serve crate): `ingress` (read + parse),
//! `route` (shard routing / enqueue), `queue_wait` (enqueued → popped),
//! `batch_wait` (popped → backend call), `infer` (the backend call),
//! `write` (response serialization + socket write).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A 64-bit request trace id, rendered on the wire as 16 lowercase hex
/// characters. Id 0 is reserved (never minted, never parsed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceId {
    /// Wraps a raw non-zero id.
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// The raw 64-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Mints a fresh id: wall-clock nanoseconds mixed with a process-wide
    /// counter through the splitmix64 finalizer. Unique within a process,
    /// collision-resistant across processes — good enough for correlating
    /// log lines, which is all a trace id is for.
    pub fn mint() -> TraceId {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::from(d.subsec_nanos()) ^ (d.as_secs() << 32))
            .unwrap_or(0);
        let n = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut z = nanos ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        TraceId((z ^ (z >> 31)) | 1)
    }

    /// Parses the wire form: 1–16 hex characters (case-insensitive).
    /// Anything else — wrong alphabet, too long, zero — is `None`, which
    /// callers treat as "no usable id, mint one" rather than an error.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().and_then(TraceId::from_raw)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One named interval inside a trace, offset-addressed so the timeline is
/// self-contained (no absolute clocks on the wire).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Stage name (`ingress`, `queue_wait`, `infer`, ...).
    pub name: String,
    /// Microseconds since the trace started.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

/// The mutable half of a trace: travels with the request, accumulating
/// spans hop by hop, and is sealed into a [`RequestTrace`] by the hop that
/// writes the response.
#[derive(Debug)]
pub struct TraceBuilder {
    id: TraceId,
    started: Instant,
    spans: Vec<Span>,
}

impl TraceBuilder {
    /// A builder whose clock starts now.
    pub fn new(id: TraceId) -> TraceBuilder {
        TraceBuilder::new_at(id, Instant::now())
    }

    /// A builder whose clock starts at `started` (the instant the request
    /// was first seen — spans may not begin earlier; they are clamped).
    pub fn new_at(id: TraceId, started: Instant) -> TraceBuilder {
        TraceBuilder { id, started, spans: Vec::with_capacity(8) }
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The instant offsets are measured from.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Records span `name` covering `[start, end]`. Instants before the
    /// trace start (or an end before its start) clamp to zero rather than
    /// panicking — worker clocks are never trusted to be well-ordered.
    pub fn span(&mut self, name: &str, start: Instant, end: Instant) {
        let start = start.max(self.started);
        let start_us = start
            .checked_duration_since(self.started)
            .map_or(0, |d| d.as_micros() as u64);
        let dur_us = end.checked_duration_since(start).map_or(0, |d| d.as_micros() as u64);
        self.spans.push(Span { name: name.to_string(), start_us, dur_us });
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Seals the timeline. `total_us` is the end of the latest span (the
    /// final hop records its `write` span last), falling back to elapsed
    /// time when no span was ever recorded.
    pub fn finish(self, kernel: &str, replica: Option<usize>, epoch: u64) -> RequestTrace {
        let total_us = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or_else(|| self.started.elapsed().as_micros() as u64);
        RequestTrace {
            trace_id: self.id.to_string(),
            kernel: kernel.to_string(),
            replica: replica.map_or(-1, |r| r as i64),
            epoch,
            total_us,
            spans: self.spans,
        }
    }
}

/// A completed, serializable request timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Wire form of the trace id (16 hex chars).
    pub trace_id: String,
    /// Kernel the request asked about.
    pub kernel: String,
    /// Replica that served it (−1 = never reached a replica: shed, 503, …).
    pub replica: i64,
    /// Model epoch of the answer (0 when the request was not served).
    pub epoch: u64,
    /// End-to-end duration, first byte seen → response written.
    pub total_us: u64,
    /// The span timeline, in recording order.
    pub spans: Vec<Span>,
}

impl RequestTrace {
    /// Total microseconds booked under span `name` (spans may repeat when
    /// a request was re-routed after a crash).
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).map(|s| s.dur_us).sum()
    }

    /// One-line human rendering of the timeline:
    /// `infer@+120us/900us` means the span started 120 µs into the trace.
    pub fn timeline(&self) -> String {
        self.spans
            .iter()
            .map(|s| format!("{}@+{}us/{}us", s.name, s.start_us, s.dur_us))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Bounded per-replica ring buffers of completed traces — the in-memory
/// black box a live server answers `trace <id>` / `trace slow` from.
///
/// Ring `r` holds traces served by replica `r`; one extra ring holds
/// traces that never reached a replica (shed / no-replica errors), so
/// failure timelines are retrievable too. Each ring keeps the most recent
/// `capacity` traces; memory is bounded at
/// `(replicas + 1) × capacity × sizeof(trace)`.
pub struct FlightRecorder {
    rings: Vec<Mutex<VecDeque<RequestTrace>>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder for `replicas` replicas keeping `capacity` traces per
    /// ring (a capacity of 0 records nothing).
    pub fn new(replicas: usize, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            rings: (0..replicas + 1).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity,
        }
    }

    /// Per-ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn ring_of(&self, trace: &RequestTrace) -> usize {
        match usize::try_from(trace.replica) {
            Ok(r) if r < self.rings.len() - 1 => r,
            _ => self.rings.len() - 1,
        }
    }

    /// Records a completed trace, evicting the oldest entry of its ring at
    /// capacity.
    pub fn record(&self, trace: RequestTrace) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.rings[self.ring_of(&trace)].lock().expect("recorder lock");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Fetches a remembered trace by id (newest match wins).
    pub fn get(&self, trace_id: &str) -> Option<RequestTrace> {
        for ring in &self.rings {
            let ring = ring.lock().expect("recorder lock");
            if let Some(t) = ring.iter().rev().find(|t| t.trace_id == trace_id) {
                return Some(t.clone());
            }
        }
        None
    }

    /// The `n` slowest remembered traces, slowest first.
    pub fn slow(&self, n: usize) -> Vec<RequestTrace> {
        let mut all: Vec<RequestTrace> = self
            .rings
            .iter()
            .flat_map(|r| r.lock().expect("recorder lock").iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        all.truncate(n);
        all
    }

    /// Total traces currently remembered.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.lock().expect("recorder lock").len()).sum()
    }

    /// Whether nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_ids_mint_unique_and_round_trip_the_wire_form() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b, "two mints must differ");
        let wire = a.to_string();
        assert_eq!(wire.len(), 16);
        assert_eq!(TraceId::parse(&wire), Some(a));
        // Case-insensitive, short forms accepted.
        assert_eq!(TraceId::parse("DEADBEEF"), Some(TraceId(0xdead_beef)));
        assert_eq!(TraceId::parse("1"), Some(TraceId(1)));
    }

    #[test]
    fn malformed_trace_ids_parse_to_none() {
        for bad in ["", "xyz", "123g", "0", "00000000000000000", "deadbeefdeadbeef0"] {
            assert_eq!(TraceId::parse(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn builder_clamps_out_of_order_instants_and_seals_totals() {
        let t0 = Instant::now();
        let mut b = TraceBuilder::new_at(TraceId::mint(), t0);
        let t1 = t0 + Duration::from_micros(100);
        let t2 = t0 + Duration::from_micros(350);
        b.span("ingress", t0, t1);
        b.span("infer", t1, t2);
        // A span "before" the trace start, and an end before its start:
        // both clamp to zero instead of panicking.
        b.span("weird", t0 - Duration::from_secs(1), t0);
        b.span("weird2", t2, t1);
        let trace = b.finish("gemm", Some(2), 7);
        assert_eq!(trace.replica, 2);
        assert_eq!(trace.epoch, 7);
        assert_eq!(trace.spans[0], Span { name: "ingress".into(), start_us: 0, dur_us: 100 });
        assert_eq!(trace.spans[1].start_us, 100);
        assert_eq!(trace.spans[1].dur_us, 250);
        assert_eq!(trace.spans[2].start_us, 0, "pre-start clamps to the trace start");
        assert_eq!(trace.spans[2].dur_us, 0, "duration measured from the clamped start");
        assert_eq!(trace.spans[3].dur_us, 0, "inverted interval clamps");
        assert_eq!(trace.total_us, 350, "total is the latest span end");
        assert_eq!(trace.span_total_us("infer"), 250);
        assert!(trace.timeline().contains("infer@+100us/250us"));
    }

    fn toy(id: u64, replica: i64, total_us: u64) -> RequestTrace {
        RequestTrace {
            trace_id: format!("{id:016x}"),
            kernel: "gemm".into(),
            replica,
            epoch: 1,
            total_us,
            spans: vec![Span { name: "infer".into(), start_us: 0, dur_us: total_us }],
        }
    }

    #[test]
    fn recorder_is_bounded_per_ring_and_answers_get_and_slow() {
        let rec = FlightRecorder::new(2, 3);
        for i in 0..10 {
            rec.record(toy(i, (i % 2) as i64, i * 10));
        }
        // Unrouted traces land in the extra ring.
        rec.record(toy(99, -1, 5));
        assert!(rec.len() <= 3 * 3, "rings are bounded");
        // Old entries were evicted; recent ones are retrievable.
        assert!(rec.get(&format!("{:016x}", 0u64)).is_none(), "oldest evicted");
        assert_eq!(rec.get(&format!("{:016x}", 9u64)).unwrap().total_us, 90);
        assert_eq!(rec.get(&format!("{:016x}", 99u64)).unwrap().replica, -1);
        let slow = rec.slow(3);
        assert_eq!(slow.len(), 3);
        assert!(slow.windows(2).all(|w| w[0].total_us >= w[1].total_us), "slowest first");
        assert_eq!(slow[0].total_us, 90);
    }

    #[test]
    fn zero_capacity_recorder_records_nothing() {
        let rec = FlightRecorder::new(1, 0);
        rec.record(toy(1, 0, 10));
        assert!(rec.is_empty());
        assert!(rec.slow(5).is_empty());
    }

    #[test]
    fn request_traces_serialize_round_trip() {
        let t = toy(42, 1, 77);
        let json = serde_json::to_string(&t).unwrap();
        let back: RequestTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
