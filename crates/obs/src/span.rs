//! Scoped stage timers.
//!
//! A [`StageTimer`] measures a stage of the pipeline from construction to
//! drop and books the elapsed time twice:
//!
//! * into the counter `stage.<name>.busy_us` — the cumulative per-stage
//!   wall time [`crate::report::RunReport`] breaks a campaign down by;
//! * into the histogram `span.<name>_us` — the per-invocation latency
//!   distribution (one observation per scope).
//!
//! It also emits a `span.close` record at [`Level::Debug`], so `--log-json`
//! captures every stage boundary with its duration.
//!
//! Stage names form a flat namespace by convention (`setup`, `train`,
//! `dse`, `validate`, `checkpoint`, `explore`, `io`); timers for *different*
//! stages may nest freely. Timers for the **same** stage may nest too —
//! e.g. a helper that times `infer` called from a caller already timing
//! `infer` — and only the outermost scope books `stage.<name>.busy_us`,
//! so busy time is wall time, never double-counted. Every scope still
//! records its own `span.<name>_us` observation (per-invocation latency
//! is meaningful at any depth).

use crate::log::Level;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

thread_local! {
    /// Per-thread count of live timers by stage name; a timer created
    /// while its name is already active is nested, and skips the busy
    /// counter on drop.
    static ACTIVE: RefCell<HashMap<&'static str, u32>> = RefCell::new(HashMap::new());
}

/// Times a stage from construction to drop. Create via [`stage`].
#[derive(Debug)]
pub struct StageTimer {
    name: &'static str,
    start: Instant,
    outermost: bool,
}

/// Starts timing stage `name`.
pub fn stage(name: &'static str) -> StageTimer {
    let outermost = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let depth = a.entry(name).or_insert(0);
        *depth += 1;
        *depth == 1
    });
    StageTimer { name, start: Instant::now(), outermost }
}

impl StageTimer {
    /// The stage name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if let Some(depth) = a.get_mut(self.name) {
                *depth = depth.saturating_sub(1);
                if *depth == 0 {
                    a.remove(self.name);
                }
            }
        });
        // A timer moved across threads drops on a thread whose ACTIVE map
        // never saw it — harmless: the decrement no-ops and `outermost`
        // was fixed at construction.
        if self.outermost {
            crate::metrics::counter_add(&format!("stage.{}.busy_us", self.name), us);
        }
        crate::metrics::observe_us(&format!("span.{}_us", self.name), us);
        if crate::log::enabled(Level::Debug) {
            crate::log::emit(
                Level::Debug,
                "span.close",
                "",
                &[
                    ("stage", crate::log::FieldValue::from(self.name)),
                    ("elapsed_us", crate::log::FieldValue::U64(us)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn dropping_a_timer_books_busy_time_and_a_span_observation() {
        metrics::reset();
        {
            let t = stage("unit_test_stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert_eq!(t.name(), "unit_test_stage");
        }
        {
            let _t = stage("unit_test_stage");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let busy = metrics::counter_value("stage.unit_test_stage.busy_us");
        assert!(busy >= 3_000, "two sleeps must book >= 3ms, got {busy}us");
        let snap = metrics::snapshot();
        let h = snap.histogram("span.unit_test_stage_us").unwrap();
        assert_eq!(h.count, 2, "one observation per scope");
        assert_eq!(h.sum, busy, "histogram sum equals booked busy time");
    }

    #[test]
    fn self_nested_timers_book_busy_time_once() {
        metrics::reset();
        {
            let _outer = stage("nested_stage");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let inner = stage("nested_stage");
                assert!(!inner.outermost, "inner scope of the same stage is nested");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let busy = metrics::counter_value("stage.nested_stage.busy_us");
        // The outer scope alone slept ~6ms; double-counting would book
        // ~8ms+ (outer 6 + inner 2). Assert busy stays below the sum.
        assert!(busy >= 6_000, "outer scope books its wall time, got {busy}us");
        let snap = metrics::snapshot();
        let h = snap.histogram("span.nested_stage_us").unwrap();
        assert_eq!(h.count, 2, "both scopes observe their span latency");
        assert!(
            busy < h.sum,
            "busy ({busy}) must exclude the inner scope (span sum {})",
            h.sum
        );

        // After everything dropped, the stage re-opens as outermost again.
        let t = stage("nested_stage");
        assert!(t.outermost);
        drop(t);
    }
}
