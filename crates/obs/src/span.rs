//! Scoped stage timers.
//!
//! A [`StageTimer`] measures a stage of the pipeline from construction to
//! drop and books the elapsed time twice:
//!
//! * into the counter `stage.<name>.busy_us` — the cumulative per-stage
//!   wall time [`crate::report::RunReport`] breaks a campaign down by;
//! * into the histogram `span.<name>_us` — the per-invocation latency
//!   distribution (one observation per scope).
//!
//! It also emits a `span.close` record at [`Level::Debug`], so `--log-json`
//! captures every stage boundary with its duration.
//!
//! Stage names form a flat namespace by convention (`setup`, `train`,
//! `dse`, `validate`, `checkpoint`, `explore`, `io`); timers for *different*
//! stages may nest, but the same stage must not nest inside itself or its
//! busy time double-counts.

use crate::log::Level;
use std::time::Instant;

/// Times a stage from construction to drop. Create via [`stage`].
#[derive(Debug)]
pub struct StageTimer {
    name: &'static str,
    start: Instant,
}

/// Starts timing stage `name`.
pub fn stage(name: &'static str) -> StageTimer {
    StageTimer { name, start: Instant::now() }
}

impl StageTimer {
    /// The stage name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        let us = self.elapsed_us();
        crate::metrics::counter_add(&format!("stage.{}.busy_us", self.name), us);
        crate::metrics::observe_us(&format!("span.{}_us", self.name), us);
        if crate::log::enabled(Level::Debug) {
            crate::log::emit(
                Level::Debug,
                "span.close",
                "",
                &[
                    ("stage", crate::log::FieldValue::from(self.name)),
                    ("elapsed_us", crate::log::FieldValue::U64(us)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn dropping_a_timer_books_busy_time_and_a_span_observation() {
        metrics::reset();
        {
            let t = stage("unit_test_stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert_eq!(t.name(), "unit_test_stage");
        }
        {
            let _t = stage("unit_test_stage");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let busy = metrics::counter_value("stage.unit_test_stage.busy_us");
        assert!(busy >= 3_000, "two sleeps must book >= 3ms, got {busy}us");
        let snap = metrics::snapshot();
        let h = snap.histogram("span.unit_test_stage_us").unwrap();
        assert_eq!(h.count, 2, "one observation per scope");
        assert_eq!(h.sum, busy, "histogram sum equals booked busy time");
    }
}
