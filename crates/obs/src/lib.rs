//! # gdse-obs
//!
//! The observability substrate of the GNN-DSE reproduction: every crate in
//! the workspace reports *what it did and how long it took* through this one
//! facade, so a campaign can be attributed stage by stage (graph encoding,
//! GNN forward/backward, oracle evaluation, explorer search) instead of
//! guessed at from interleaved `println!` output.
//!
//! Three cooperating layers, all dependency-free (the serde/serde_json
//! workspace shims are the only imports):
//!
//! * [`log`] — a leveled, structured logging facade. Events carry a stable
//!   machine name (`"rounds.round"`), a human message, and typed `key=value`
//!   fields. Two sinks: a human sink on stdout (plain or tagged) and an
//!   optional JSONL sink (one self-describing JSON object per line).
//! * [`metrics`] — a thread-local registry of named counters, gauges, and
//!   fixed-bucket histograms (e.g. `oracle.eval_us`, `train.epoch_loss`,
//!   `dse.points_explored`). Snapshots are serializable, so checkpoints can
//!   carry them across a crash and a resumed campaign's accounting matches
//!   an uninterrupted run's.
//! * [`span`] — scoped stage timers. Dropping a [`span::StageTimer`] adds
//!   the elapsed time to the `stage.<name>.busy_us` counter and the
//!   `span.<name>_us` histogram, giving every rounds-loop iteration a
//!   per-stage wall-time breakdown.
//!
//! Two further layers serve the live serving tier:
//!
//! * [`trace`] — per-request span timelines: a [`trace::TraceId`] travels
//!   with each request, every hop appends [`trace::Span`]s, and completed
//!   [`trace::RequestTrace`]s land in a bounded [`trace::FlightRecorder`]
//!   a running server answers `admin trace` queries from.
//! * [`prom`] — renders any [`MetricsSnapshot`] in the Prometheus text
//!   exposition format for scraping.
//!
//! [`report::RunReport`] distills a metrics snapshot into the
//! `run_report.json` artifact written at campaign end: per-stage wall time,
//! evaluation/retry/fault counts, and the modelled-HLS vs. surrogate
//! speedup that is the paper's headline claim.
//!
//! ## Quickstart
//!
//! ```
//! use gdse_obs as obs;
//!
//! obs::metrics::reset();
//! {
//!     let _t = obs::span::stage("train");
//!     obs::info!("train.start", "training started"; epochs = 4u64);
//!     obs::metrics::counter_add("train.epochs", 4);
//! }
//! let snap = obs::metrics::snapshot();
//! assert_eq!(snap.counter("train.epochs"), Some(4));
//! assert!(snap.counter("stage.train.busy_us").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod span;
pub mod trace;

pub use log::{HumanStyle, Level, LogConfig};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, SharedMetrics};
pub use report::{OracleSummary, RunReport, StageTime, SurrogateSummary};
pub use span::{stage, StageTimer};
pub use trace::{FlightRecorder, RequestTrace, Span, TraceBuilder, TraceId};

/// Logs at [`Level::Error`]: `obs::error!(event, fmt-args...; field = value, ...)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::__log_at!($crate::Level::Error, $($t)*) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::__log_at!($crate::Level::Warn, $($t)*) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::__log_at!($crate::Level::Info, $($t)*) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::__log_at!($crate::Level::Debug, $($t)*) };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($t:tt)*) => { $crate::__log_at!($crate::Level::Trace, $($t)*) };
}

/// Shared expansion of the level macros. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __log_at {
    // event, format string + args, then `; k = v, ...` fields.
    ($lvl:expr, $event:expr, $fmt:expr $(, $arg:expr)* ; $($k:ident = $v:expr),+ $(,)?) => {{
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                $event,
                &format!($fmt $(, $arg)*),
                &[$((stringify!($k), $crate::log::FieldValue::from($v))),+],
            );
        }
    }};
    // event + format string + args, no fields.
    ($lvl:expr, $event:expr, $fmt:expr $(, $arg:expr)* $(,)?) => {{
        if $crate::log::enabled($lvl) {
            $crate::log::emit($lvl, $event, &format!($fmt $(, $arg)*), &[]);
        }
    }};
    // event only, fields only.
    ($lvl:expr, $event:expr ; $($k:ident = $v:expr),+ $(,)?) => {{
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                $event,
                "",
                &[$((stringify!($k), $crate::log::FieldValue::from($v))),+],
            );
        }
    }};
    // bare event.
    ($lvl:expr, $event:expr) => {{
        if $crate::log::enabled($lvl) {
            $crate::log::emit($lvl, $event, "", &[]);
        }
    }};
}
