//! The end-of-campaign run report.
//!
//! [`RunReport`] is the `run_report.json` artifact a campaign writes when
//! `--metrics-out` is set: a distilled, schema-versioned view of the metrics
//! registry with the quantities the paper's evaluation cares about pulled
//! into first-class fields — per-stage wall time, oracle retry/fault
//! accounting, and the modelled-HLS vs. surrogate throughput comparison
//! (the Table 4 headline) — plus the full counter/gauge/histogram dump for
//! anything else.
//!
//! The report is built from a [`MetricsSnapshot`] so it can be produced
//! from the live registry (campaign end) or from a checkpointed snapshot
//! (post-mortem of a crashed run).

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Current value of [`RunReport::schema_version`].
pub const SCHEMA_VERSION: u32 = 1;

/// Cumulative busy time of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTime {
    /// Stage name (`train`, `dse`, `validate`, ...).
    pub stage: String,
    /// Total time spent in the stage, microseconds.
    pub busy_us: u64,
}

/// Oracle-side accounting: evaluations, retries, faults, losses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OracleSummary {
    /// Oracle invocations, including retries.
    pub attempts: u64,
    /// Evaluations that produced a result.
    pub successes: u64,
    /// Transient failures that were retried.
    pub transient_failures: u64,
    /// Evaluations abandoned on a non-retryable failure.
    pub permanent_failures: u64,
    /// Evaluations abandoned after exhausting retries.
    pub exhausted: u64,
    /// Evaluations that produced no result (permanent + exhausted).
    pub lost: u64,
    /// Milliseconds a real driver would have spent backing off.
    pub virtual_backoff_ms: u64,
    /// Injected/observed fault counts by kind (`tool-crash`, ...).
    pub faults: Vec<(String, u64)>,
}

/// Surrogate-side accounting and the modelled speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SurrogateSummary {
    /// Surrogate (predictor) inferences performed.
    pub inferences: u64,
    /// Wall time spent inside the surrogate, microseconds.
    pub busy_us: u64,
    /// Mean microseconds per inference (0 when no inferences ran).
    pub mean_inference_us: f64,
    /// Total modelled HLS synthesis time of the evaluations that ran,
    /// minutes (what the real toolchain would have cost).
    pub modelled_hls_minutes: f64,
    /// Modelled per-evaluation HLS time over per-inference surrogate time —
    /// the "minutes vs. milliseconds" claim, computed from this run
    /// (0 when either side is unmeasured).
    pub modelled_vs_surrogate_speedup: f64,
}

/// Multi-objective accounting: Pareto-front sizes and resource-budget
/// enforcement. All zeros for single-objective, unbudgeted runs (and for
/// reports written before this summary existed — the field deserializes
/// with a default, so the schema version is unchanged).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ParetoSummary {
    /// Front points published: predicted fronts from the DSE
    /// (`dse.front_points`) plus tool-validated fronts from the rounds loop
    /// (`rounds.front_points`).
    pub front_points: u64,
    /// Returned DSE candidates that violated the resource budget. Stays 0
    /// by construction unless a run found *no* budget-admissible candidate
    /// and fell back to best-predicted.
    pub budget_violations: u64,
}

/// The `run_report.json` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The command that produced the report (`gendb`, `rounds`, `dse`).
    pub command: String,
    /// Total wall time of the command, microseconds.
    pub total_wall_us: u64,
    /// Per-stage cumulative busy time, sorted by stage name.
    pub stages: Vec<StageTime>,
    /// Oracle/harness accounting.
    pub oracle: OracleSummary,
    /// Surrogate accounting and modelled speedup.
    pub surrogate: SurrogateSummary,
    /// Multi-objective (Pareto/budget) accounting.
    #[serde(default)]
    pub pareto: ParetoSummary,
    /// Every counter in the registry, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Every gauge in the registry, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram in the registry, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl RunReport {
    /// Distills `snap` into a report for `command` that took `total_wall`.
    pub fn from_snapshot(command: &str, total_wall: Duration, snap: &MetricsSnapshot) -> Self {
        let stages = snap
            .counters_with_prefix("stage.")
            .filter_map(|(name, v)| {
                let stage = name.strip_prefix("stage.")?.strip_suffix(".busy_us")?;
                Some(StageTime { stage: stage.to_string(), busy_us: v })
            })
            .collect();

        let c = |name: &str| snap.counter(name).unwrap_or(0);
        let oracle = OracleSummary {
            attempts: c("oracle.attempts"),
            successes: c("oracle.successes"),
            transient_failures: c("oracle.transient_failures"),
            permanent_failures: c("oracle.permanent_failures"),
            exhausted: c("oracle.exhausted"),
            lost: c("oracle.permanent_failures") + c("oracle.exhausted"),
            virtual_backoff_ms: c("oracle.virtual_backoff_ms"),
            faults: snap
                .counters_with_prefix("harness.faults{kind=")
                .filter_map(|(name, v)| {
                    let kind = name
                        .strip_prefix("harness.faults{kind=")?
                        .strip_suffix('}')?;
                    Some((kind.to_string(), v))
                })
                .collect(),
        };

        let inferences = c("surrogate.inferences");
        let busy_us = c("surrogate.busy_us");
        let modelled_hls_minutes = snap.gauge("sim.modelled_hls_minutes").unwrap_or(0.0);
        let sim_evals = c("sim.evals");
        let mean_inference_us =
            if inferences > 0 { busy_us as f64 / inferences as f64 } else { 0.0 };
        // Per-evaluation modelled HLS time vs. per-inference surrogate time:
        // "minutes of synthesis vs. milliseconds of inference".
        let modelled_vs_surrogate_speedup = if inferences > 0 && sim_evals > 0 && busy_us > 0 {
            let hls_us_per_eval = modelled_hls_minutes * 60e6 / sim_evals as f64;
            hls_us_per_eval / mean_inference_us
        } else {
            0.0
        };
        let surrogate = SurrogateSummary {
            inferences,
            busy_us,
            mean_inference_us,
            modelled_hls_minutes,
            modelled_vs_surrogate_speedup,
        };

        let pareto = ParetoSummary {
            front_points: c("dse.front_points") + c("rounds.front_points"),
            budget_violations: c("dse.budget_violations"),
        };

        RunReport {
            schema_version: SCHEMA_VERSION,
            command: command.to_string(),
            total_wall_us: total_wall.as_micros() as u64,
            stages,
            oracle,
            surrogate,
            pareto,
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap.histograms.clone(),
        }
    }

    /// Builds the report from the live thread-local registry.
    pub fn from_current_metrics(command: &str, total_wall: Duration) -> Self {
        Self::from_snapshot(command, total_wall, &crate::metrics::snapshot())
    }

    /// Cumulative busy time of `stage`, microseconds (0 when absent).
    pub fn stage_us(&self, stage: &str) -> u64 {
        self.stages.iter().find(|s| s.stage == stage).map_or(0, |s| s.busy_us)
    }

    /// Sum of all stage busy times, microseconds. For a fully-instrumented
    /// single-threaded command with non-nesting stages this approaches
    /// [`RunReport::total_wall_us`] from below.
    pub fn stages_total_us(&self) -> u64 {
        self.stages.iter().map(|s| s.busy_us).sum()
    }

    /// Serializes the report as indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("run report always serializes")
    }

    /// Parses a report produced by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input or a schema
    /// mismatch message on an unknown `schema_version`.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let report: RunReport = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "run report schema version {} unsupported (expected {})",
                report.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn populated_snapshot() -> MetricsSnapshot {
        metrics::reset();
        metrics::counter_add("stage.train.busy_us", 900);
        metrics::counter_add("stage.dse.busy_us", 80);
        metrics::counter_add("stage.validate.busy_us", 15);
        metrics::counter_add("oracle.attempts", 12);
        metrics::counter_add("oracle.successes", 9);
        metrics::counter_add("oracle.transient_failures", 3);
        metrics::counter_add("oracle.exhausted", 1);
        metrics::counter_add("oracle.virtual_backoff_ms", 700);
        metrics::counter_add_labeled("harness.faults", "kind", "tool-crash", 2);
        metrics::counter_add_labeled("harness.faults", "kind", "spurious-timeout", 1);
        metrics::counter_add("surrogate.inferences", 1000);
        metrics::counter_add("surrogate.busy_us", 2_000);
        metrics::counter_add("sim.evals", 10);
        metrics::counter_add("dse.front_points", 4);
        metrics::counter_add("rounds.front_points", 3);
        metrics::gauge_add("sim.modelled_hls_minutes", 50.0);
        metrics::observe_us("oracle.eval_us", 120);
        metrics::snapshot()
    }

    #[test]
    fn report_extracts_stages_oracle_and_speedup() {
        let snap = populated_snapshot();
        let r = RunReport::from_snapshot("rounds", Duration::from_micros(1_100), &snap);
        assert_eq!(r.schema_version, SCHEMA_VERSION);
        assert_eq!(r.command, "rounds");
        assert_eq!(r.total_wall_us, 1_100);
        assert_eq!(r.stage_us("train"), 900);
        assert_eq!(r.stage_us("dse"), 80);
        assert_eq!(r.stages_total_us(), 995);
        assert_eq!(r.oracle.attempts, 12);
        assert_eq!(r.oracle.lost, 1);
        assert_eq!(r.oracle.faults.len(), 2);
        let crash = r.oracle.faults.iter().find(|(k, _)| k == "tool-crash").unwrap();
        assert_eq!(crash.1, 2);
        // 50 modelled minutes over 10 evals = 5 min/eval = 3e8 us/eval;
        // 2000us over 1000 inferences = 2us/inference; speedup = 1.5e8.
        assert_eq!(r.surrogate.mean_inference_us, 2.0);
        assert!((r.surrogate.modelled_vs_surrogate_speedup - 1.5e8).abs() < 1.0);
        assert_eq!(r.pareto.front_points, 7, "dse + rounds front points");
        assert_eq!(r.pareto.budget_violations, 0);
    }

    #[test]
    fn pre_pareto_reports_still_parse() {
        // A report serialized before the pareto summary existed must load
        // with the default summary — same schema version.
        let snap = MetricsSnapshot::default();
        let r = RunReport::from_snapshot("dse", Duration::ZERO, &snap);
        let json = r.to_json();
        // Splice the "pareto" object (and its trailing comma) out of the
        // serialized report, as if written by an older binary.
        let start = json.find("\"pareto\"").expect("field serializes");
        let brace = json[start..].find('}').expect("object closes") + start + 1;
        let after = if json[brace..].starts_with(',') { brace + 1 } else { brace };
        let stripped = format!("{}{}", &json[..start], &json[after..]);
        let back = RunReport::from_json(&stripped).expect("parses without the field");
        assert_eq!(back.pareto, ParetoSummary::default());
    }

    #[test]
    fn report_round_trips_through_json() {
        let snap = populated_snapshot();
        let r = RunReport::from_snapshot("gendb", Duration::from_secs(2), &snap);
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("parses back");
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let snap = MetricsSnapshot::default();
        let mut r = RunReport::from_snapshot("dse", Duration::ZERO, &snap);
        r.schema_version = 99;
        let err = RunReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn empty_registry_reports_zeros_not_errors() {
        let snap = MetricsSnapshot::default();
        let r = RunReport::from_snapshot("rounds", Duration::ZERO, &snap);
        assert_eq!(r.stages_total_us(), 0);
        assert_eq!(r.oracle.attempts, 0);
        assert_eq!(r.surrogate.modelled_vs_surrogate_speedup, 0.0);
        assert!(RunReport::from_json(&r.to_json()).is_ok());
    }
}
