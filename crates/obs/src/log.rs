//! The structured logging facade.
//!
//! A log record is `(level, event, msg, fields)`:
//!
//! * `level` — severity, gated by a global verbosity ([`set_level`]);
//! * `event` — a stable, machine-oriented dotted name (`"oracle.retry"`);
//! * `msg` — the human sentence (may be empty for pure-data events);
//! * `fields` — typed `key=value` pairs ([`FieldValue`]).
//!
//! Two sinks consume records:
//!
//! * the **human sink** prints to stdout, either [`HumanStyle::Plain`]
//!   (message verbatim — what the CLI and the bench tables use, so existing
//!   output stays byte-compatible) or [`HumanStyle::Tagged`]
//!   (`[level] event: msg key=value`);
//! * the **JSONL sink** appends one JSON object per record to a file (or any
//!   writer), so `--log-json` captures everything machine-readably no matter
//!   what the human sink shows.
//!
//! The facade is process-global and cheap when disabled: the level gate is a
//! single relaxed atomic load, and the `obs::info!`-style macros skip all
//! formatting work for suppressed levels.

use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The campaign cannot proceed as requested.
    Error = 0,
    /// Something degraded (lost evaluation, retry exhausted) but the run
    /// continues.
    Warn = 1,
    /// Campaign progress: round/stage completions, summary lines.
    Info = 2,
    /// Per-iteration detail: epochs, retries, explorer moves.
    Debug = 3,
    /// Per-evaluation firehose.
    Trace = 4,
}

impl Level {
    /// Stable lowercase name (`"info"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level `{other}` (error|warn|info|debug|trace)")),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value attached to a log record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_field_from! {
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<std::time::Duration> for FieldValue {
    fn from(v: std::time::Duration) -> Self {
        FieldValue::U64(v.as_micros() as u64)
    }
}

/// How the human sink renders records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HumanStyle {
    /// No human output at all (JSONL-only runs).
    Off,
    /// The message verbatim — CLI/bench table output stays byte-compatible.
    Plain,
    /// `[level] event: msg key=value` — diagnostics-friendly.
    Tagged,
}

/// Facade configuration applied by [`init`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Maximum level that is emitted.
    pub level: Level,
    /// Human sink style.
    pub human: HumanStyle,
    /// If set, JSONL records are appended to this file.
    pub json_path: Option<PathBuf>,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig { level: Level::Info, human: HumanStyle::Plain, json_path: None }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static HUMAN: AtomicU8 = AtomicU8::new(1); // HumanStyle::Plain

fn json_sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Applies `cfg` to the global facade (level, human style, JSONL file).
///
/// May be called again to reconfigure; the previous JSONL writer (if any) is
/// flushed and replaced.
///
/// # Errors
///
/// Propagates the error if `cfg.json_path` cannot be created.
pub fn init(cfg: LogConfig) -> std::io::Result<()> {
    set_level(cfg.level);
    set_human_style(cfg.human);
    let writer: Option<Box<dyn Write + Send>> = match &cfg.json_path {
        Some(p) => Some(Box::new(std::fs::File::create(p)?)),
        None => None,
    };
    let mut sink = json_sink().lock().expect("log sink poisoned");
    if let Some(old) = sink.as_mut() {
        let _ = old.flush();
    }
    *sink = writer;
    Ok(())
}

/// Sets the global verbosity.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global verbosity.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Sets the human sink style.
pub fn set_human_style(style: HumanStyle) {
    let v = match style {
        HumanStyle::Off => 0,
        HumanStyle::Plain => 1,
        HumanStyle::Tagged => 2,
    };
    HUMAN.store(v, Ordering::Relaxed);
}

fn human_style() -> HumanStyle {
    match HUMAN.load(Ordering::Relaxed) {
        0 => HumanStyle::Off,
        1 => HumanStyle::Plain,
        _ => HumanStyle::Tagged,
    }
}

/// Replaces the JSONL sink with an arbitrary writer (used by tests to
/// capture records in memory).
pub fn set_json_writer(w: Box<dyn Write + Send>) {
    *json_sink().lock().expect("log sink poisoned") = Some(w);
}

/// Removes the JSONL sink.
pub fn clear_json_writer() {
    *json_sink().lock().expect("log sink poisoned") = None;
}

/// Whether records at `level` are currently emitted. The macros call this
/// before doing any formatting work.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// An in-memory `Write` target sharing its buffer, for capturing JSONL
/// output in tests: `set_json_writer(Box::new(buf.clone()))`.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The captured bytes as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buffer poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Emits one record to the active sinks. Called by the `obs::info!`-family
/// macros after the [`enabled`] gate; calling it directly bypasses the gate.
pub fn emit(level: Level, event: &str, msg: &str, fields: &[(&str, FieldValue)]) {
    match human_style() {
        HumanStyle::Off => {}
        HumanStyle::Plain => {
            // Message verbatim; fields stay JSONL-only so existing CLI and
            // bench output is unchanged. A record with no message *and*
            // fields is pure data (not for human eyes); one with neither is
            // an intentional blank line (bench table spacing).
            if !msg.is_empty() || fields.is_empty() {
                println!("{msg}");
            }
        }
        HumanStyle::Tagged => {
            let mut line = format!("[{level}] {event}");
            if !msg.is_empty() {
                line.push_str(": ");
                line.push_str(msg);
            }
            for (k, v) in fields {
                line.push(' ');
                line.push_str(k);
                line.push('=');
                line.push_str(&v.to_string());
            }
            println!("{line}");
        }
    }

    let mut sink = json_sink().lock().expect("log sink poisoned");
    if let Some(w) = sink.as_mut() {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let line = format_json_record(ts_ms, level, event, msg, fields);
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Renders one record as a single JSON object (no trailing newline). Pure,
/// so sink escaping is testable without touching global state.
pub fn format_json_record(
    ts_ms: u64,
    level: Level,
    event: &str,
    msg: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"ts_ms\":");
    out.push_str(&ts_ms.to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.as_str());
    out.push_str("\",\"event\":\"");
    escape_json_into(&mut out, event);
    out.push('"');
    if !msg.is_empty() {
        out.push_str(",\"msg\":\"");
        escape_json_into(&mut out, msg);
        out.push('"');
    }
    if !fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(&mut out, k);
            out.push_str("\":");
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::I64(n) => out.push_str(&n.to_string()),
                FieldValue::F64(n) => {
                    if n.is_finite() {
                        out.push_str(&n.to_string());
                    } else {
                        // JSON has no NaN/Infinity; stringify like serde_json
                        // would reject — we degrade to null.
                        out.push_str("null");
                    }
                }
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                FieldValue::Str(s) => {
                    out.push('"');
                    escape_json_into(&mut out, s);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// JSON string escaping per RFC 8259: quotes, backslashes, and control
/// characters (`\uXXXX` for the ones without short forms).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parsing() {
        assert!(Level::Error < Level::Trace);
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("TRACE".parse::<Level>().unwrap(), Level::Trace);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn json_record_is_wellformed_and_ordered() {
        let line = format_json_record(
            1234,
            Level::Info,
            "rounds.round",
            "round 1 done",
            &[
                ("round", FieldValue::U64(1)),
                ("speedup", FieldValue::F64(1.5)),
                ("kernel", FieldValue::Str("gemm".into())),
                ("lost", FieldValue::Bool(false)),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1234,\"level\":\"info\",\"event\":\"rounds.round\",\
             \"msg\":\"round 1 done\",\"fields\":{\"round\":1,\"speedup\":1.5,\
             \"kernel\":\"gemm\",\"lost\":false}}"
        );
    }

    #[test]
    fn json_sink_escapes_special_characters() {
        let line = format_json_record(
            0,
            Level::Error,
            "oracle.failure",
            "tool said \"segfault\"\nat C:\\hls\tcore",
            &[("detail", FieldValue::Str("ctrl:\u{01}\u{1f} bell:\u{07}".into()))],
        );
        // The record must parse back as one JSON object with the original
        // content intact.
        let v: serde::Value = serde_json::from_str(&line).expect("escaped record parses");
        let map = v.as_map().unwrap();
        let msg = map.iter().find(|(k, _)| k == "msg").unwrap().1.as_str().unwrap();
        assert_eq!(msg, "tool said \"segfault\"\nat C:\\hls\tcore");
        let fields = map.iter().find(|(k, _)| k == "fields").unwrap().1.as_map().unwrap();
        assert_eq!(fields[0].1.as_str().unwrap(), "ctrl:\u{01}\u{1f} bell:\u{07}");
        // And the raw line must not contain unescaped control bytes.
        assert!(!line.bytes().any(|b| b < 0x20), "raw control byte leaked: {line}");
    }

    #[test]
    fn trace_fields_escape_into_parseable_jsonl() {
        // Trace ids logged by the serving tier come off the wire; a
        // hostile or buggy client can put anything in them, and the slow-
        // request dump quotes span timelines wholesale. None of it may
        // break the JSONL sink.
        let hostile = "dead\"beef\\\u{00}\n{evil}";
        let line = format_json_record(
            42,
            Level::Warn,
            "serve.trace.slow",
            "request exceeded threshold",
            &[
                ("trace_id", FieldValue::Str(hostile.into())),
                ("timeline", FieldValue::Str("ingress@+0us/12us write@+90us/3us".into())),
                ("total_us", FieldValue::U64(93)),
            ],
        );
        let v: serde::Value = serde_json::from_str(&line).expect("trace record parses");
        let map = v.as_map().unwrap();
        let fields = map.iter().find(|(k, _)| k == "fields").unwrap().1.as_map().unwrap();
        let tid = fields.iter().find(|(k, _)| k == "trace_id").unwrap().1.as_str().unwrap();
        assert_eq!(tid, hostile, "trace id survives the round trip byte-for-byte");
        assert!(!line.bytes().any(|b| b < 0x20), "raw control byte leaked: {line}");
        assert_eq!(line.lines().count(), 1, "one record stays one JSONL line");
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        let line =
            format_json_record(0, Level::Info, "x", "", &[("v", FieldValue::F64(f64::NAN))]);
        assert!(line.contains("\"v\":null"), "{line}");
        assert!(serde_json::from_str::<serde::Value>(&line).is_ok());
    }

    #[test]
    fn empty_msg_and_fields_are_omitted() {
        let line = format_json_record(7, Level::Debug, "tick", "", &[]);
        assert_eq!(line, "{\"ts_ms\":7,\"level\":\"debug\",\"event\":\"tick\"}");
    }

    #[test]
    fn shared_buffer_captures_jsonl_records() {
        // This test owns the global sink: it is the only obs-crate test that
        // touches it, so parallel test threads cannot interleave.
        let buf = SharedBuffer::new();
        set_json_writer(Box::new(buf.clone()));
        set_level(Level::Debug);
        set_human_style(HumanStyle::Off);
        crate::info!("test.event", "hello {}", "world"; n = 3u64);
        crate::debug!("test.quiet");
        crate::trace!("test.suppressed"); // above the level: dropped
        clear_json_writer();
        set_level(Level::Info);
        set_human_style(HumanStyle::Plain);

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"event\":\"test.event\""));
        assert!(lines[0].contains("\"msg\":\"hello world\""));
        assert!(lines[0].contains("\"n\":3"));
        assert!(lines[1].contains("\"event\":\"test.quiet\""));
    }
}
