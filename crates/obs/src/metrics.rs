//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The registry is **thread-local**: the pipeline is single-threaded per
//! campaign, and thread-locality gives every `cargo test` thread an isolated
//! registry for free (no cross-test interference, no locks on the hot path).
//!
//! Metric names are dotted strings (`oracle.eval_us`); a one-label variant
//! composes Prometheus-style keys (`harness.faults{kind=tool-crash}`).
//!
//! [`snapshot`] serializes the whole registry (sorted, deterministic) and
//! [`restore`] replaces it — that pair is what lets a rounds checkpoint
//! carry its accounting across a crash so the resumed campaign's
//! `run_report.json` matches an uninterrupted run.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Upper bucket edges (inclusive, microseconds) of the default latency
/// histogram: spans 10 µs surrogate inferences to minute-scale HLS stages.
/// Observations above the last edge land in the overflow bucket.
pub const DEFAULT_US_EDGES: [u64; 14] = [
    10,
    50,
    100,
    500,
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    60_000_000,
];

/// A fixed-bucket histogram: `counts[i]` observations fell in
/// `(edges[i-1], edges[i]]`, with one extra overflow bucket past the last
/// edge. Also tracks the exact count and sum, so means are bucket-error-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram over `edges` (must be strictly increasing).
    pub fn new(edges: &[u64]) -> Self {
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must be strictly increasing");
        Histogram { edges: edges.to_vec(), counts: vec![0; edges.len() + 1], count: 0, sum: 0 }
    }

    /// An empty histogram over [`DEFAULT_US_EDGES`].
    pub fn default_us() -> Self {
        Self::new(&DEFAULT_US_EDGES)
    }

    /// The bucket index `value` falls into: the first `i` with
    /// `value <= edges[i]`, or the overflow bucket.
    pub fn bucket_index(&self, value: u64) -> usize {
        self.edges.partition_point(|&e| e < value)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let i = self.bucket_index(value);
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts (`edges.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// A serializable copy under `name`.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            edges: self.edges.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
        }
    }

    fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Histogram {
            edges: s.edges.clone(),
            counts: s.counts.clone(),
            count: s.count,
            sum: s.sum,
        }
    }

    /// Adds another histogram's observations into this one. Requires equal
    /// bucket edges (all callers use one fixed edge set per metric name).
    fn add_snapshot(&mut self, s: &HistogramSnapshot) {
        debug_assert_eq!(self.edges, s.edges, "histogram edge mismatch in merge");
        if self.edges != s.edges {
            return;
        }
        for (c, add) in self.counts.iter_mut().zip(&s.counts) {
            *c += add;
        }
        self.count += s.count;
        self.sum = self.sum.saturating_add(s.sum);
    }
}

/// Serializable state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Upper bucket edges (inclusive).
    pub edges: Vec<u64>,
    /// Per-bucket counts (one more than `edges`; last is overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Interpolated quantile `q` (clamped to `[0, 1]`): walks the
    /// cumulative bucket counts to the bucket containing the `q·count`-th
    /// observation and interpolates linearly inside it, the same estimate
    /// Prometheus' `histogram_quantile` computes. Observations in the
    /// overflow bucket clamp to the last edge (their true magnitude is
    /// unknown); an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.edges.is_empty() {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let last_edge = *self.edges.last().expect("non-empty edges") as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if c > 0 && next >= target {
                if i >= self.edges.len() {
                    return last_edge;
                }
                let lower = if i == 0 { 0.0 } else { self.edges[i - 1] as f64 };
                let upper = self.edges[i] as f64;
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
            cum = next;
        }
        last_edge
    }
}

/// Deterministic, serializable copy of a whole registry. Entries are sorted
/// by name, so the same campaign always snapshots to the same bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A histogram's state, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// All counters whose composed name starts with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Composes a one-label metric key: `name{key=value}`.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}={value}}}")
}

/// Adds `delta` to counter `name` (creating it at 0).
pub fn counter_add(name: &str, delta: u64) {
    REGISTRY.with(|r| {
        *r.borrow_mut().counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Increments counter `name` by one.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Adds `delta` to the labeled counter `name{key=value}`.
pub fn counter_add_labeled(name: &str, key: &str, value: &str, delta: u64) {
    counter_add(&labeled(name, key, value), delta);
}

/// The current value of counter `name` (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    REGISTRY.with(|r| r.borrow().counters.get(name).copied().unwrap_or(0))
}

/// Sets gauge `name` to `value`.
pub fn gauge_set(name: &str, value: f64) {
    REGISTRY.with(|r| {
        r.borrow_mut().gauges.insert(name.to_string(), value);
    });
}

/// Adds `delta` to gauge `name` (creating it at 0) — for accumulating
/// fractional quantities like modelled HLS minutes.
pub fn gauge_add(name: &str, delta: f64) {
    REGISTRY.with(|r| {
        *r.borrow_mut().gauges.entry(name.to_string()).or_insert(0.0) += delta;
    });
}

/// The current value of gauge `name`, if set.
pub fn gauge_value(name: &str) -> Option<f64> {
    REGISTRY.with(|r| r.borrow().gauges.get(name).copied())
}

/// Records `us` into histogram `name` (created over [`DEFAULT_US_EDGES`]).
pub fn observe_us(name: &str, us: u64) {
    REGISTRY.with(|r| {
        r.borrow_mut()
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::default_us)
            .record(us);
    });
}

/// Records `us` into histogram `name`, creating it over `edges` if new.
pub fn observe_with_edges(name: &str, edges: &[u64], us: u64) {
    REGISTRY.with(|r| {
        r.borrow_mut()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges))
            .record(us);
    });
}

/// Runs `f` with the named histogram, if it exists.
pub fn with_histogram<T>(name: &str, f: impl FnOnce(&Histogram) -> T) -> Option<T> {
    REGISTRY.with(|r| r.borrow().histograms.get(name).map(f))
}

/// A deterministic (sorted) copy of this thread's registry.
pub fn snapshot() -> MetricsSnapshot {
    REGISTRY.with(|r| {
        let r = r.borrow();
        MetricsSnapshot {
            counters: r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: r.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: r.histograms.iter().map(|(k, h)| h.snapshot(k)).collect(),
        }
    })
}

/// Replaces this thread's registry with `snap` — the resume half of
/// checkpointed accounting.
pub fn restore(snap: &MetricsSnapshot) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.counters = snap.counters.iter().cloned().collect();
        r.gauges = snap.gauges.iter().cloned().collect();
        r.histograms = snap
            .histograms
            .iter()
            .map(|h| (h.name.clone(), Histogram::from_snapshot(h)))
            .collect();
    });
}

/// Adds `snap` **into** this thread's registry (unlike [`restore`], which
/// replaces it): counters and histogram buckets sum, and gauges sum too —
/// the workspace's gauges are accumulators (modelled HLS minutes, queue
/// depths), so additive merge is the meaningful combination when folding
/// worker-thread registries back into the main thread after a parallel
/// section. Histograms with mismatched bucket edges are skipped (debug
/// builds assert; every metric name uses one fixed edge set).
pub fn merge(snap: &MetricsSnapshot) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        for (name, v) in &snap.counters {
            *r.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &snap.gauges {
            *r.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for h in &snap.histograms {
            match r.histograms.entry(h.name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().add_snapshot(h);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Histogram::from_snapshot(h));
                }
            }
        }
    });
}

/// Clears this thread's registry.
pub fn reset() {
    REGISTRY.with(|r| *r.borrow_mut() = Registry::default());
}

/// A mutex-guarded registry shared **across** threads, for metrics that
/// must be readable *while* worker threads are still running.
///
/// The thread-local registry is the right default (no locks, no
/// cross-test interference), but its contents only become visible to
/// other threads after a worker parks its snapshot at exit — useless for
/// a live `admin stats` endpoint. Hot paths that feed live telemetry
/// (request-span histograms, queue-depth gauges) record into a
/// `SharedMetrics` instead; the owner folds [`SharedMetrics::snapshot`]
/// into the ordinary registry via [`merge`] at shutdown so end-of-run
/// reports see one unified registry.
#[derive(Default)]
pub struct SharedMetrics {
    inner: std::sync::Mutex<Registry>,
}

impl SharedMetrics {
    /// An empty shared registry.
    pub fn new() -> SharedMetrics {
        SharedMetrics::default()
    }

    fn with<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        f(&mut self.inner.lock().expect("shared metrics lock"))
    }

    /// Adds `delta` to counter `name` (creating it at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|r| *r.counters.entry(name.to_string()).or_insert(0) += delta);
    }

    /// Increments counter `name` by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// The current value of counter `name` (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.with(|r| r.counters.get(name).copied().unwrap_or(0))
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with(|r| {
            r.gauges.insert(name.to_string(), value);
        });
    }

    /// The current value of gauge `name`, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.with(|r| r.gauges.get(name).copied())
    }

    /// Records `us` into histogram `name` (created over
    /// [`DEFAULT_US_EDGES`]).
    pub fn observe_us(&self, name: &str, us: u64) {
        self.with(|r| {
            r.histograms
                .entry(name.to_string())
                .or_insert_with(Histogram::default_us)
                .record(us);
        });
    }

    /// Records `us` into histogram `name`, creating it over `edges` if new.
    pub fn observe_with_edges(&self, name: &str, edges: &[u64], us: u64) {
        self.with(|r| {
            r.histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(edges))
                .record(us);
        });
    }

    /// A deterministic (sorted) copy of the shared registry — safe to call
    /// from any thread at any time.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|r| MetricsSnapshot {
            counters: r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: r.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: r.histograms.iter().map(|(k, h)| h.snapshot(k)).collect(),
        })
    }

    /// Clears the shared registry.
    pub fn reset(&self) {
        self.with(|r| *r = Registry::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        // At the edge -> that bucket; one past -> the next.
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(10), 0);
        assert_eq!(h.bucket_index(11), 1);
        assert_eq!(h.bucket_index(100), 1);
        assert_eq!(h.bucket_index(101), 2);
        assert_eq!(h.bucket_index(1000), 2);
        assert_eq!(h.bucket_index(1001), 3, "past the last edge -> overflow");
        assert_eq!(h.bucket_index(u64::MAX), 3);

        for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX / 2] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn histogram_mean_is_exact_not_bucketed() {
        let mut h = Histogram::new(&[1_000]);
        h.record(1);
        h.record(5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.sum(), 6);
        assert_eq!(Histogram::new(&[10]).mean(), 0.0, "empty histogram mean is 0");
    }

    #[test]
    fn counters_gauges_and_labels_accumulate() {
        reset();
        counter_inc("a.b");
        counter_add("a.b", 4);
        counter_add_labeled("faults", "kind", "crash", 2);
        gauge_set("loss", 0.5);
        gauge_add("minutes", 1.25);
        gauge_add("minutes", 0.25);
        assert_eq!(counter_value("a.b"), 5);
        assert_eq!(counter_value("faults{kind=crash}"), 2);
        assert_eq!(counter_value("never"), 0);
        assert_eq!(gauge_value("loss"), Some(0.5));
        assert_eq!(gauge_value("minutes"), Some(1.5));
    }

    #[test]
    fn snapshot_restore_round_trips_through_json() {
        reset();
        counter_add("x", 7);
        gauge_set("g", 2.5);
        observe_us("h_us", 42);
        observe_us("h_us", 5_000_000);
        let snap = snapshot();

        // Serialize / deserialize must preserve everything.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        // restore() must reproduce the registry exactly.
        reset();
        assert_eq!(counter_value("x"), 0);
        restore(&back);
        assert_eq!(counter_value("x"), 7);
        assert_eq!(gauge_value("g"), Some(2.5));
        let h = snapshot().histogram("h_us").unwrap().clone();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5_000_042);
        // And keep accumulating on top of the restored state.
        observe_us("h_us", 1);
        assert_eq!(snapshot().histogram("h_us").unwrap().count, 3);
    }

    #[test]
    fn merge_is_additive_where_restore_replaces() {
        reset();
        counter_add("work", 3);
        gauge_add("minutes", 1.5);
        observe_us("lat_us", 20);
        let snap = snapshot();

        counter_add("work", 2);
        counter_add("other", 1);
        merge(&snap);
        assert_eq!(counter_value("work"), 8, "3 existing + 2 local + 3 merged");
        assert_eq!(counter_value("other"), 1, "untouched by the merge");
        assert_eq!(gauge_value("minutes"), Some(3.0), "gauges merge additively");
        let h = snapshot().histogram("lat_us").unwrap().clone();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 40);

        // Merging into an empty registry equals restoring it.
        reset();
        merge(&snap);
        assert_eq!(snapshot(), snap);
        reset();
    }

    #[test]
    fn merging_worker_snapshots_matches_a_single_registry() {
        // The pool's invariant: splitting work across thread-local
        // registries and merging them back equals recording serially.
        reset();
        for i in 0..10u64 {
            counter_inc("task");
            observe_us("us", i * 100);
        }
        let serial = snapshot();

        reset();
        let parts: Vec<MetricsSnapshot> = (0..2)
            .map(|w| {
                std::thread::scope(|s| {
                    s.spawn(move || {
                        for i in (w as u64..10).step_by(2) {
                            counter_inc("task");
                            observe_us("us", i * 100);
                        }
                        snapshot()
                    })
                    .join()
                    .unwrap()
                })
            })
            .collect();
        for p in &parts {
            merge(p);
        }
        assert_eq!(snapshot(), serial);
        reset();
    }

    #[test]
    fn quantiles_interpolate_within_buckets_and_clamp_overflow() {
        let mut h = Histogram::new(&[100, 200, 1_000]);
        // 10 observations in (0, 100], 10 in (100, 200].
        for _ in 0..10 {
            h.record(50);
            h.record(150);
        }
        let s = h.snapshot("q");
        // p50 sits exactly at the boundary of the first bucket.
        assert_eq!(s.quantile(0.50), 100.0);
        // p25: halfway through the first bucket (5th of 10 obs in (0,100]).
        assert_eq!(s.quantile(0.25), 50.0);
        // p75: halfway through the second bucket.
        assert_eq!(s.quantile(0.75), 150.0);
        // p100 = upper edge of the last occupied bucket.
        assert_eq!(s.quantile(1.0), 200.0);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(s.quantile(-1.0), s.quantile(0.0));
        assert_eq!(s.quantile(2.0), s.quantile(1.0));

        // Overflow observations clamp to the last edge.
        let mut h = Histogram::new(&[100]);
        h.record(999_999);
        assert_eq!(h.snapshot("o").quantile(0.99), 100.0);

        // Empty histogram reports 0.
        assert_eq!(Histogram::default_us().snapshot("e").quantile(0.5), 0.0);
    }

    #[test]
    fn shared_metrics_are_visible_across_threads_while_running() {
        let shared = std::sync::Arc::new(SharedMetrics::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    for i in 0..25 {
                        shared.counter_inc("hits");
                        shared.observe_us("lat_us", t * 100 + i);
                    }
                    shared.gauge_set(&labeled("depth", "worker", &t.to_string()), t as f64);
                });
            }
        });
        // Readable without any park/merge handshake.
        assert_eq!(shared.counter_value("hits"), 100);
        assert_eq!(shared.gauge_value("depth{worker=3}"), Some(3.0));
        let snap = shared.snapshot();
        assert_eq!(snap.histogram("lat_us").unwrap().count, 100);

        // Folding the shared registry into the thread-local one unifies
        // shutdown reporting.
        reset();
        counter_add("hits", 1);
        merge(&snap);
        assert_eq!(counter_value("hits"), 101);
        reset();
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        reset();
        counter_inc("zebra");
        counter_inc("alpha");
        counter_inc("mid");
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zebra"]);
        assert_eq!(serde_json::to_string(&snapshot()), serde_json::to_string(&snapshot()));
    }
}
