//! Crash-safe file persistence.
//!
//! Every on-disk artifact of a campaign (database, checkpoint state, saved
//! models) goes through [`atomic_write`]: write a temporary sibling, fsync
//! it, then rename over the destination. A crash at any instant leaves
//! either the complete old file or the complete new file — never a
//! truncated hybrid — which is what makes killing a rounds run mid-write
//! recoverable.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces `path` with `contents`.
///
/// The temporary file lives in `path`'s directory (rename must not cross
/// filesystems) under a `.tmp` suffix, and is fsynced before the rename so
/// the data is durable before it becomes visible.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename; on error the destination is
/// untouched (a stale `.tmp` sibling may remain and is overwritten by the
/// next attempt).
pub fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    atomic_write_bytes(path, contents.as_bytes())
}

/// Atomically replaces `path` with raw `bytes` — the binary-artifact twin of
/// [`atomic_write`], with the same tmp-sibling + fsync + rename discipline.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename; on error the destination is
/// untouched.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("no file name in {}", path.display()))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);

    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join("gnn_dse_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.json");
        atomic_write(&path, "one").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "one");
        atomic_write(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(!path.with_file_name("f.json.tmp").exists(), "tmp file renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_pathless_target() {
        assert!(atomic_write(Path::new("/"), "x").is_err());
    }
}
