//! A named record for one oracle-validated design evaluation.
//!
//! [`Evaluated`] replaces the loose `(DesignPoint, HlsResult)` tuples that
//! used to flow between [`dse`](crate::dse), [`rounds`](crate::rounds) and
//! [`learn`](crate::learn): Pareto bookkeeping, the replay buffer and the
//! round reports now share one type that also remembers *when* a design was
//! evaluated (campaign epoch) and *how it scored* under the objective in
//! force at the time.

use design_space::DesignPoint;
use merlin_sim::HlsResult;
use serde::{Deserialize, Serialize};

use crate::objective::{Objective, Score};
use crate::pareto::{result_axes, AXES};

/// One validated design: the point, its oracle result, the campaign epoch
/// that produced it, and its score under the objective in force.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluated {
    /// The pragma configuration.
    pub point: DesignPoint,
    /// The oracle (HLS) result.
    pub result: HlsResult,
    /// Campaign epoch (DSE round) that validated this design; 0 for initial
    /// databases and standalone runs.
    #[serde(default)]
    pub epoch: usize,
    /// Snapshot of the objective's verdict at evaluation time.
    pub score: Score,
}

impl Evaluated {
    /// Records an evaluation, scoring it under `objective`.
    pub fn new(point: DesignPoint, result: HlsResult, epoch: usize, objective: &Objective) -> Self {
        let score = objective.score_result(&result);
        Self { point, result, epoch, score }
    }

    /// The five Pareto axes of the result (see
    /// [`result_axes`](crate::pareto::result_axes)).
    pub fn axes(&self) -> [f64; AXES] {
        result_axes(&self.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn evaluated_snapshots_the_objective_verdict() {
        let kernel = kernels::spmv_ellpack();
        let space = DesignSpace::from_kernel(&kernel);
        let point = space.default_point();
        let result = MerlinSimulator::new().evaluate(&kernel, &space, &point);
        let ev = Evaluated::new(point.clone(), result, 3, &Objective::latency());
        assert_eq!(ev.epoch, 3);
        assert_eq!(ev.axes()[0], result.cycles as f64);
        if result.is_valid() && result.util.fits(0.8) {
            assert_eq!(ev.score, Score::Cycles(result.cycles));
        } else {
            assert_eq!(ev.score, Score::Infeasible);
        }
        // Round-trips through serde (round reports persist fronts).
        let json = serde_json::to_string(&ev).unwrap();
        let back: Evaluated = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev);
    }
}
