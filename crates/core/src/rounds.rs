//! Iterative DSE + database augmentation (§4.4, Fig. 7).
//!
//! Each round trains the surrogate on the current database, runs DSE per
//! kernel, validates the top-M candidates with the HLS tool, and commits the
//! true results back into the database: mispredicted points are exactly the
//! ones that make the next round's model better.
//!
//! ## Resilience
//!
//! Validation runs through an [`EvalBackend`], so a fault-injected or
//! real-tool backend can lose candidates; a round **degrades gracefully** —
//! it commits the successful subset and records the losses in its
//! [`KernelRound::lost`] — instead of aborting the campaign.
//!
//! With a checkpoint path, the loop persists its complete state (database,
//! reports, carried model) in **one atomic file** after every round. A
//! killed run restarted with `resume = true` replays from the last round
//! boundary; because the loop itself is deterministic (seeded models,
//! stateless per-attempt fault decisions), the resumed run converges to a
//! byte-identical final database.
//!
//! ## Step-function form
//!
//! The loop is implemented as a resumable [`CampaignDriver`]: [`new`]
//! performs setup (or checkpoint resume), and each [`step`] runs exactly one
//! round and persists the checkpoint before returning. The run-to-completion
//! functions ([`run_rounds`], [`run_rounds_with`], [`run_rounds_with_engine`])
//! are thin wrappers that step the driver until it is done. A supervisor —
//! e.g. the continuous-learning daemon in [`crate::daemon`] — instead
//! interleaves steps with serving: publish an artifact after one step, wait,
//! step again. An optional [`ReplayBuffer`] attached to the driver collects
//! each round's freshly validated oracle results (deduplicated by canonical
//! config) and, when fine-tuning, replaces the whole-database fine-tune set
//! with the buffer's bounded recent window.
//!
//! [`new`]: CampaignDriver::new
//! [`step`]: CampaignDriver::step

use crate::db::Database;
use crate::dse::{run_dse_with_engine, DseConfig};
use crate::evaluated::Evaluated;
use crate::harness::EvalBackend;
use crate::inference::Predictor;
use crate::learn::ReplayBuffer;
use crate::pareto::ParetoArchive;
use crate::parallel::ExecEngine;
use crate::persist::atomic_write;
use crate::trainer::TrainConfig;
use design_space::DesignSpace;
use gdse_gnn::{ModelConfig, ModelKind};
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::MerlinSimulator;
use proggraph::ProgramGraph;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Configuration of the round loop.
#[derive(Debug, Clone)]
pub struct RoundsConfig {
    /// Number of DSE rounds (Fig. 7 shows 4).
    pub rounds: usize,
    /// Model variant to train (the paper uses M7).
    pub model: ModelKind,
    /// Model hyperparameters.
    pub model_cfg: ModelConfig,
    /// Training hyperparameters (retraining happens each round).
    pub train_cfg: TrainConfig,
    /// Per-kernel DSE limits.
    pub dse: DseConfig,
    /// Fine-tune the previous round's predictor on the augmented database
    /// instead of retraining from scratch (cheaper; the paper retrains).
    pub fine_tune: bool,
    /// With `initial_model` set *and* `fine_tune`, fine-tune the preloaded
    /// model in round 1 instead of serving it as-is. The daemon sets this:
    /// its round-1 artifact already serves traffic, so the first learning
    /// round should improve on it, not replay it.
    pub fine_tune_initial: bool,
    /// A pre-trained predictor (e.g. loaded from a `.gdse` artifact) used
    /// as-is for round 1 instead of training from scratch; later rounds
    /// retrain (or fine-tune) on the augmented database as usual. Ignored
    /// when resuming from a checkpoint — the checkpointed state wins.
    pub initial_model: Option<Predictor>,
    /// Abort (as if killed) after this many completed rounds — a test hook
    /// for exercising checkpoint/resume. `None` runs all rounds.
    pub stop_after: Option<usize>,
}

impl RoundsConfig {
    /// A fast configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            rounds: 2,
            model: ModelKind::Transformer,
            model_cfg: ModelConfig::small(),
            train_cfg: TrainConfig::quick().with_epochs(4),
            dse: DseConfig::quick(),
            fine_tune: false,
            fine_tune_initial: false,
            initial_model: None,
            stop_after: None,
        }
    }
}

/// Per-kernel outcome of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRound {
    /// Kernel name.
    pub kernel: String,
    /// Best valid cycles among DSE-found designs so far (across rounds).
    pub best_dse_cycles: Option<u64>,
    /// Best valid cycles in the *initial* database (the Fig. 7 reference).
    pub initial_best_cycles: u64,
    /// `initial_best / best_dse` — above 1.0 means the DSE beat the
    /// initial database.
    pub speedup: f64,
    /// Fresh evaluations committed to the database this round.
    pub added: usize,
    /// Top-M candidates this round whose validation was lost to tool
    /// failure (they are *not* committed and may be retried next round).
    pub lost: usize,
    /// Validated (tool-confirmed) Pareto front over this round's top
    /// candidates: mutually non-dominated over cycles + the four resource
    /// axes, feasible under the round's objective. Absent in pre-front
    /// checkpoints, hence the serde default.
    #[serde(default)]
    pub front: Vec<Evaluated>,
}

/// Outcome of one full round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round number (1-based, like DSE1..DSE4).
    pub round: usize,
    /// Per-kernel results.
    pub kernels: Vec<KernelRound>,
    /// Arithmetic mean of the per-kernel speedups (the Fig. 7 legend).
    pub avg_speedup: f64,
    /// Total validations lost to tool failure this round.
    pub lost: usize,
}

/// Why a checkpointed rounds run could not proceed.
#[derive(Debug)]
pub enum RoundsError {
    /// The checkpoint file could not be read/written.
    Io {
        /// The checkpoint file.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The checkpoint file exists but is not a usable checkpoint.
    Corrupt {
        /// The checkpoint file.
        path: PathBuf,
        /// What is wrong with it.
        detail: String,
    },
    /// The checkpoint belongs to a different campaign (kernel set mismatch).
    Mismatch {
        /// The checkpoint file.
        path: PathBuf,
        /// What does not line up.
        detail: String,
    },
}

impl fmt::Display for RoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundsError::Io { path, source } => {
                write!(f, "checkpoint I/O error on {}: {source}", path.display())
            }
            RoundsError::Corrupt { path, detail } => {
                write!(f, "{} is not a valid checkpoint: {detail}", path.display())
            }
            RoundsError::Mismatch { path, detail } => {
                write!(f, "checkpoint {} does not match this run: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for RoundsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoundsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Complete loop state at a round boundary. Serialized as a single document
/// so database, reports, and carried model can never go out of sync on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Checkpoint {
    /// The next round to run (1-based); `cfg.rounds + 1` when complete.
    next_round: usize,
    reports: Vec<RoundReport>,
    initial_best: Vec<(String, u64)>,
    best_dse: Vec<Option<u64>>,
    db: Database,
    carried_model: Option<Predictor>,
    /// Metric registry state at the round boundary: restored on resume so a
    /// resumed campaign's run report counts the whole campaign, not just the
    /// rounds after the crash.
    metrics: obs::MetricsSnapshot,
}

impl Checkpoint {
    fn load(path: &Path) -> Result<Self, RoundsError> {
        let json = std::fs::read_to_string(path)
            .map_err(|source| RoundsError::Io { path: path.to_path_buf(), source })?;
        let mut ck: Checkpoint = serde_json::from_str(&json)
            .map_err(|e| RoundsError::Corrupt { path: path.to_path_buf(), detail: e.to_string() })?;
        ck.db.rebuild_index();
        Ok(ck)
    }

    fn save(&self, path: &Path) -> Result<(), RoundsError> {
        let json = serde_json::to_string(self)
            .map_err(|e| RoundsError::Corrupt { path: path.to_path_buf(), detail: e.to_string() })?;
        atomic_write(path, &json)
            .map_err(|source| RoundsError::Io { path: path.to_path_buf(), source })
    }
}

/// The rounds loop as a resumable step function.
///
/// [`CampaignDriver::new`] performs all setup — design spaces, program
/// graphs, checkpoint resume or fresh-state derivation — and each
/// [`CampaignDriver::step`] runs exactly one round (train → DSE → validate →
/// commit → checkpoint). Between steps the campaign is fully at rest: the
/// checkpoint on disk is current, [`carried_model`] is the predictor the
/// round produced, and a supervisor thread is free to publish artifacts,
/// serve traffic, or sleep before stepping again.
///
/// [`carried_model`]: CampaignDriver::carried_model
pub struct CampaignDriver<'a, B: EvalBackend + Sync> {
    db: &'a mut Database,
    kernels: &'a [Kernel],
    cfg: &'a RoundsConfig,
    eval: &'a B,
    checkpoint: Option<&'a Path>,
    engine: &'a ExecEngine,
    spaces: Vec<DesignSpace>,
    graphs: Vec<ProgramGraph>,
    next_round: usize,
    reports: Vec<RoundReport>,
    initial_best: Vec<(String, u64)>,
    best_dse: Vec<Option<u64>>,
    carried: Option<Predictor>,
    replay: Option<ReplayBuffer>,
}

impl<'a, B: EvalBackend + Sync> CampaignDriver<'a, B> {
    /// Sets up a campaign over `kernels`, resuming from `checkpoint` when
    /// `resume` is set and the file exists.
    ///
    /// # Errors
    ///
    /// Checkpoint I/O, corruption, or kernel-set mismatch on resume.
    pub fn new(
        db: &'a mut Database,
        kernels: &'a [Kernel],
        cfg: &'a RoundsConfig,
        eval: &'a B,
        checkpoint: Option<&'a Path>,
        resume: bool,
        engine: &'a ExecEngine,
    ) -> Result<Self, RoundsError> {
        let (spaces, graphs) = {
            let _stage = obs::span::stage("setup");
            let spaces: Vec<DesignSpace> = kernels.iter().map(DesignSpace::from_kernel).collect();
            let graphs: Vec<_> = kernels
                .iter()
                .zip(&spaces)
                .map(|(k, s)| proggraph::build_graph_bidirectional(k, s))
                .collect();
            (spaces, graphs)
        };

        // Either resume the saved state or derive a fresh one from `db`.
        let resumed = match checkpoint {
            Some(path) if resume && path.exists() => {
                let ck = Checkpoint::load(path)?;
                let names: Vec<&str> = ck.initial_best.iter().map(|(n, _)| n.as_str()).collect();
                let expect: Vec<&str> = kernels.iter().map(|k| k.name()).collect();
                if names != expect {
                    return Err(RoundsError::Mismatch {
                        path: path.to_path_buf(),
                        detail: format!("checkpoint kernels {names:?}, requested {expect:?}"),
                    });
                }
                Some(ck)
            }
            _ => None,
        };

        let (mut next_round, reports, initial_best, best_dse, carried) = match resumed {
            Some(ck) => {
                *db = ck.db;
                // Replace (not merge) the registry: the snapshot already covers
                // everything the campaign did before the crash, so after the
                // remaining rounds the deterministic counters match an
                // uninterrupted run.
                obs::metrics::restore(&ck.metrics);
                obs::info!(
                    "rounds.resume",
                    "resuming at round {} of {}",
                    ck.next_round,
                    cfg.rounds;
                    next_round = ck.next_round,
                    rounds = cfg.rounds,
                );
                (ck.next_round, ck.reports, ck.initial_best, ck.best_dse, ck.carried_model)
            }
            None => {
                let initial_best: Vec<(String, u64)> = kernels
                    .iter()
                    .map(|k| {
                        let best = db
                            .best_design(k.name(), cfg.dse.util_threshold)
                            .map(|e| e.result.cycles)
                            .unwrap_or(u64::MAX);
                        (k.name().to_string(), best)
                    })
                    .collect();
                (
                    1,
                    Vec::with_capacity(cfg.rounds),
                    initial_best,
                    vec![None; kernels.len()],
                    // A preloaded model enters the loop as the carried state.
                    cfg.initial_model.clone(),
                )
            }
        };
        // A checkpoint from a run with more rounds than requested: nothing to do.
        next_round = next_round.min(cfg.rounds + 1);

        Ok(CampaignDriver {
            db,
            kernels,
            cfg,
            eval,
            checkpoint,
            engine,
            spaces,
            graphs,
            next_round,
            reports,
            initial_best,
            best_dse,
            carried,
            replay: None,
        })
    }

    /// Attaches a replay buffer: every freshly validated result committed by
    /// later steps is also recorded in the buffer (deduplicated by canonical
    /// config), and — when `fine_tune` is set — fine-tune rounds train on
    /// the buffer's bounded window instead of the whole database.
    pub fn attach_replay(&mut self, replay: ReplayBuffer) {
        self.replay = Some(replay);
    }

    /// The attached replay buffer, if any.
    pub fn replay(&self) -> Option<&ReplayBuffer> {
        self.replay.as_ref()
    }

    /// Detaches and returns the replay buffer, if one was attached.
    pub fn take_replay(&mut self) -> Option<ReplayBuffer> {
        self.replay.take()
    }

    /// Whether the campaign has run every configured round (or hit its
    /// `stop_after` test hook).
    pub fn is_done(&self) -> bool {
        self.next_round > self.cfg.rounds
            || self.cfg.stop_after.is_some_and(|n| self.next_round > n)
    }

    /// The next round [`step`] would run (1-based).
    ///
    /// [`step`]: CampaignDriver::step
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Reports of every completed round, oldest first.
    pub fn reports(&self) -> &[RoundReport] {
        &self.reports
    }

    /// The predictor the latest round produced (the model a daemon
    /// publishes). `None` before the first step unless a model was
    /// preloaded or resumed.
    pub fn carried_model(&self) -> Option<&Predictor> {
        self.carried.as_ref()
    }

    /// Consumes the driver, returning the accumulated round reports.
    pub fn into_reports(self) -> Vec<RoundReport> {
        self.reports
    }

    /// Runs exactly one round and checkpoints it. Returns the round's
    /// report, or `None` when the campaign is already done (nothing ran).
    ///
    /// # Errors
    ///
    /// Only checkpoint serialization/I/O errors; a driver without a
    /// checkpoint path never fails.
    pub fn step(&mut self) -> Result<Option<&RoundReport>, RoundsError> {
        if self.is_done() {
            return Ok(None);
        }
        let round = self.next_round;
        let cfg = self.cfg;
        let predictor = {
            let _stage = obs::span::stage("train");
            match self.carried.take() {
                // A preloaded artifact model serves round 1 exactly as
                // saved — no retraining, predictions byte-identical to the
                // model that wrote the artifact. (Resume never lands here:
                // checkpoints always store `next_round >= 2`.) The daemon
                // opts out via `fine_tune_initial`: its artifact already
                // serves traffic, so round 1 should learn, not replay.
                Some(p)
                    if round == 1
                        && cfg.initial_model.is_some()
                        && !(cfg.fine_tune && cfg.fine_tune_initial) =>
                {
                    p
                }
                Some(mut p) if cfg.fine_tune => {
                    // Fine-tune the carried model on the augmented database
                    // with a third of the full budget. With a replay buffer
                    // attached, the fine-tune set is the buffer's bounded,
                    // deduplicated window of validated results instead.
                    let ft_cfg = cfg.train_cfg.with_epochs((cfg.train_cfg.epochs / 3).max(2));
                    match &self.replay {
                        Some(buf) => {
                            let window = buf.as_database();
                            p.fine_tune(&window, self.kernels, &ft_cfg);
                        }
                        None => {
                            p.fine_tune(self.db, self.kernels, &ft_cfg);
                        }
                    }
                    p
                }
                _ => {
                    let (p, _) = Predictor::train(
                        self.db,
                        self.kernels,
                        cfg.model,
                        cfg.model_cfg
                            .clone()
                            .with_seed(cfg.model_cfg.seed.wrapping_add(round as u64)),
                        &cfg.train_cfg,
                    );
                    p
                }
            }
        };
        // The model just changed; predictions from the previous round's
        // model are stale.
        self.engine.clear_predictions();

        let objective = cfg.dse.effective_objective();
        let mut per_kernel = Vec::with_capacity(self.kernels.len());
        for (ki, kernel) in self.kernels.iter().enumerate() {
            let outcome = run_dse_with_engine(
                &predictor,
                kernel,
                &self.spaces[ki],
                &self.graphs[ki],
                &cfg.dse,
                self.engine,
            );
            let mut added = 0;
            let mut lost = 0;
            let _stage = obs::span::stage("validate");
            // Top-M candidates are distinct canonical points (the DSE
            // dedupes), so the not-yet-evaluated subset can be validated as
            // one parallel batch; committing in candidate order keeps the
            // database identical to the serial loop's. Lost candidates are
            // not committed and stay eligible next round.
            let missing: Vec<_> = outcome
                .top
                .iter()
                .map(|(p, _)| p.clone())
                .filter(|p| !self.db.contains(kernel.name(), p))
                .collect();
            let results = self.engine.evaluate_ordered(self.eval, kernel, &self.spaces[ki], &missing);
            for (point, result) in missing.iter().zip(results) {
                match result {
                    Ok(r) => {
                        self.db.insert(kernel.name(), point.clone(), r);
                        if let Some(buf) = self.replay.as_mut() {
                            let ev = Evaluated::new(point.clone(), r, round, &objective);
                            buf.record_evaluated(kernel.name(), &ev);
                        }
                        added += 1;
                    }
                    Err(_) => lost += 1,
                }
            }
            // The tool-confirmed view of this round's candidates: the best
            // scalar drives the Fig. 7 speedup, the Pareto archive keeps the
            // validated trade-off front (bounded; first-inserted wins ties).
            let mut archive: ParetoArchive<Evaluated> = ParetoArchive::new(64);
            for (point, _) in &outcome.top {
                if let Some(e) = self.db.get(kernel.name(), point) {
                    if objective.feasible_result(&e.result) {
                        let c = e.result.cycles;
                        self.best_dse[ki] =
                            Some(self.best_dse[ki].map_or(c, |b: u64| b.min(c)));
                        let ev = Evaluated::new(point.clone(), e.result, round, &objective);
                        archive.insert(ev.axes(), ev);
                    }
                }
            }
            let front: Vec<Evaluated> =
                archive.front().iter().map(|m| m.item.clone()).collect();
            obs::metrics::counter_add("rounds.designs_added", added as u64);
            obs::metrics::counter_add("rounds.validations_lost", lost as u64);
            obs::metrics::counter_add("rounds.front_points", front.len() as u64);
            let initial = self.initial_best[ki].1;
            let speedup = match self.best_dse[ki] {
                Some(b) if initial != u64::MAX => initial as f64 / b as f64,
                _ => 0.0,
            };
            per_kernel.push(KernelRound {
                kernel: kernel.name().to_string(),
                best_dse_cycles: self.best_dse[ki],
                initial_best_cycles: initial,
                speedup,
                added,
                lost,
                front,
            });
        }
        let avg = per_kernel.iter().map(|k| k.speedup).sum::<f64>() / per_kernel.len() as f64;
        let lost = per_kernel.iter().map(|k| k.lost).sum();
        let added: usize = per_kernel.iter().map(|k| k.added).sum();
        self.reports.push(RoundReport { round, kernels: per_kernel, avg_speedup: avg, lost });
        self.carried = Some(predictor);
        self.next_round = round + 1;
        obs::metrics::counter_inc("rounds.completed");
        obs::metrics::gauge_set("rounds.avg_speedup", avg);
        obs::info!(
            "rounds.round",
            "round {round}/{}: avg speedup {avg:.2}x, {added} designs added, {lost} lost",
            cfg.rounds;
            round = round,
            avg_speedup = avg,
            added = added,
            lost = lost,
        );

        if let Some(path) = self.checkpoint {
            let _stage = obs::span::stage("checkpoint");
            Checkpoint {
                next_round: round + 1,
                reports: self.reports.clone(),
                initial_best: self.initial_best.clone(),
                best_dse: self.best_dse.clone(),
                db: self.db.clone(),
                // The carried model only affects later rounds when
                // fine-tuning; skip the (large) serialization otherwise.
                carried_model: if cfg.fine_tune { self.carried.clone() } else { None },
                metrics: obs::metrics::snapshot(),
            }
            .save(path)?;
        }
        Ok(self.reports.last())
    }
}

/// Runs `cfg.rounds` rounds of train -> DSE -> validate -> augment over all
/// `kernels`, mutating `db` in place. Evaluates with the infallible
/// analytical simulator and no checkpointing — the original API.
pub fn run_rounds(db: &mut Database, kernels: &[Kernel], cfg: &RoundsConfig) -> Vec<RoundReport> {
    run_rounds_with(db, kernels, cfg, &MerlinSimulator::new(), None, false)
        .expect("rounds without a checkpoint path cannot fail")
}

/// [`run_rounds`] against an arbitrary evaluation backend, with optional
/// crash-safe checkpointing.
///
/// * `eval` — validation backend; lost candidates degrade the round instead
///   of aborting it.
/// * `checkpoint` — if set, the complete loop state is atomically persisted
///   to this file after every round.
/// * `resume` — if set and `checkpoint` names an existing file, the run
///   continues from it (replacing `db`'s contents with the checkpointed
///   database) instead of starting over.
///
/// # Errors
///
/// Only checkpoint I/O / validity errors; a run without a checkpoint path
/// never fails.
pub fn run_rounds_with<B: EvalBackend + Sync>(
    db: &mut Database,
    kernels: &[Kernel],
    cfg: &RoundsConfig,
    eval: &B,
    checkpoint: Option<&Path>,
    resume: bool,
) -> Result<Vec<RoundReport>, RoundsError> {
    run_rounds_with_engine(db, kernels, cfg, eval, checkpoint, resume, &ExecEngine::serial())
}

/// [`run_rounds_with`] on an execution engine: surrogate batches are
/// chunked across the engine's worker pool during DSE, and each round's
/// top-M validation runs as one parallel batch per kernel.
///
/// The engine's prediction cache is cleared at every retrain (stale
/// predictions from the previous round's model would otherwise leak in);
/// per-worker counters are folded back into the caller's registry, so the
/// run report is identical at any worker count. Resumed campaigns start
/// with empty caches — recomputing a prediction yields the same value a
/// cache hit would have, so resume stays byte-identical.
pub fn run_rounds_with_engine<B: EvalBackend + Sync>(
    db: &mut Database,
    kernels: &[Kernel],
    cfg: &RoundsConfig,
    eval: &B,
    checkpoint: Option<&Path>,
    resume: bool,
    engine: &ExecEngine,
) -> Result<Vec<RoundReport>, RoundsError> {
    let mut driver = CampaignDriver::new(db, kernels, cfg, eval, checkpoint, resume, engine)?;
    while driver.step()?.is_some() {}
    Ok(driver.into_reports())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{fault_injected_harness, generate_database};
    use crate::harness::RetryPolicy;
    use hls_ir::kernels;
    use merlin_sim::FaultConfig;

    #[test]
    fn fine_tuned_rounds_also_progress() {
        let ks = vec![kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("gemm-ncubed", 40)], 40, 51);
        let cfg = RoundsConfig { fine_tune: true, ..RoundsConfig::quick() };
        let reports = run_rounds(&mut db, &ks, &cfg);
        assert_eq!(reports.len(), 2);
        assert!(reports[1].avg_speedup >= reports[0].avg_speedup);
    }

    #[test]
    fn preloaded_round_one_model_is_identical_in_memory_or_from_artifact() {
        use crate::artifact::{decode_predictor, encode_predictor, ArtifactMeta};

        let ks = vec![kernels::spmv_ellpack()];
        let db0 = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let (p, _) = Predictor::train(
            &db0,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let meta = ArtifactMeta::describe(&p, &["spmv-ellpack".to_string()], 2);
        let bytes = encode_predictor(&p, &meta).unwrap();
        let (loaded, _) = decode_predictor(&bytes).unwrap();

        let mut db_mem = db0.clone();
        let mut db_loaded = db0.clone();
        let base = RoundsConfig { rounds: 1, ..RoundsConfig::quick() };
        let r_mem = run_rounds(
            &mut db_mem,
            &ks,
            &RoundsConfig { initial_model: Some(p), ..base.clone() },
        );
        let r_loaded = run_rounds(
            &mut db_loaded,
            &ks,
            &RoundsConfig { initial_model: Some(loaded), ..base },
        );
        assert_eq!(r_mem, r_loaded, "artifact round trip must not change the round");
        assert_eq!(db_mem.entries(), db_loaded.entries());
    }

    #[test]
    fn rounds_augment_the_database_and_improve() {
        let ks = vec![kernels::spmv_ellpack(), kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("spmv-ellpack", 30), ("gemm-ncubed", 50)], 40, 31);
        let before = db.len();
        let reports = run_rounds(&mut db, &ks, &RoundsConfig::quick());
        assert_eq!(reports.len(), 2);
        assert!(db.len() > before, "top designs must be committed");
        // Speedups should not regress across rounds (best-so-far is kept).
        for ks in reports.windows(2) {
            for (a, b) in ks[0].kernels.iter().zip(&ks[1].kernels) {
                assert!(b.speedup >= a.speedup - 1e-12, "{}: {} -> {}", a.kernel, a.speedup, b.speedup);
            }
        }
    }

    #[test]
    fn every_round_publishes_a_validated_front() {
        use crate::pareto::weakly_dominates;

        let ks = vec![kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("gemm-ncubed", 40)], 40, 51);
        let cfg = RoundsConfig::quick();
        let obj = cfg.dse.effective_objective();
        let reports = run_rounds(&mut db, &ks, &cfg);
        let mut saw_points = false;
        for rep in &reports {
            for kr in &rep.kernels {
                let axes: Vec<_> = kr.front.iter().map(Evaluated::axes).collect();
                for (i, ev) in kr.front.iter().enumerate() {
                    saw_points = true;
                    assert!(obj.feasible_result(&ev.result), "front members are feasible");
                    assert_eq!(ev.epoch, rep.round, "front members carry their round");
                    for (j, other) in axes.iter().enumerate() {
                        if i != j {
                            assert!(
                                !weakly_dominates(other, &axes[i]),
                                "round {} front must be mutually non-dominated",
                                rep.round
                            );
                        }
                    }
                }
            }
        }
        assert!(saw_points, "a healthy campaign publishes at least one front point");
    }

    #[test]
    fn degraded_rounds_commit_the_successful_subset() {
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let before = db.len();
        // Heavy fault rate and no retries so some top-M validations are lost.
        let h = fault_injected_harness(
            FaultConfig::uniform(0.6, 3),
            RetryPolicy::with_max_retries(0),
        );
        let reports =
            run_rounds_with(&mut db, &ks, &RoundsConfig::quick(), &h, None, false).unwrap();
        assert_eq!(reports.len(), 2, "every round must complete despite losses");
        let total_lost: usize = reports.iter().map(|r| r.lost).sum();
        let total_added: usize =
            reports.iter().flat_map(|r| &r.kernels).map(|k| k.added).sum();
        assert!(total_lost > 0, "60% faults with no retries must lose candidates");
        assert_eq!(db.len(), before + total_added, "only successes are committed");
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join("gnn_dse_rounds_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ks = vec![kernels::spmv_ellpack()];
        let base_db = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let cfg = RoundsConfig { rounds: 3, ..RoundsConfig::quick() };
        let sim = MerlinSimulator::new();

        // Uninterrupted run.
        let full_ck = dir.join("full.json");
        std::fs::remove_file(&full_ck).ok();
        let mut db_full = base_db.clone();
        let full_reports =
            run_rounds_with(&mut db_full, &ks, &cfg, &sim, Some(&full_ck), false).unwrap();

        // Killed after round 1, then resumed.
        let part_ck = dir.join("part.json");
        std::fs::remove_file(&part_ck).ok();
        let mut db_killed = base_db.clone();
        let killed_cfg = RoundsConfig { stop_after: Some(1), ..cfg.clone() };
        let partial =
            run_rounds_with(&mut db_killed, &ks, &killed_cfg, &sim, Some(&part_ck), false)
                .unwrap();
        assert_eq!(partial.len(), 1);

        let mut db_resumed = base_db.clone(); // stale copy, as after a crash
        let resumed_reports =
            run_rounds_with(&mut db_resumed, &ks, &cfg, &sim, Some(&part_ck), true).unwrap();

        assert_eq!(resumed_reports, full_reports);
        let out_full = dir.join("db_full.json");
        let out_resumed = dir.join("db_resumed.json");
        db_full.save(&out_full).unwrap();
        db_resumed.save(&out_resumed).unwrap();
        assert_eq!(
            std::fs::read(&out_full).unwrap(),
            std::fs::read(&out_resumed).unwrap(),
            "resumed database must be byte-identical to the uninterrupted one"
        );
        for f in [&full_ck, &part_ck, &out_full, &out_resumed] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn resume_rejects_mismatched_kernels() {
        let dir = std::env::temp_dir().join("gnn_dse_rounds_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("ck.json");
        std::fs::remove_file(&ck).ok();
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[], 30, 31);
        let cfg = RoundsConfig { rounds: 1, ..RoundsConfig::quick() };
        let sim = MerlinSimulator::new();
        run_rounds_with(&mut db, &ks, &cfg, &sim, Some(&ck), false).unwrap();

        let other = vec![kernels::gemm_ncubed()];
        let mut db2 = generate_database(&other, &[], 30, 31);
        let err = run_rounds_with(&mut db2, &other, &cfg, &sim, Some(&ck), true).unwrap_err();
        assert!(matches!(err, RoundsError::Mismatch { .. }), "got {err}");
        std::fs::remove_file(&ck).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = std::env::temp_dir().join("gnn_dse_rounds_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("bad.json");
        std::fs::write(&ck, "not a checkpoint").unwrap();
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[], 20, 31);
        let err = run_rounds_with(
            &mut db,
            &ks,
            &RoundsConfig::quick(),
            &MerlinSimulator::new(),
            Some(&ck),
            true,
        )
        .unwrap_err();
        assert!(matches!(err, RoundsError::Corrupt { .. }), "got {err}");
        std::fs::remove_file(&ck).ok();
    }

    #[test]
    fn stepwise_driver_matches_run_to_completion() {
        let ks = vec![kernels::spmv_ellpack()];
        let base_db = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let cfg = RoundsConfig::quick();
        let sim = MerlinSimulator::new();
        let engine = ExecEngine::serial();

        let mut db_loop = base_db.clone();
        let loop_reports = run_rounds(&mut db_loop, &ks, &cfg);

        let mut db_step = base_db.clone();
        let mut driver =
            CampaignDriver::new(&mut db_step, &ks, &cfg, &sim, None, false, &engine).unwrap();
        assert_eq!(driver.next_round(), 1);
        assert!(!driver.is_done());
        let mut stepped = 0;
        while let Some(report) = driver.step().unwrap() {
            stepped += 1;
            assert_eq!(report.round, stepped);
            assert!(driver.carried_model().is_some(), "each step leaves a publishable model");
        }
        assert!(driver.is_done());
        assert_eq!(stepped, cfg.rounds);
        // A step past the end is a no-op, not an error.
        assert!(driver.step().unwrap().is_none());
        let step_reports = driver.into_reports();

        assert_eq!(step_reports, loop_reports, "stepping must equal the loop");
        assert_eq!(db_step.entries(), db_loop.entries());
    }

    #[test]
    fn driver_records_validated_results_in_an_attached_replay_buffer() {
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let before = db.len();
        let cfg = RoundsConfig { fine_tune: true, ..RoundsConfig::quick() };
        let sim = MerlinSimulator::new();
        let engine = ExecEngine::serial();
        let mut driver =
            CampaignDriver::new(&mut db, &ks, &cfg, &sim, None, false, &engine).unwrap();
        driver.attach_replay(ReplayBuffer::new(64));
        while driver.step().unwrap().is_some() {}
        let buf = driver.take_replay().expect("buffer stays attached");
        drop(driver);
        let added = db.len() - before;
        assert_eq!(buf.len(), added, "every committed validation lands in the buffer once");
        assert_eq!(buf.as_database().len(), buf.len());
    }
}
