//! Iterative DSE + database augmentation (§4.4, Fig. 7).
//!
//! Each round trains the surrogate on the current database, runs DSE per
//! kernel, validates the top-M candidates with the HLS tool, and commits the
//! true results back into the database: mispredicted points are exactly the
//! ones that make the next round's model better.

use crate::db::Database;
use crate::dse::{run_dse_with_graph, DseConfig};
use crate::inference::Predictor;
use crate::trainer::TrainConfig;
use design_space::DesignSpace;
use gdse_gnn::{ModelConfig, ModelKind};
use hls_ir::Kernel;
use merlin_sim::MerlinSimulator;
use proggraph::build_graph_bidirectional;
use serde::{Deserialize, Serialize};

/// Configuration of the round loop.
#[derive(Debug, Clone)]
pub struct RoundsConfig {
    /// Number of DSE rounds (Fig. 7 shows 4).
    pub rounds: usize,
    /// Model variant to train (the paper uses M7).
    pub model: ModelKind,
    /// Model hyperparameters.
    pub model_cfg: ModelConfig,
    /// Training hyperparameters (retraining happens each round).
    pub train_cfg: TrainConfig,
    /// Per-kernel DSE limits.
    pub dse: DseConfig,
    /// Fine-tune the previous round's predictor on the augmented database
    /// instead of retraining from scratch (cheaper; the paper retrains).
    pub fine_tune: bool,
}

impl RoundsConfig {
    /// A fast configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            rounds: 2,
            model: ModelKind::Transformer,
            model_cfg: ModelConfig::small(),
            train_cfg: TrainConfig::quick().with_epochs(4),
            dse: DseConfig::quick(),
            fine_tune: false,
        }
    }
}

/// Per-kernel outcome of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRound {
    /// Kernel name.
    pub kernel: String,
    /// Best valid cycles among DSE-found designs so far (across rounds).
    pub best_dse_cycles: Option<u64>,
    /// Best valid cycles in the *initial* database (the Fig. 7 reference).
    pub initial_best_cycles: u64,
    /// `initial_best / best_dse` — above 1.0 means the DSE beat the
    /// initial database.
    pub speedup: f64,
    /// Fresh evaluations committed to the database this round.
    pub added: usize,
}

/// Outcome of one full round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round number (1-based, like DSE1..DSE4).
    pub round: usize,
    /// Per-kernel results.
    pub kernels: Vec<KernelRound>,
    /// Arithmetic mean of the per-kernel speedups (the Fig. 7 legend).
    pub avg_speedup: f64,
}

/// Runs `cfg.rounds` rounds of train -> DSE -> validate -> augment over all
/// `kernels`, mutating `db` in place.
pub fn run_rounds(db: &mut Database, kernels: &[Kernel], cfg: &RoundsConfig) -> Vec<RoundReport> {
    let sim = MerlinSimulator::new();
    let initial_best: Vec<(String, u64)> = kernels
        .iter()
        .map(|k| {
            let best = db
                .best_design(k.name(), cfg.dse.util_threshold)
                .map(|e| e.result.cycles)
                .unwrap_or(u64::MAX);
            (k.name().to_string(), best)
        })
        .collect();
    let spaces: Vec<DesignSpace> = kernels.iter().map(DesignSpace::from_kernel).collect();
    let graphs: Vec<_> = kernels
        .iter()
        .zip(&spaces)
        .map(|(k, s)| build_graph_bidirectional(k, s))
        .collect();

    let mut best_dse: Vec<Option<u64>> = vec![None; kernels.len()];
    let mut reports = Vec::with_capacity(cfg.rounds);
    let mut carried: Option<Predictor> = None;

    for round in 1..=cfg.rounds {
        let predictor = match carried.take() {
            Some(mut p) if cfg.fine_tune => {
                // Fine-tune the carried model on the augmented database with
                // a third of the full budget.
                let ft_cfg = cfg.train_cfg.with_epochs((cfg.train_cfg.epochs / 3).max(2));
                p.fine_tune(db, kernels, &ft_cfg);
                p
            }
            _ => {
                let (p, _) = Predictor::train(
                    db,
                    kernels,
                    cfg.model,
                    cfg.model_cfg
                        .clone()
                        .with_seed(cfg.model_cfg.seed.wrapping_add(round as u64)),
                    &cfg.train_cfg,
                );
                p
            }
        };

        let mut per_kernel = Vec::with_capacity(kernels.len());
        for (ki, kernel) in kernels.iter().enumerate() {
            let outcome =
                run_dse_with_graph(&predictor, kernel, &spaces[ki], &graphs[ki], &cfg.dse);
            let mut added = 0;
            for (point, _) in &outcome.top {
                if !db.contains(kernel.name(), point) {
                    let r = sim.evaluate(kernel, &spaces[ki], point);
                    db.insert(kernel.name(), point.clone(), r);
                    added += 1;
                }
                if let Some(e) = db.get(kernel.name(), point) {
                    if e.result.is_valid() && e.result.util.fits(cfg.dse.util_threshold) {
                        let c = e.result.cycles;
                        best_dse[ki] =
                            Some(best_dse[ki].map_or(c, |b: u64| b.min(c)));
                    }
                }
            }
            let initial = initial_best[ki].1;
            let speedup = match best_dse[ki] {
                Some(b) if initial != u64::MAX => initial as f64 / b as f64,
                _ => 0.0,
            };
            per_kernel.push(KernelRound {
                kernel: kernel.name().to_string(),
                best_dse_cycles: best_dse[ki],
                initial_best_cycles: initial,
                speedup,
                added,
            });
        }
        let avg = per_kernel.iter().map(|k| k.speedup).sum::<f64>() / per_kernel.len() as f64;
        reports.push(RoundReport { round, kernels: per_kernel, avg_speedup: avg });
        carried = Some(predictor);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use hls_ir::kernels;

    #[test]
    fn fine_tuned_rounds_also_progress() {
        let ks = vec![kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("gemm-ncubed", 40)], 40, 51);
        let cfg = RoundsConfig { fine_tune: true, ..RoundsConfig::quick() };
        let reports = run_rounds(&mut db, &ks, &cfg);
        assert_eq!(reports.len(), 2);
        assert!(reports[1].avg_speedup >= reports[0].avg_speedup);
    }

    #[test]
    fn rounds_augment_the_database_and_improve() {
        let ks = vec![kernels::spmv_ellpack(), kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("spmv-ellpack", 30), ("gemm-ncubed", 50)], 40, 31);
        let before = db.len();
        let reports = run_rounds(&mut db, &ks, &RoundsConfig::quick());
        assert_eq!(reports.len(), 2);
        assert!(db.len() > before, "top designs must be committed");
        // Speedups should not regress across rounds (best-so-far is kept).
        for ks in reports.windows(2) {
            for (a, b) in ks[0].kernels.iter().zip(&ks[1].kernels) {
                assert!(b.speedup >= a.speedup - 1e-12, "{}: {} -> {}", a.kernel, a.speedup, b.speedup);
            }
        }
    }
}
