//! Iterative DSE + database augmentation (§4.4, Fig. 7).
//!
//! Each round trains the surrogate on the current database, runs DSE per
//! kernel, validates the top-M candidates with the HLS tool, and commits the
//! true results back into the database: mispredicted points are exactly the
//! ones that make the next round's model better.
//!
//! ## Resilience
//!
//! Validation runs through an [`EvalBackend`], so a fault-injected or
//! real-tool backend can lose candidates; a round **degrades gracefully** —
//! it commits the successful subset and records the losses in its
//! [`KernelRound::lost`] — instead of aborting the campaign.
//!
//! With a checkpoint path, the loop persists its complete state (database,
//! reports, carried model) in **one atomic file** after every round. A
//! killed run restarted with `resume = true` replays from the last round
//! boundary; because the loop itself is deterministic (seeded models,
//! stateless per-attempt fault decisions), the resumed run converges to a
//! byte-identical final database.

use crate::db::Database;
use crate::dse::{run_dse_with_engine, DseConfig};
use crate::harness::EvalBackend;
use crate::inference::Predictor;
use crate::parallel::ExecEngine;
use crate::persist::atomic_write;
use crate::trainer::TrainConfig;
use design_space::DesignSpace;
use gdse_gnn::{ModelConfig, ModelKind};
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::MerlinSimulator;
use proggraph::build_graph_bidirectional;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Configuration of the round loop.
#[derive(Debug, Clone)]
pub struct RoundsConfig {
    /// Number of DSE rounds (Fig. 7 shows 4).
    pub rounds: usize,
    /// Model variant to train (the paper uses M7).
    pub model: ModelKind,
    /// Model hyperparameters.
    pub model_cfg: ModelConfig,
    /// Training hyperparameters (retraining happens each round).
    pub train_cfg: TrainConfig,
    /// Per-kernel DSE limits.
    pub dse: DseConfig,
    /// Fine-tune the previous round's predictor on the augmented database
    /// instead of retraining from scratch (cheaper; the paper retrains).
    pub fine_tune: bool,
    /// A pre-trained predictor (e.g. loaded from a `.gdse` artifact) used
    /// as-is for round 1 instead of training from scratch; later rounds
    /// retrain (or fine-tune) on the augmented database as usual. Ignored
    /// when resuming from a checkpoint — the checkpointed state wins.
    pub initial_model: Option<Predictor>,
    /// Abort (as if killed) after this many completed rounds — a test hook
    /// for exercising checkpoint/resume. `None` runs all rounds.
    pub stop_after: Option<usize>,
}

impl RoundsConfig {
    /// A fast configuration for tests and examples.
    pub fn quick() -> Self {
        Self {
            rounds: 2,
            model: ModelKind::Transformer,
            model_cfg: ModelConfig::small(),
            train_cfg: TrainConfig::quick().with_epochs(4),
            dse: DseConfig::quick(),
            fine_tune: false,
            initial_model: None,
            stop_after: None,
        }
    }
}

/// Per-kernel outcome of one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRound {
    /// Kernel name.
    pub kernel: String,
    /// Best valid cycles among DSE-found designs so far (across rounds).
    pub best_dse_cycles: Option<u64>,
    /// Best valid cycles in the *initial* database (the Fig. 7 reference).
    pub initial_best_cycles: u64,
    /// `initial_best / best_dse` — above 1.0 means the DSE beat the
    /// initial database.
    pub speedup: f64,
    /// Fresh evaluations committed to the database this round.
    pub added: usize,
    /// Top-M candidates this round whose validation was lost to tool
    /// failure (they are *not* committed and may be retried next round).
    pub lost: usize,
}

/// Outcome of one full round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round number (1-based, like DSE1..DSE4).
    pub round: usize,
    /// Per-kernel results.
    pub kernels: Vec<KernelRound>,
    /// Arithmetic mean of the per-kernel speedups (the Fig. 7 legend).
    pub avg_speedup: f64,
    /// Total validations lost to tool failure this round.
    pub lost: usize,
}

/// Why a checkpointed rounds run could not proceed.
#[derive(Debug)]
pub enum RoundsError {
    /// The checkpoint file could not be read/written.
    Io {
        /// The checkpoint file.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The checkpoint file exists but is not a usable checkpoint.
    Corrupt {
        /// The checkpoint file.
        path: PathBuf,
        /// What is wrong with it.
        detail: String,
    },
    /// The checkpoint belongs to a different campaign (kernel set mismatch).
    Mismatch {
        /// The checkpoint file.
        path: PathBuf,
        /// What does not line up.
        detail: String,
    },
}

impl fmt::Display for RoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoundsError::Io { path, source } => {
                write!(f, "checkpoint I/O error on {}: {source}", path.display())
            }
            RoundsError::Corrupt { path, detail } => {
                write!(f, "{} is not a valid checkpoint: {detail}", path.display())
            }
            RoundsError::Mismatch { path, detail } => {
                write!(f, "checkpoint {} does not match this run: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for RoundsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RoundsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Complete loop state at a round boundary. Serialized as a single document
/// so database, reports, and carried model can never go out of sync on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Checkpoint {
    /// The next round to run (1-based); `cfg.rounds + 1` when complete.
    next_round: usize,
    reports: Vec<RoundReport>,
    initial_best: Vec<(String, u64)>,
    best_dse: Vec<Option<u64>>,
    db: Database,
    carried_model: Option<Predictor>,
    /// Metric registry state at the round boundary: restored on resume so a
    /// resumed campaign's run report counts the whole campaign, not just the
    /// rounds after the crash.
    metrics: obs::MetricsSnapshot,
}

impl Checkpoint {
    fn load(path: &Path) -> Result<Self, RoundsError> {
        let json = std::fs::read_to_string(path)
            .map_err(|source| RoundsError::Io { path: path.to_path_buf(), source })?;
        let mut ck: Checkpoint = serde_json::from_str(&json)
            .map_err(|e| RoundsError::Corrupt { path: path.to_path_buf(), detail: e.to_string() })?;
        ck.db.rebuild_index();
        Ok(ck)
    }

    fn save(&self, path: &Path) -> Result<(), RoundsError> {
        let json = serde_json::to_string(self)
            .map_err(|e| RoundsError::Corrupt { path: path.to_path_buf(), detail: e.to_string() })?;
        atomic_write(path, &json)
            .map_err(|source| RoundsError::Io { path: path.to_path_buf(), source })
    }
}

/// Runs `cfg.rounds` rounds of train -> DSE -> validate -> augment over all
/// `kernels`, mutating `db` in place. Evaluates with the infallible
/// analytical simulator and no checkpointing — the original API.
pub fn run_rounds(db: &mut Database, kernels: &[Kernel], cfg: &RoundsConfig) -> Vec<RoundReport> {
    run_rounds_with(db, kernels, cfg, &MerlinSimulator::new(), None, false)
        .expect("rounds without a checkpoint path cannot fail")
}

/// [`run_rounds`] against an arbitrary evaluation backend, with optional
/// crash-safe checkpointing.
///
/// * `eval` — validation backend; lost candidates degrade the round instead
///   of aborting it.
/// * `checkpoint` — if set, the complete loop state is atomically persisted
///   to this file after every round.
/// * `resume` — if set and `checkpoint` names an existing file, the run
///   continues from it (replacing `db`'s contents with the checkpointed
///   database) instead of starting over.
///
/// # Errors
///
/// Only checkpoint I/O / validity errors; a run without a checkpoint path
/// never fails.
pub fn run_rounds_with<B: EvalBackend + Sync>(
    db: &mut Database,
    kernels: &[Kernel],
    cfg: &RoundsConfig,
    eval: &B,
    checkpoint: Option<&Path>,
    resume: bool,
) -> Result<Vec<RoundReport>, RoundsError> {
    run_rounds_with_engine(db, kernels, cfg, eval, checkpoint, resume, &ExecEngine::serial())
}

/// [`run_rounds_with`] on an execution engine: surrogate batches are
/// chunked across the engine's worker pool during DSE, and each round's
/// top-M validation runs as one parallel batch per kernel.
///
/// The engine's prediction cache is cleared at every retrain (stale
/// predictions from the previous round's model would otherwise leak in);
/// per-worker counters are folded back into the caller's registry, so the
/// run report is identical at any worker count. Resumed campaigns start
/// with empty caches — recomputing a prediction yields the same value a
/// cache hit would have, so resume stays byte-identical.
pub fn run_rounds_with_engine<B: EvalBackend + Sync>(
    db: &mut Database,
    kernels: &[Kernel],
    cfg: &RoundsConfig,
    eval: &B,
    checkpoint: Option<&Path>,
    resume: bool,
    engine: &ExecEngine,
) -> Result<Vec<RoundReport>, RoundsError> {
    let (spaces, graphs) = {
        let _stage = obs::span::stage("setup");
        let spaces: Vec<DesignSpace> = kernels.iter().map(DesignSpace::from_kernel).collect();
        let graphs: Vec<_> = kernels
            .iter()
            .zip(&spaces)
            .map(|(k, s)| build_graph_bidirectional(k, s))
            .collect();
        (spaces, graphs)
    };

    // Either resume the saved state or derive a fresh one from `db`.
    let resumed = match checkpoint {
        Some(path) if resume && path.exists() => {
            let ck = Checkpoint::load(path)?;
            let names: Vec<&str> = ck.initial_best.iter().map(|(n, _)| n.as_str()).collect();
            let expect: Vec<&str> = kernels.iter().map(|k| k.name()).collect();
            if names != expect {
                return Err(RoundsError::Mismatch {
                    path: path.to_path_buf(),
                    detail: format!("checkpoint kernels {names:?}, requested {expect:?}"),
                });
            }
            Some(ck)
        }
        _ => None,
    };

    let (mut start_round, mut reports, initial_best, mut best_dse, mut carried) = match resumed {
        Some(ck) => {
            *db = ck.db;
            // Replace (not merge) the registry: the snapshot already covers
            // everything the campaign did before the crash, so after the
            // remaining rounds the deterministic counters match an
            // uninterrupted run.
            obs::metrics::restore(&ck.metrics);
            obs::info!(
                "rounds.resume",
                "resuming at round {} of {}",
                ck.next_round,
                cfg.rounds;
                next_round = ck.next_round,
                rounds = cfg.rounds,
            );
            (ck.next_round, ck.reports, ck.initial_best, ck.best_dse, ck.carried_model)
        }
        None => {
            let initial_best: Vec<(String, u64)> = kernels
                .iter()
                .map(|k| {
                    let best = db
                        .best_design(k.name(), cfg.dse.util_threshold)
                        .map(|e| e.result.cycles)
                        .unwrap_or(u64::MAX);
                    (k.name().to_string(), best)
                })
                .collect();
            (
                1,
                Vec::with_capacity(cfg.rounds),
                initial_best,
                vec![None; kernels.len()],
                // A preloaded model enters the loop as the carried state.
                cfg.initial_model.clone(),
            )
        }
    };
    // A checkpoint from a run with more rounds than requested: nothing to do.
    start_round = start_round.min(cfg.rounds + 1);

    for round in start_round..=cfg.rounds {
        let predictor = {
            let _stage = obs::span::stage("train");
            match carried.take() {
                // A preloaded artifact model serves round 1 exactly as
                // saved — no retraining, predictions byte-identical to the
                // model that wrote the artifact. (Resume never lands here:
                // checkpoints always store `next_round >= 2`.)
                Some(p) if round == 1 && cfg.initial_model.is_some() => p,
                Some(mut p) if cfg.fine_tune => {
                    // Fine-tune the carried model on the augmented database
                    // with a third of the full budget.
                    let ft_cfg = cfg.train_cfg.with_epochs((cfg.train_cfg.epochs / 3).max(2));
                    p.fine_tune(db, kernels, &ft_cfg);
                    p
                }
                _ => {
                    let (p, _) = Predictor::train(
                        db,
                        kernels,
                        cfg.model,
                        cfg.model_cfg
                            .clone()
                            .with_seed(cfg.model_cfg.seed.wrapping_add(round as u64)),
                        &cfg.train_cfg,
                    );
                    p
                }
            }
        };
        // The model just changed; predictions from the previous round's
        // model are stale.
        engine.clear_predictions();

        let mut per_kernel = Vec::with_capacity(kernels.len());
        for (ki, kernel) in kernels.iter().enumerate() {
            let outcome =
                run_dse_with_engine(&predictor, kernel, &spaces[ki], &graphs[ki], &cfg.dse, engine);
            let mut added = 0;
            let mut lost = 0;
            let _stage = obs::span::stage("validate");
            // Top-M candidates are distinct canonical points (the DSE
            // dedupes), so the not-yet-evaluated subset can be validated as
            // one parallel batch; committing in candidate order keeps the
            // database identical to the serial loop's. Lost candidates are
            // not committed and stay eligible next round.
            let missing: Vec<_> = outcome
                .top
                .iter()
                .map(|(p, _)| p.clone())
                .filter(|p| !db.contains(kernel.name(), p))
                .collect();
            let results = engine.evaluate_ordered(eval, kernel, &spaces[ki], &missing);
            for (point, result) in missing.iter().zip(results) {
                match result {
                    Ok(r) => {
                        db.insert(kernel.name(), point.clone(), r);
                        added += 1;
                    }
                    Err(_) => lost += 1,
                }
            }
            for (point, _) in &outcome.top {
                if let Some(e) = db.get(kernel.name(), point) {
                    if e.result.is_valid() && e.result.util.fits(cfg.dse.util_threshold) {
                        let c = e.result.cycles;
                        best_dse[ki] =
                            Some(best_dse[ki].map_or(c, |b: u64| b.min(c)));
                    }
                }
            }
            obs::metrics::counter_add("rounds.designs_added", added as u64);
            obs::metrics::counter_add("rounds.validations_lost", lost as u64);
            let initial = initial_best[ki].1;
            let speedup = match best_dse[ki] {
                Some(b) if initial != u64::MAX => initial as f64 / b as f64,
                _ => 0.0,
            };
            per_kernel.push(KernelRound {
                kernel: kernel.name().to_string(),
                best_dse_cycles: best_dse[ki],
                initial_best_cycles: initial,
                speedup,
                added,
                lost,
            });
        }
        let avg = per_kernel.iter().map(|k| k.speedup).sum::<f64>() / per_kernel.len() as f64;
        let lost = per_kernel.iter().map(|k| k.lost).sum();
        let added: usize = per_kernel.iter().map(|k| k.added).sum();
        reports.push(RoundReport { round, kernels: per_kernel, avg_speedup: avg, lost });
        carried = Some(predictor);
        obs::metrics::counter_inc("rounds.completed");
        obs::metrics::gauge_set("rounds.avg_speedup", avg);
        obs::info!(
            "rounds.round",
            "round {round}/{}: avg speedup {avg:.2}x, {added} designs added, {lost} lost",
            cfg.rounds;
            round = round,
            avg_speedup = avg,
            added = added,
            lost = lost,
        );

        if let Some(path) = checkpoint {
            let _stage = obs::span::stage("checkpoint");
            Checkpoint {
                next_round: round + 1,
                reports: reports.clone(),
                initial_best: initial_best.clone(),
                best_dse: best_dse.clone(),
                db: db.clone(),
                // The carried model only affects later rounds when
                // fine-tuning; skip the (large) serialization otherwise.
                carried_model: if cfg.fine_tune { carried.clone() } else { None },
                metrics: obs::metrics::snapshot(),
            }
            .save(path)?;
        }

        if cfg.stop_after.is_some_and(|n| round >= n) {
            // Simulated kill: return what completed, like a real crash
            // would leave behind (the checkpoint, if any, is already
            // written).
            break;
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{fault_injected_harness, generate_database};
    use crate::harness::RetryPolicy;
    use hls_ir::kernels;
    use merlin_sim::FaultConfig;

    #[test]
    fn fine_tuned_rounds_also_progress() {
        let ks = vec![kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("gemm-ncubed", 40)], 40, 51);
        let cfg = RoundsConfig { fine_tune: true, ..RoundsConfig::quick() };
        let reports = run_rounds(&mut db, &ks, &cfg);
        assert_eq!(reports.len(), 2);
        assert!(reports[1].avg_speedup >= reports[0].avg_speedup);
    }

    #[test]
    fn preloaded_round_one_model_is_identical_in_memory_or_from_artifact() {
        use crate::artifact::{decode_predictor, encode_predictor, ArtifactMeta};

        let ks = vec![kernels::spmv_ellpack()];
        let db0 = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let (p, _) = Predictor::train(
            &db0,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let meta = ArtifactMeta::describe(&p, &["spmv-ellpack".to_string()], 2);
        let bytes = encode_predictor(&p, &meta).unwrap();
        let (loaded, _) = decode_predictor(&bytes).unwrap();

        let mut db_mem = db0.clone();
        let mut db_loaded = db0.clone();
        let base = RoundsConfig { rounds: 1, ..RoundsConfig::quick() };
        let r_mem = run_rounds(
            &mut db_mem,
            &ks,
            &RoundsConfig { initial_model: Some(p), ..base.clone() },
        );
        let r_loaded = run_rounds(
            &mut db_loaded,
            &ks,
            &RoundsConfig { initial_model: Some(loaded), ..base },
        );
        assert_eq!(r_mem, r_loaded, "artifact round trip must not change the round");
        assert_eq!(db_mem.entries(), db_loaded.entries());
    }

    #[test]
    fn rounds_augment_the_database_and_improve() {
        let ks = vec![kernels::spmv_ellpack(), kernels::gemm_ncubed()];
        let mut db = generate_database(&ks, &[("spmv-ellpack", 30), ("gemm-ncubed", 50)], 40, 31);
        let before = db.len();
        let reports = run_rounds(&mut db, &ks, &RoundsConfig::quick());
        assert_eq!(reports.len(), 2);
        assert!(db.len() > before, "top designs must be committed");
        // Speedups should not regress across rounds (best-so-far is kept).
        for ks in reports.windows(2) {
            for (a, b) in ks[0].kernels.iter().zip(&ks[1].kernels) {
                assert!(b.speedup >= a.speedup - 1e-12, "{}: {} -> {}", a.kernel, a.speedup, b.speedup);
            }
        }
    }

    #[test]
    fn degraded_rounds_commit_the_successful_subset() {
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let before = db.len();
        // Heavy fault rate and no retries so some top-M validations are lost.
        let h = fault_injected_harness(
            FaultConfig::uniform(0.6, 3),
            RetryPolicy::with_max_retries(0),
        );
        let reports =
            run_rounds_with(&mut db, &ks, &RoundsConfig::quick(), &h, None, false).unwrap();
        assert_eq!(reports.len(), 2, "every round must complete despite losses");
        let total_lost: usize = reports.iter().map(|r| r.lost).sum();
        let total_added: usize =
            reports.iter().flat_map(|r| &r.kernels).map(|k| k.added).sum();
        assert!(total_lost > 0, "60% faults with no retries must lose candidates");
        assert_eq!(db.len(), before + total_added, "only successes are committed");
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join("gnn_dse_rounds_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ks = vec![kernels::spmv_ellpack()];
        let base_db = generate_database(&ks, &[("spmv-ellpack", 30)], 30, 31);
        let cfg = RoundsConfig { rounds: 3, ..RoundsConfig::quick() };
        let sim = MerlinSimulator::new();

        // Uninterrupted run.
        let full_ck = dir.join("full.json");
        std::fs::remove_file(&full_ck).ok();
        let mut db_full = base_db.clone();
        let full_reports =
            run_rounds_with(&mut db_full, &ks, &cfg, &sim, Some(&full_ck), false).unwrap();

        // Killed after round 1, then resumed.
        let part_ck = dir.join("part.json");
        std::fs::remove_file(&part_ck).ok();
        let mut db_killed = base_db.clone();
        let killed_cfg = RoundsConfig { stop_after: Some(1), ..cfg.clone() };
        let partial =
            run_rounds_with(&mut db_killed, &ks, &killed_cfg, &sim, Some(&part_ck), false)
                .unwrap();
        assert_eq!(partial.len(), 1);

        let mut db_resumed = base_db.clone(); // stale copy, as after a crash
        let resumed_reports =
            run_rounds_with(&mut db_resumed, &ks, &cfg, &sim, Some(&part_ck), true).unwrap();

        assert_eq!(resumed_reports, full_reports);
        let out_full = dir.join("db_full.json");
        let out_resumed = dir.join("db_resumed.json");
        db_full.save(&out_full).unwrap();
        db_resumed.save(&out_resumed).unwrap();
        assert_eq!(
            std::fs::read(&out_full).unwrap(),
            std::fs::read(&out_resumed).unwrap(),
            "resumed database must be byte-identical to the uninterrupted one"
        );
        for f in [&full_ck, &part_ck, &out_full, &out_resumed] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn resume_rejects_mismatched_kernels() {
        let dir = std::env::temp_dir().join("gnn_dse_rounds_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("ck.json");
        std::fs::remove_file(&ck).ok();
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[], 30, 31);
        let cfg = RoundsConfig { rounds: 1, ..RoundsConfig::quick() };
        let sim = MerlinSimulator::new();
        run_rounds_with(&mut db, &ks, &cfg, &sim, Some(&ck), false).unwrap();

        let other = vec![kernels::gemm_ncubed()];
        let mut db2 = generate_database(&other, &[], 30, 31);
        let err = run_rounds_with(&mut db2, &other, &cfg, &sim, Some(&ck), true).unwrap_err();
        assert!(matches!(err, RoundsError::Mismatch { .. }), "got {err}");
        std::fs::remove_file(&ck).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dir = std::env::temp_dir().join("gnn_dse_rounds_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("bad.json");
        std::fs::write(&ck, "not a checkpoint").unwrap();
        let ks = vec![kernels::spmv_ellpack()];
        let mut db = generate_database(&ks, &[], 20, 31);
        let err = run_rounds_with(
            &mut db,
            &ks,
            &RoundsConfig::quick(),
            &MerlinSimulator::new(),
            Some(&ck),
            true,
        )
        .unwrap_err();
        assert!(matches!(err, RoundsError::Corrupt { .. }), "got {err}");
        std::fs::remove_file(&ck).ok();
    }
}
