//! The trained surrogate: millisecond QoR prediction without the HLS tool.

use crate::dataset::{Dataset, Normalizer, BRAM_TARGET, CLASS_TARGET, MAIN_TARGETS};
use crate::db::Database;
use crate::trainer::{train_classifier, train_regression, TrainConfig};
use design_space::DesignPoint;
use gdse_gnn::{GraphBatch, GraphInput, ModelConfig, ModelKind, PredictionModel};
use gdse_tensor::QuantParamSet;
use hls_ir::Kernel;
use merlin_sim::Utilization;
use proggraph::ProgramGraph;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Predicted quality of one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Probability the design synthesizes successfully.
    pub valid_prob: f64,
    /// Predicted latency in cycles (inverse of eq. 11).
    pub cycles: u64,
    /// Predicted resource utilization.
    pub util: Utilization,
}

impl Prediction {
    /// Whether the surrogate considers the design usable: predicted valid
    /// and every utilization under `threshold`.
    pub fn usable(&self, threshold: f64) -> bool {
        self.valid_prob >= 0.5 && self.util.fits(threshold)
    }
}

/// The GNN-DSE surrogate of the HLS tool: a validity classifier, a main
/// regressor (latency/DSP/LUT/FF) and a separate BRAM regressor (§5.2.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Predictor {
    classifier: PredictionModel,
    regressor: PredictionModel,
    bram_model: PredictionModel,
    normalizer: Normalizer,
}

impl Predictor {
    /// Builds an untrained predictor of the given model kind.
    pub fn untrained(kind: ModelKind, config: ModelConfig, normalizer: Normalizer) -> Self {
        let cls_cfg = config.clone().with_seed(config.seed ^ 1);
        let bram_cfg = config.clone().with_seed(config.seed ^ 2);
        Self {
            classifier: PredictionModel::new(kind, cls_cfg, &CLASS_TARGET),
            regressor: PredictionModel::new(kind, config, &MAIN_TARGETS),
            bram_model: PredictionModel::new(kind, bram_cfg, &BRAM_TARGET),
            normalizer,
        }
    }

    /// Trains classifier + regressors from a database (the "Trainer" box of
    /// Fig. 1a). Returns the predictor and the dataset it was trained on.
    pub fn train(
        db: &Database,
        kernels: &[Kernel],
        kind: ModelKind,
        model_cfg: ModelConfig,
        train_cfg: &TrainConfig,
    ) -> (Self, Dataset) {
        let ds = Dataset::from_database(db, kernels);
        let mut p = Self::untrained(kind, model_cfg, *ds.normalizer());
        let all: Vec<usize> = (0..ds.len()).collect();
        let valid = ds.valid_indices();
        train_classifier(&mut p.classifier, &ds, &all, train_cfg);
        train_regression(&mut p.regressor, &ds, &valid, train_cfg);
        train_regression(&mut p.bram_model, &ds, &valid, train_cfg);
        (p, ds)
    }

    /// Trains `n_seeds` predictors with different initializations and keeps
    /// the one with the lowest validation RMSE (internal 90/10 split) plus
    /// classifier accuracy. CPU-scale training of deep attention stacks has
    /// seed variance that GPU-scale budgets hide; model selection restores
    /// the paper's effective behaviour.
    pub fn train_best_of(
        db: &Database,
        kernels: &[Kernel],
        kind: ModelKind,
        model_cfg: ModelConfig,
        train_cfg: &TrainConfig,
        n_seeds: u64,
    ) -> (Self, Dataset) {
        assert!(n_seeds >= 1, "need at least one seed");
        let ds = Dataset::from_database(db, kernels);
        let (train, val) = ds.split(0.9, train_cfg.seed ^ 0xD5);
        let train_valid: Vec<usize> =
            train.iter().copied().filter(|&i| ds.samples()[i].valid).collect();
        let val_valid: Vec<usize> =
            val.iter().copied().filter(|&i| ds.samples()[i].valid).collect();

        let mut best: Option<(f64, Predictor)> = None;
        for s in 0..n_seeds {
            let cfg = model_cfg.clone().with_seed(model_cfg.seed.wrapping_add(s * 101));
            let mut p = Self::untrained(kind, cfg, *ds.normalizer());
            train_classifier(&mut p.classifier, &ds, &train, train_cfg);
            train_regression(&mut p.regressor, &ds, &train_valid, train_cfg);
            train_regression(&mut p.bram_model, &ds, &train_valid, train_cfg);
            let score = if val_valid.is_empty() {
                0.0
            } else {
                crate::trainer::eval_regression(&p.regressor, &ds, &val_valid).total()
                    + crate::trainer::eval_regression(&p.bram_model, &ds, &val_valid).total()
                    + (1.0 - crate::trainer::eval_classifier(&p.classifier, &ds, &val).accuracy)
            };
            if best.as_ref().map(|(b, _)| score < *b).unwrap_or(true) {
                best = Some((score, p));
            }
        }
        (best.expect("n_seeds >= 1").1, ds)
    }

    /// Continues training this predictor on a (typically augmented)
    /// database — the cheap alternative to retraining from scratch that the
    /// rounds loop (§4.4) and cross-application transfer use. The latency
    /// normalizer is kept (targets must stay comparable across rounds).
    pub fn fine_tune(
        &mut self,
        db: &Database,
        kernels: &[Kernel],
        train_cfg: &TrainConfig,
    ) -> Dataset {
        let ds = Dataset::from_database_with_normalizer(db, kernels, self.normalizer);
        let all: Vec<usize> = (0..ds.len()).collect();
        let valid = ds.valid_indices();
        train_classifier(&mut self.classifier, &ds, &all, train_cfg);
        train_regression(&mut self.regressor, &ds, &valid, train_cfg);
        train_regression(&mut self.bram_model, &ds, &valid, train_cfg);
        ds
    }

    /// Reassembles a predictor from its three models and normalizer — the
    /// loading half of the binary artifact path (see [`crate::artifact`]).
    pub fn from_parts(
        classifier: PredictionModel,
        regressor: PredictionModel,
        bram_model: PredictionModel,
        normalizer: Normalizer,
    ) -> Self {
        Self { classifier, regressor, bram_model, normalizer }
    }

    /// The latency normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The validity classifier.
    pub fn classifier(&self) -> &PredictionModel {
        &self.classifier
    }

    /// The main (latency/DSP/LUT/FF) regressor.
    pub fn regressor(&self) -> &PredictionModel {
        &self.regressor
    }

    /// The BRAM regressor.
    pub fn bram_model(&self) -> &PredictionModel {
        &self.bram_model
    }

    /// Predicts a batch of design points of one kernel.
    pub fn predict_batch(&self, graph: &ProgramGraph, points: &[DesignPoint]) -> Vec<Prediction> {
        if points.is_empty() {
            return Vec::new();
        }
        let started = std::time::Instant::now();
        let inputs: Vec<(GraphInput, &DesignPoint)> = points
            .iter()
            .map(|p| (GraphInput::from_graph(graph, Some(p)), p))
            .collect();
        let refs: Vec<(&GraphInput, &DesignPoint)> =
            inputs.iter().map(|(gi, p)| (gi, *p)).collect();
        let batch = GraphBatch::new(&refs);

        let cls = self.classifier.forward(&batch);
        let reg = self.regressor.forward(&batch);
        let bram = self.bram_model.forward(&batch);

        let preds: Vec<Prediction> = (0..points.len())
            .map(|i| {
                let logit = cls.graph.value(cls.outputs[0]).get(i, 0);
                let valid_prob = f64::from(1.0 / (1.0 + (-logit).exp()));
                let t_lat = f64::from(reg.graph.value(reg.outputs[0]).get(i, 0));
                let util = Utilization {
                    dsp: f64::from(reg.graph.value(reg.outputs[1]).get(i, 0)),
                    lut: f64::from(reg.graph.value(reg.outputs[2]).get(i, 0)),
                    ff: f64::from(reg.graph.value(reg.outputs[3]).get(i, 0)),
                    bram: f64::from(bram.graph.value(bram.outputs[0]).get(i, 0)),
                };
                Prediction { valid_prob, cycles: self.normalizer.inverse(t_lat), util }
            })
            .collect();
        gdse_obs::metrics::counter_add("surrogate.inferences", points.len() as u64);
        gdse_obs::metrics::counter_add("surrogate.busy_us", started.elapsed().as_micros() as u64);
        preds
    }

    /// Predicts a single design point.
    pub fn predict(&self, graph: &ProgramGraph, point: &DesignPoint) -> Prediction {
        self.predict_batch(graph, std::slice::from_ref(point))[0]
    }

    /// Saves the trained predictor (all three models + normalizer) as JSON,
    /// atomically (see [`crate::persist::atomic_write`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        crate::persist::atomic_write(path, &json)
    }

    /// Loads a predictor saved by [`Predictor::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

/// The int8 twin of a [`Predictor`]: the same three models with every
/// weight matrix calibrated to per-tensor symmetric int8
/// ([`gdse_gnn::PredictionModel::quantize`]), served through the packed
/// FMA kernel in `gdse_tensor::quant`.
///
/// The quantized path is **forward-only** and trades a bounded prediction
/// drift (tested per kernel in the repo's quantization suite) for
/// substantially higher inference throughput and a ~4x smaller on-disk
/// artifact. It never replaces the f32 path implicitly: serving it requires
/// an explicit opt-in (`gnndse serve --quant`).
#[derive(Debug, Clone)]
pub struct QuantPredictor {
    base: Predictor,
    classifier_q: Arc<QuantParamSet>,
    regressor_q: Arc<QuantParamSet>,
    bram_q: Arc<QuantParamSet>,
}

impl QuantPredictor {
    /// Calibrates int8 weights from a trained f32 predictor.
    pub fn quantize(p: &Predictor) -> Self {
        QuantPredictor {
            classifier_q: Arc::new(p.classifier.quantize()),
            regressor_q: Arc::new(p.regressor.quantize()),
            bram_q: Arc::new(p.bram_model.quantize()),
            base: p.clone(),
        }
    }

    /// Reassembles a quantized predictor from decoded parts — the loading
    /// half of the version-2 artifact path (see [`crate::artifact`]).
    pub fn from_parts(
        base: Predictor,
        classifier_q: QuantParamSet,
        regressor_q: QuantParamSet,
        bram_q: QuantParamSet,
    ) -> Self {
        QuantPredictor {
            base,
            classifier_q: Arc::new(classifier_q),
            regressor_q: Arc::new(regressor_q),
            bram_q: Arc::new(bram_q),
        }
    }

    /// The underlying models and normalizer. For int8-loaded artifacts the
    /// base holds *dequantized* weights, so its own `predict_batch` only
    /// approximates the f32 original; the quantized forward through
    /// [`QuantPredictor::predict_batch`] is the exact persisted pipeline.
    pub fn base(&self) -> &Predictor {
        &self.base
    }

    /// The calibrated weight sets, in (classifier, regressor, bram) order.
    pub fn param_sets(&self) -> (&QuantParamSet, &QuantParamSet, &QuantParamSet) {
        (&self.classifier_q, &self.regressor_q, &self.bram_q)
    }

    /// The latency normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        self.base.normalizer()
    }

    /// Predicts a batch of design points of one kernel through the int8
    /// kernels — the quantized mirror of [`Predictor::predict_batch`].
    pub fn predict_batch(&self, graph: &ProgramGraph, points: &[DesignPoint]) -> Vec<Prediction> {
        if points.is_empty() {
            return Vec::new();
        }
        let started = std::time::Instant::now();
        let inputs: Vec<(GraphInput, &DesignPoint)> = points
            .iter()
            .map(|p| (GraphInput::from_graph(graph, Some(p)), p))
            .collect();
        let refs: Vec<(&GraphInput, &DesignPoint)> =
            inputs.iter().map(|(gi, p)| (gi, *p)).collect();
        let batch = GraphBatch::new(&refs);

        let cls = self.base.classifier.forward_quant(&batch, &self.classifier_q);
        let reg = self.base.regressor.forward_quant(&batch, &self.regressor_q);
        let bram = self.base.bram_model.forward_quant(&batch, &self.bram_q);

        let preds: Vec<Prediction> = (0..points.len())
            .map(|i| {
                let logit = cls.graph.value(cls.outputs[0]).get(i, 0);
                let valid_prob = f64::from(1.0 / (1.0 + (-logit).exp()));
                let t_lat = f64::from(reg.graph.value(reg.outputs[0]).get(i, 0));
                let util = Utilization {
                    dsp: f64::from(reg.graph.value(reg.outputs[1]).get(i, 0)),
                    lut: f64::from(reg.graph.value(reg.outputs[2]).get(i, 0)),
                    ff: f64::from(reg.graph.value(reg.outputs[3]).get(i, 0)),
                    bram: f64::from(bram.graph.value(bram.outputs[0]).get(i, 0)),
                };
                Prediction {
                    valid_prob,
                    cycles: self.base.normalizer.inverse(t_lat),
                    util,
                }
            })
            .collect();
        gdse_obs::metrics::counter_add("surrogate.inferences", points.len() as u64);
        gdse_obs::metrics::counter_add("surrogate.quant_inferences", points.len() as u64);
        gdse_obs::metrics::counter_add("surrogate.busy_us", started.elapsed().as_micros() as u64);
        preds
    }

    /// Predicts a single design point through the int8 kernels.
    pub fn predict(&self, graph: &ProgramGraph, point: &DesignPoint) -> Prediction {
        self.predict_batch(graph, std::slice::from_ref(point))[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use proggraph::build_graph_bidirectional;

    #[test]
    fn trained_predictor_produces_sane_predictions() {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 50, 17);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(4),
        );
        let space = DesignSpace::from_kernel(&ks[0]);
        let graph = build_graph_bidirectional(&ks[0], &space);
        let preds = p.predict_batch(&graph, &[space.default_point(), space.point_at(7)]);
        assert_eq!(preds.len(), 2);
        for pr in preds {
            assert!(pr.valid_prob >= 0.0 && pr.valid_prob <= 1.0);
            assert!(pr.cycles >= 1);
            assert!(pr.util.dsp.is_finite());
        }
    }

    #[test]
    fn best_of_seeds_never_worse_than_single_on_validation() {
        use crate::trainer::eval_regression;
        let ks = vec![kernels::spmv_ellpack(), kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 40, 37);
        let tcfg = TrainConfig::quick().with_epochs(3);
        let (single, ds) =
            Predictor::train(&db, &ks, ModelKind::Transformer, ModelConfig::small(), &tcfg);
        let (best, _) = Predictor::train_best_of(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &tcfg,
            2,
        );
        let valid = ds.valid_indices();
        let rs = eval_regression(single.regressor(), &ds, &valid).total();
        let rb = eval_regression(best.regressor(), &ds, &valid).total();
        // Model selection optimizes a validation score; on the full dataset
        // it should land in the same regime or better — never catastrophic.
        assert!(rb < rs * 2.0 + 1.0, "best-of ({rb}) far worse than single ({rs})");
    }

    #[test]
    fn fine_tuning_improves_fit_on_new_data() {
        use crate::trainer::eval_regression;
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 40, 29);
        let (mut p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(4),
        );
        // Augment with fresh designs from a different region of the space.
        let mut db2 = db.clone();
        let extra = generate_database(&ks, &[], 40, 31);
        db2.merge(&extra);
        let ds = Dataset::from_database_with_normalizer(&db2, &ks, *p.normalizer());
        let valid = ds.valid_indices();
        let before = eval_regression(p.regressor(), &ds, &valid).total();
        p.fine_tune(&db2, &ks, &TrainConfig::quick().with_epochs(8));
        let after = eval_regression(p.regressor(), &ds, &valid).total();
        assert!(after < before, "fine-tuning should reduce error: {after} !< {before}");
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let ks = vec![kernels::aes()];
        let db = generate_database(&ks, &[], 20, 21);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let dir = std::env::temp_dir().join("gnn_dse_predictor_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("predictor.json");
        p.save(&path).unwrap();
        let loaded = Predictor::load(&path).unwrap();
        let space = DesignSpace::from_kernel(&ks[0]);
        let graph = build_graph_bidirectional(&ks[0], &space);
        let pt = space.point_at(3);
        assert_eq!(p.predict(&graph, &pt), loaded.predict(&graph, &pt));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_predictor_tracks_f32_predictions() {
        use gdse_obs as obs;
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 40, 23);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(3),
        );
        let qp = QuantPredictor::quantize(&p);
        let space = DesignSpace::from_kernel(&ks[0]);
        let graph = build_graph_bidirectional(&ks[0], &space);
        let points: Vec<_> = (0..6u128).map(|i| space.point_at(i * 13 % space.size())).collect();

        obs::metrics::reset();
        let f = p.predict_batch(&graph, &points);
        let q = qp.predict_batch(&graph, &points);
        assert_eq!(f.len(), q.len());
        for (a, b) in f.iter().zip(&q) {
            assert!((a.valid_prob - b.valid_prob).abs() < 0.25, "{a:?} vs {b:?}");
            let (ca, cb) = (a.cycles as f64, b.cycles as f64);
            let ratio = ca.max(cb) / ca.min(cb).max(1.0);
            assert!(ratio < 1.5, "cycles drifted {ca} vs {cb}");
            assert!(b.util.dsp.is_finite() && b.util.bram.is_finite());
        }
        let snap = obs::metrics::snapshot();
        assert_eq!(snap.counter("surrogate.quant_inferences"), Some(points.len() as u64));
        assert!(snap.counter("infer.quant_calls").unwrap_or(0) > 0, "int8 kernel must run");
    }

    #[test]
    fn quantized_predict_single_matches_its_batch() {
        let ks = vec![kernels::spmv_ellpack()];
        let db = generate_database(&ks, &[], 25, 41);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Gcn,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let qp = QuantPredictor::quantize(&p);
        let space = DesignSpace::from_kernel(&ks[0]);
        let graph = build_graph_bidirectional(&ks[0], &space);
        let pt = space.point_at(4);
        let single = qp.predict(&graph, &pt);
        let batch = qp.predict_batch(&graph, &[pt.clone(), space.default_point()]);
        assert_eq!(single.cycles, batch[0].cycles);
        assert_eq!(single.valid_prob.to_bits(), batch[0].valid_prob.to_bits());
    }

    #[test]
    fn predict_single_matches_batch() {
        let ks = vec![kernels::spmv_ellpack()];
        let db = generate_database(&ks, &[], 30, 19);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Gcn,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let space = DesignSpace::from_kernel(&ks[0]);
        let graph = build_graph_bidirectional(&ks[0], &space);
        let pt = space.point_at(5);
        let single = p.predict(&graph, &pt);
        let batch = p.predict_batch(&graph, &[pt.clone(), space.default_point()]);
        assert_eq!(single.cycles, batch[0].cycles);
    }
}
