//! Persisted predictor artifacts (`.gdse` files).
//!
//! A trained [`Predictor`] — validity classifier, main regressor, BRAM
//! regressor, latency normalizer — plus its training provenance is packed
//! into one binary [`gdse_gnn::artifact`] envelope and written atomically
//! through [`crate::persist`]. Loading rebuilds the exact same predictor:
//! weights travel as raw `f32` bits, so predictions from a loaded artifact
//! are **byte-identical** to the in-memory model that saved it (asserted by
//! the round-trip tests across all 13 kernels).
//!
//! Section layout inside the envelope:
//!
//! | section | payload |
//! |---|---|
//! | `classifier` | [`gdse_gnn::artifact::encode_model`] of the validity classifier |
//! | `regressor` | ... of the latency/DSP/LUT/FF regressor |
//! | `bram` | ... of the BRAM regressor |
//! | `normalizer` | the eq. 11 normalization factor, `f64` LE |
//!
//! and the envelope's metadata document is an [`ArtifactMeta`] as JSON.
//!
//! **Quantized artifacts** (written by `gnndse train --save-quant`, served
//! by `gnndse serve --quant`) use a *version-2* envelope whose model
//! sections are named `classifier_q` / `regressor_q` / `bram_q` and carry
//! [`gdse_gnn::artifact::encode_model_quant`] payloads: int8 weights plus
//! per-tensor scales, ~4x smaller than f32. The envelope version bump means
//! builds that predate quantization reject such files with a typed
//! [`ArtifactError::UnsupportedVersion`] instead of misreading them, and
//! [`ArtifactMeta::quant`] records the flavor in the metadata document.

use crate::dataset::Normalizer;
use crate::error::Error;
use crate::inference::{Predictor, QuantPredictor};
use gdse_gnn::artifact::{
    decode_model, decode_model_quant, encode_model, encode_model_quant, Artifact, ArtifactError,
    FORMAT_V2,
};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current [`ArtifactMeta::schema_version`].
pub const META_SCHEMA_VERSION: u32 = 1;

/// Training provenance stored next to the weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Metadata schema version ([`META_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The paper's label of the model variant (e.g. `M7 GNN-DSE (full)`).
    pub model: String,
    /// Kernels in the training database.
    pub kernels: Vec<String>,
    /// Training epochs.
    pub epochs: usize,
    /// Weight-initialization seed of the main regressor.
    pub seed: u64,
    /// Whether the artifact stores int8-quantized weights (version-2
    /// envelope, `*_q` sections). Absent in pre-quantization artifacts,
    /// which defaults to `false`.
    #[serde(default)]
    pub quant: bool,
}

impl ArtifactMeta {
    /// Builds metadata describing `predictor` trained on `kernels` for
    /// `epochs` epochs.
    pub fn describe(predictor: &Predictor, kernels: &[String], epochs: usize) -> Self {
        ArtifactMeta {
            schema_version: META_SCHEMA_VERSION,
            model: predictor.regressor().kind().label().to_string(),
            kernels: kernels.to_vec(),
            epochs,
            seed: predictor.regressor().config().seed,
            quant: false,
        }
    }
}

fn corrupt(detail: impl Into<String>) -> Error {
    Error::Artifact(ArtifactError::Corrupt(detail.into()))
}

/// Serializes `predictor` + `meta` into artifact bytes (no I/O).
pub fn encode_predictor(predictor: &Predictor, meta: &ArtifactMeta) -> Result<Vec<u8>, Error> {
    let meta_json =
        serde_json::to_string(meta).map_err(|e| corrupt(format!("metadata: {e}")))?;
    let mut art = Artifact::new(meta_json);
    art.push_section("classifier", encode_model(predictor.classifier()));
    art.push_section("regressor", encode_model(predictor.regressor()));
    art.push_section("bram", encode_model(predictor.bram_model()));
    art.push_section("normalizer", predictor.normalizer().factor().to_le_bytes().to_vec());
    Ok(art.to_bytes())
}

/// Serializes a quantized predictor + `meta` into **version-2** artifact
/// bytes (no I/O). `meta.quant` is forced on.
pub fn encode_quant_predictor(
    qp: &QuantPredictor,
    meta: &ArtifactMeta,
) -> Result<Vec<u8>, Error> {
    let meta = ArtifactMeta { quant: true, ..meta.clone() };
    let meta_json =
        serde_json::to_string(&meta).map_err(|e| corrupt(format!("metadata: {e}")))?;
    let mut art = Artifact::new(meta_json).with_version(FORMAT_V2);
    let base = qp.base();
    let (cq, rq, bq) = qp.param_sets();
    art.push_section("classifier_q", encode_model_quant(base.classifier(), cq));
    art.push_section("regressor_q", encode_model_quant(base.regressor(), rq));
    art.push_section("bram_q", encode_model_quant(base.bram_model(), bq));
    art.push_section("normalizer", base.normalizer().factor().to_le_bytes().to_vec());
    Ok(art.to_bytes())
}

fn decode_meta(art: &Artifact) -> Result<ArtifactMeta, Error> {
    let meta: ArtifactMeta = serde_json::from_str(&art.meta_json)
        .map_err(|e| corrupt(format!("metadata: {e}")))?;
    if meta.schema_version != META_SCHEMA_VERSION {
        return Err(Error::Artifact(ArtifactError::UnsupportedVersion {
            found: meta.schema_version,
        }));
    }
    Ok(meta)
}

fn decode_normalizer(art: &Artifact) -> Result<Normalizer, Error> {
    let norm_bytes = art
        .section("normalizer")
        .ok_or_else(|| corrupt("missing `normalizer` section"))?;
    let factor: [u8; 8] = norm_bytes
        .try_into()
        .map_err(|_| corrupt("normalizer section must be exactly 8 bytes"))?;
    Ok(Normalizer::with_factor(f64::from_le_bytes(factor)))
}

/// Rebuilds a predictor and its metadata from artifact bytes.
///
/// # Errors
///
/// Typed [`ArtifactError`]s (wrapped in [`enum@Error`]) for bad magic,
/// unsupported versions, checksum mismatches, truncation, and structural
/// corruption. An int8-quantized artifact is *structurally* readable here
/// but semantically a different model class, so it is rejected with a
/// direction to the quant path.
pub fn decode_predictor(bytes: &[u8]) -> Result<(Predictor, ArtifactMeta), Error> {
    let art = Artifact::from_bytes(bytes)?;
    let meta = decode_meta(&art)?;
    if meta.quant || art.section("classifier_q").is_some() {
        return Err(corrupt(
            "artifact stores int8-quantized weights; serve it with --quant \
             (or load it through the quantized decoder)",
        ));
    }
    let section = |name: &str| {
        art.section(name).ok_or_else(|| corrupt(format!("missing `{name}` section")))
    };
    let classifier = decode_model(section("classifier")?)?;
    let regressor = decode_model(section("regressor")?)?;
    let bram = decode_model(section("bram")?)?;
    let normalizer = decode_normalizer(&art)?;
    Ok((Predictor::from_parts(classifier, regressor, bram, normalizer), meta))
}

/// Rebuilds a [`QuantPredictor`] and its metadata from version-2 artifact
/// bytes written by [`encode_quant_predictor`].
///
/// # Errors
///
/// The same typed failures as [`decode_predictor`]; a plain f32 artifact is
/// rejected (quantize it at load time instead — see
/// [`crate::serving::ArtifactProvider::open_quant`]).
pub fn decode_quant_predictor(bytes: &[u8]) -> Result<(QuantPredictor, ArtifactMeta), Error> {
    let art = Artifact::from_bytes(bytes)?;
    let meta = decode_meta(&art)?;
    let section = |name: &str| {
        art.section(name).ok_or_else(|| corrupt(format!("missing `{name}` section")))
    };
    if art.section("classifier_q").is_none() {
        return Err(corrupt(
            "artifact stores plain f32 weights, not an int8-quantized model",
        ));
    }
    let (classifier, cq) = decode_model_quant(section("classifier_q")?)?;
    let (regressor, rq) = decode_model_quant(section("regressor_q")?)?;
    let (bram, bq) = decode_model_quant(section("bram_q")?)?;
    let normalizer = decode_normalizer(&art)?;
    let base = Predictor::from_parts(classifier, regressor, bram, normalizer);
    Ok((QuantPredictor::from_parts(base, cq, rq, bq), meta))
}

impl Predictor {
    /// Saves this predictor as a binary `.gdse` artifact, atomically.
    ///
    /// # Errors
    ///
    /// Encoding failures as [`Error::Artifact`], write failures as
    /// [`Error::Io`].
    pub fn save_artifact(&self, path: &Path, meta: &ArtifactMeta) -> Result<(), Error> {
        let bytes = encode_predictor(self, meta)?;
        crate::persist::atomic_write_bytes(path, &bytes)?;
        Ok(())
    }

    /// Loads a predictor saved by [`Predictor::save_artifact`].
    ///
    /// # Errors
    ///
    /// Read failures as [`Error::Io`]; validation/decode failures as the
    /// typed [`Error::Artifact`] variants.
    pub fn load_artifact(path: &Path) -> Result<(Predictor, ArtifactMeta), Error> {
        let bytes = std::fs::read(path)?;
        decode_predictor(&bytes)
    }
}

impl QuantPredictor {
    /// Saves this quantized predictor as a version-2 binary `.gdse`
    /// artifact, atomically. ~4x smaller than the f32 artifact of the same
    /// model.
    ///
    /// # Errors
    ///
    /// Encoding failures as [`Error::Artifact`], write failures as
    /// [`Error::Io`].
    pub fn save_artifact(&self, path: &Path, meta: &ArtifactMeta) -> Result<(), Error> {
        let bytes = encode_quant_predictor(self, meta)?;
        crate::persist::atomic_write_bytes(path, &bytes)?;
        Ok(())
    }

    /// Loads a quantized predictor saved by
    /// [`QuantPredictor::save_artifact`].
    ///
    /// # Errors
    ///
    /// Read failures as [`Error::Io`]; validation/decode failures as the
    /// typed [`Error::Artifact`] variants.
    pub fn load_artifact(path: &Path) -> Result<(QuantPredictor, ArtifactMeta), Error> {
        let bytes = std::fs::read(path)?;
        decode_quant_predictor(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use crate::trainer::TrainConfig;
    use design_space::DesignSpace;
    use gdse_gnn::{ModelConfig, ModelKind};
    use hls_ir::kernels;
    use proggraph::build_graph_bidirectional;

    fn tiny_predictor() -> Predictor {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 25, 91);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        p
    }

    fn meta_for(p: &Predictor) -> ArtifactMeta {
        ArtifactMeta::describe(p, &["gemm-ncubed".to_string()], 2)
    }

    #[test]
    fn encode_decode_is_byte_identical_on_predictions() {
        let p = tiny_predictor();
        let bytes = encode_predictor(&p, &meta_for(&p)).unwrap();
        let (loaded, meta) = decode_predictor(&bytes).unwrap();
        assert_eq!(meta.schema_version, META_SCHEMA_VERSION);
        assert_eq!(meta.model, "M5 GNN-DSE-TransformerConv");
        assert_eq!(meta.kernels, vec!["gemm-ncubed".to_string()]);

        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let points: Vec<_> = (0..8u128).map(|i| space.point_at(i * 31 % space.size())).collect();
        let a = p.predict_batch(&graph, &points);
        let b = loaded.predict_batch(&graph, &points);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.valid_prob.to_bits(), y.valid_prob.to_bits());
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.util.dsp.to_bits(), y.util.dsp.to_bits());
            assert_eq!(x.util.bram.to_bits(), y.util.bram.to_bits());
        }
        assert_eq!(
            p.normalizer().factor().to_bits(),
            loaded.normalizer().factor().to_bits()
        );
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let p = tiny_predictor();
        let dir = std::env::temp_dir().join("gnn_dse_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gdse");
        p.save_artifact(&path, &meta_for(&p)).unwrap();
        let (loaded, _) = Predictor::load_artifact(&path).unwrap();
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let pt = space.point_at(5);
        assert_eq!(p.predict(&graph, &pt), loaded.predict(&graph, &pt));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_artifact_is_rejected_with_typed_error() {
        let p = tiny_predictor();
        let mut bytes = encode_predictor(&p, &meta_for(&p)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        match decode_predictor(&bytes) {
            Err(Error::Artifact(ArtifactError::ChecksumMismatch { .. })) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        match Predictor::load_artifact(Path::new("/nonexistent/model.gdse")) {
            Err(Error::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn quant_artifact_round_trips_and_is_smaller() {
        let p = tiny_predictor();
        let qp = QuantPredictor::quantize(&p);
        let f32_bytes = encode_predictor(&p, &meta_for(&p)).unwrap();
        let bytes = encode_quant_predictor(&qp, &meta_for(&p)).unwrap();
        assert!(
            bytes.len() < f32_bytes.len() * 2 / 3,
            "quant artifact {} not meaningfully smaller than f32 {}",
            bytes.len(),
            f32_bytes.len()
        );

        let (loaded, meta) = decode_quant_predictor(&bytes).unwrap();
        assert!(meta.quant, "metadata must record the quantized flavor");

        // The persisted quantized pipeline reproduces the in-memory one
        // bit-for-bit: int8 weights and scales travel losslessly.
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let points: Vec<_> = (0..6u128).map(|i| space.point_at(i * 29 % space.size())).collect();
        let a = qp.predict_batch(&graph, &points);
        let b = loaded.predict_batch(&graph, &points);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.valid_prob.to_bits(), y.valid_prob.to_bits());
            assert_eq!(x.cycles, y.cycles);
            assert_eq!(x.util.dsp.to_bits(), y.util.dsp.to_bits());
            assert_eq!(x.util.bram.to_bits(), y.util.bram.to_bits());
        }
        assert_eq!(
            qp.normalizer().factor().to_bits(),
            loaded.normalizer().factor().to_bits()
        );
    }

    #[test]
    fn quant_artifact_is_rejected_by_the_f32_decoder_with_guidance() {
        let p = tiny_predictor();
        let qp = QuantPredictor::quantize(&p);
        let bytes = encode_quant_predictor(&qp, &meta_for(&p)).unwrap();
        match decode_predictor(&bytes) {
            Err(Error::Artifact(ArtifactError::Corrupt(msg))) => {
                assert!(msg.contains("--quant"), "error must point at the quant path: {msg}");
            }
            other => panic!("expected typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn f32_artifact_is_rejected_by_the_quant_decoder() {
        let p = tiny_predictor();
        let bytes = encode_predictor(&p, &meta_for(&p)).unwrap();
        match decode_quant_predictor(&bytes) {
            Err(Error::Artifact(ArtifactError::Corrupt(msg))) => {
                assert!(msg.contains("f32"), "{msg}");
            }
            other => panic!("expected typed rejection, got {other:?}"),
        }
    }

    #[test]
    fn quant_artifact_declares_envelope_version_2() {
        // The version field is what makes pre-quantization readers fail
        // with UnsupportedVersion instead of misparsing the i8 payloads.
        let p = tiny_predictor();
        let qp = QuantPredictor::quantize(&p);
        let bytes = encode_quant_predictor(&qp, &meta_for(&p)).unwrap();
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(version, FORMAT_V2);
        // f32 artifacts keep the v1 wire format older builds understand.
        let f32_bytes = encode_predictor(&p, &meta_for(&p)).unwrap();
        assert_eq!(u32::from_le_bytes(f32_bytes[4..8].try_into().unwrap()), 1);
    }

    #[test]
    fn meta_schema_version_is_checked() {
        let p = tiny_predictor();
        let mut meta = meta_for(&p);
        meta.schema_version = 9;
        let bytes = encode_predictor(&p, &meta).unwrap();
        match decode_predictor(&bytes) {
            Err(Error::Artifact(ArtifactError::UnsupportedVersion { found: 9 })) => {}
            other => panic!("expected unsupported version, got {other:?}"),
        }
    }
}
