//! The continuous-learning replay buffer: a bounded, deduplicated window of
//! **validated** oracle results that feeds fine-tune batches.
//!
//! The daemon's background driver validates top-M candidates every round;
//! the same design can surface in several rounds (the DSE re-proposes
//! near-optimal points, restarts replay the campaign). Feeding raw
//! validation streams to the fine-tuner would weight repeated designs by
//! how often they were validated — the buffer dedups by **canonical
//! config** (`(kernel, DesignPoint)`, the same key the [`Database`] index
//! uses), so each design contributes exactly one sample regardless of how
//! many times the oracle confirmed it.
//!
//! Persistence reuses the crash-safe database machinery: [`ReplayBuffer::save`]
//! serializes the window *as a database* through the atomic-write path, and
//! [`ReplayBuffer::load`] restores it, so a killed daemon resumes learning
//! from exactly the window it had. Metrics booked on the recording thread:
//! `learn.replay_inserted`, `learn.duplicates_dropped`, `learn.replay_evicted`.

use crate::db::{Database, DbEntry, DbError};
use design_space::DesignPoint;
use gdse_obs as obs;
use merlin_sim::HlsResult;
use std::collections::{HashSet, VecDeque};
use std::path::Path;

/// Lifetime counters of one buffer (not persisted; a restarted daemon
/// starts fresh counts over the restored window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Fresh results admitted to the window.
    pub inserted: u64,
    /// Results dropped because their canonical config was already buffered.
    pub duplicates: u64,
    /// Oldest results evicted to keep the window within capacity.
    pub evicted: u64,
}

/// A bounded FIFO of validated oracle results, deduplicated by canonical
/// design configuration. See the module docs for the role it plays in the
/// continuous-learning loop.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    entries: VecDeque<DbEntry>,
    index: HashSet<(String, DesignPoint)>,
    stats: ReplayStats,
}

impl ReplayBuffer {
    /// An empty buffer holding at most `capacity` results (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ReplayBuffer {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            index: HashSet::new(),
            stats: ReplayStats::default(),
        }
    }

    /// Buffered result count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime insert/duplicate/evict counts.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Admits one validated result. Returns `false` (and books
    /// `learn.duplicates_dropped`) when the canonical config is already
    /// buffered; evicts the oldest entry when the window is full.
    pub fn record(&mut self, kernel: &str, point: DesignPoint, result: HlsResult) -> bool {
        let key = (kernel.to_string(), point.clone());
        if self.index.contains(&key) {
            self.stats.duplicates += 1;
            obs::metrics::counter_inc("learn.duplicates_dropped");
            return false;
        }
        if self.entries.len() >= self.capacity {
            if let Some(old) = self.entries.pop_front() {
                self.index.remove(&(old.kernel, old.point));
                self.stats.evicted += 1;
                obs::metrics::counter_inc("learn.replay_evicted");
            }
        }
        self.index.insert(key);
        self.entries.push_back(DbEntry { kernel: kernel.to_string(), point, result });
        self.stats.inserted += 1;
        obs::metrics::counter_inc("learn.replay_inserted");
        true
    }

    /// [`record`](Self::record) for an [`Evaluated`] record: the point and
    /// tool result are buffered; the epoch and objective snapshot ride along
    /// with the caller's record, not the buffer.
    pub fn record_evaluated(&mut self, kernel: &str, ev: &crate::evaluated::Evaluated) -> bool {
        self.record(kernel, ev.point.clone(), ev.result)
    }

    /// Restores one entry without booking metrics or stats — the load/seed
    /// path, where the entries were already counted when first recorded.
    fn restore(&mut self, entry: DbEntry) {
        let key = (entry.kernel.clone(), entry.point.clone());
        if self.index.contains(&key) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(old) = self.entries.pop_front() {
                self.index.remove(&(old.kernel, old.point));
            }
        }
        self.index.insert(key);
        self.entries.push_back(entry);
    }

    /// Seeds a fresh buffer with the newest `capacity` entries of `db`
    /// (oldest of those first, so later evictions drop the oldest seed
    /// first). Used when a daemon starts without a persisted buffer: the
    /// first fine-tune round then has a full window to draw from.
    pub fn seed_from(db: &Database, capacity: usize) -> Self {
        let mut buf = ReplayBuffer::new(capacity);
        let entries = db.entries();
        let skip = entries.len().saturating_sub(buf.capacity);
        for e in entries.iter().skip(skip) {
            buf.restore(e.clone());
        }
        buf
    }

    /// The window as a [`Database`] — the form the trainer consumes, and
    /// the on-disk representation.
    pub fn as_database(&self) -> Database {
        let mut db = Database::new();
        for e in &self.entries {
            db.insert(&e.kernel, e.point.clone(), e.result);
        }
        db
    }

    /// Persists the window through the database's crash-safe atomic-write
    /// path.
    ///
    /// # Errors
    ///
    /// Serialization or I/O failure of the underlying database save.
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        self.as_database().save(path)
    }

    /// Restores a window persisted by [`save`](ReplayBuffer::save). Entry
    /// order is the on-disk order, so FIFO eviction picks up where the
    /// saved buffer left off.
    ///
    /// # Errors
    ///
    /// I/O or parse failure of the underlying database load.
    pub fn load(path: &Path, capacity: usize) -> Result<Self, DbError> {
        let db = Database::load(path)?;
        let mut buf = ReplayBuffer::new(capacity);
        for e in db.entries() {
            buf.restore(e.clone());
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    fn sample_results(n: usize) -> Vec<(DesignPoint, HlsResult)> {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        (0..n as u128)
            .map(|i| {
                let p = space.point_at(i % space.size());
                let r = sim.evaluate(&k, &space, &p);
                (p, r)
            })
            .collect()
    }

    #[test]
    fn dedups_by_canonical_config() {
        let mut buf = ReplayBuffer::new(16);
        let samples = sample_results(3);
        for (p, r) in &samples {
            assert!(buf.record("gemm-ncubed", p.clone(), *r));
        }
        // Re-validating the same designs must not grow the window.
        for (p, r) in &samples {
            assert!(!buf.record("gemm-ncubed", p.clone(), *r));
        }
        assert_eq!(buf.len(), 3);
        let s = buf.stats();
        assert_eq!((s.inserted, s.duplicates, s.evicted), (3, 3, 0));
        // The same point under a different kernel name is a different config.
        let (p, r) = &samples[0];
        assert!(buf.record("spmv-ellpack", p.clone(), *r));
    }

    #[test]
    fn bounded_fifo_evicts_oldest_and_readmits_them() {
        let mut buf = ReplayBuffer::new(4);
        let samples = sample_results(6);
        for (p, r) in &samples {
            buf.record("gemm-ncubed", p.clone(), *r);
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.stats().evicted, 2);
        // The evicted (oldest) configs are admissible again.
        let (p0, r0) = &samples[0];
        assert!(buf.record("gemm-ncubed", p0.clone(), *r0), "evicted config re-enters");
    }

    #[test]
    fn save_load_round_trips_through_the_crash_safe_db() {
        let dir = std::env::temp_dir().join("gnn_dse_replay_roundtrip_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.json");
        let mut buf = ReplayBuffer::new(8);
        for (p, r) in sample_results(5) {
            buf.record("gemm-ncubed", p, r);
        }
        buf.save(&path).unwrap();
        let restored = ReplayBuffer::load(&path, 8).unwrap();
        assert_eq!(restored.len(), buf.len());
        assert_eq!(restored.as_database().entries(), buf.as_database().entries());
        // Restored entries were not re-counted.
        assert_eq!(restored.stats(), ReplayStats::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeding_takes_the_newest_database_entries() {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[("gemm-ncubed", 20)], 20, 7);
        let buf = ReplayBuffer::seed_from(&db, 8);
        assert_eq!(buf.len(), 8.min(db.len()));
        let window = buf.as_database();
        // The seed is the tail of the database.
        let tail = &db.entries()[db.len() - buf.len()..];
        assert_eq!(window.entries(), tail);
    }
}
