//! Incremental Pareto archive over (cycles, DSP, BRAM, LUT, FF).
//!
//! [`ParetoArchive`] maintains a mutually non-dominated set *as points
//! arrive*, replacing the post-hoc [`pareto_front`](crate::dse::pareto_front)
//! scan: explorations insert each evaluation and the archive is the front at
//! every instant. Dominance is the standard minimization order over the five
//! axes of [`AXES`]; ties are broken deterministically (first inserted wins
//! on exact duplicates, lexicographically-largest member evicted when a
//! bounded archive overflows).
//!
//! [`hypervolume`] estimates the dominated volume of a front with a seeded
//! deterministic Monte-Carlo integration — exact 5-D hypervolume is
//! superlinear in front size and unnecessary for the comparisons the bench
//! makes.

use crate::inference::Prediction;
use merlin_sim::HlsResult;

/// Number of objective axes: cycles, DSP, BRAM18, LUT, FF.
pub const AXES: usize = 5;

/// Objective axes of an oracle result: cycle count plus the four raw
/// resource *counts*. Counts (not fractions) keep the axes integral, so
/// `f64` comparisons below 2^53 are exact and dominance matches what an
/// integer-space scan would compute.
pub fn result_axes(r: &HlsResult) -> [f64; AXES] {
    [
        r.cycles as f64,
        r.counts.dsp as f64,
        r.counts.bram18 as f64,
        r.counts.lut as f64,
        r.counts.ff as f64,
    ]
}

/// Objective axes of a surrogate prediction: predicted cycles plus the four
/// predicted utilization fractions (the surrogate regresses fractions, not
/// counts).
pub fn prediction_axes(p: &Prediction) -> [f64; AXES] {
    [p.cycles as f64, p.util.dsp, p.util.bram, p.util.lut, p.util.ff]
}

/// `a` weakly dominates `b`: no worse on every axis (minimization). Equal
/// vectors weakly dominate each other.
pub fn weakly_dominates(a: &[f64; AXES], b: &[f64; AXES]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// `a` strictly dominates `b`: no worse everywhere and better somewhere.
pub fn strictly_dominates(a: &[f64; AXES], b: &[f64; AXES]) -> bool {
    weakly_dominates(a, b) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// One archived point: its objective axes and the payload it scores.
/// (Persist fronts as the payload type — e.g. `Vec<Evaluated>` — rather
/// than the archive itself; the serde shim cannot derive for generics.)
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveMember<T> {
    /// Objective vector ([`result_axes`] / [`prediction_axes`]).
    pub axes: [f64; AXES],
    /// The design (or anything else) the axes belong to.
    pub item: T,
}

/// A bounded, incremental Pareto front (minimization on all [`AXES`]).
///
/// Invariants:
/// * members are mutually non-dominated (weak dominance — duplicates of an
///   existing vector are rejected, so the *first* insertion wins a tie);
/// * at most `capacity` members; on overflow the member with the
///   lexicographically largest axes (worst latency, then resources) is
///   evicted, biasing bounded archives toward the low-latency end of the
///   front.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoArchive<T> {
    capacity: usize,
    members: Vec<ArchiveMember<T>>,
}

impl<T> ParetoArchive<T> {
    /// An archive holding at most `capacity` (>= 1) front members.
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), members: Vec::new() }
    }

    /// An archive with no size bound.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Current front size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Maximum front size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The current front, in insertion order.
    pub fn members(&self) -> &[ArchiveMember<T>] {
        &self.members
    }

    /// Offers a point to the archive. Returns `true` iff the point is on
    /// the front after the call (it may evict existing members; it is
    /// rejected when an existing member weakly dominates it, so exact
    /// duplicates keep the first-inserted copy — deterministic regardless
    /// of exploration interleaving).
    pub fn insert(&mut self, axes: [f64; AXES], item: T) -> bool {
        if axes.iter().any(|v| v.is_nan()) {
            return false;
        }
        if self.members.iter().any(|m| weakly_dominates(&m.axes, &axes)) {
            return false;
        }
        self.members.retain(|m| !weakly_dominates(&axes, &m.axes));
        self.members.push(ArchiveMember { axes, item });
        if self.members.len() > self.capacity {
            // Mutually non-dominated members always differ somewhere, so the
            // lexicographic maximum is unique and eviction deterministic.
            let worst = (0..self.members.len())
                .max_by(|&a, &b| lex_cmp(&self.members[a].axes, &self.members[b].axes))
                .expect("archive is non-empty");
            let evicted_new = worst == self.members.len() - 1;
            self.members.remove(worst);
            return !evicted_new;
        }
        true
    }

    /// The front sorted lexicographically by axes (cycles first) — a stable
    /// order for reports and tests.
    pub fn front(&self) -> Vec<&ArchiveMember<T>> {
        let mut f: Vec<&ArchiveMember<T>> = self.members.iter().collect();
        f.sort_by(|a, b| lex_cmp(&a.axes, &b.axes));
        f
    }

    /// The sorted axes of the front (see [`ParetoArchive::front`]).
    pub fn front_axes(&self) -> Vec<[f64; AXES]> {
        self.front().iter().map(|m| m.axes).collect()
    }
}

fn lex_cmp(a: &[f64; AXES], b: &[f64; AXES]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// Deterministic Monte-Carlo hypervolume of `front` w.r.t. `reference`
/// (minimization: the volume between the front and the reference point that
/// the front dominates).
///
/// Samples are drawn uniformly from the box `[ideal, reference]` where
/// `ideal` is the componentwise minimum of the front; the estimate is the
/// dominated fraction times the box volume. The same `seed` and `samples`
/// always give the same value. `reference` should strictly exceed every
/// front point on every axis, otherwise degenerate axes collapse the box
/// (and the true 5-D volume) to zero.
pub fn hypervolume(front: &[[f64; AXES]], reference: &[f64; AXES], samples: usize, seed: u64) -> f64 {
    if front.is_empty() || samples == 0 {
        return 0.0;
    }
    let mut ideal = [f64::INFINITY; AXES];
    for p in front {
        for (i, v) in p.iter().enumerate() {
            ideal[i] = ideal[i].min(*v);
        }
    }
    let mut widths = [0.0f64; AXES];
    let mut volume = 1.0f64;
    for i in 0..AXES {
        widths[i] = (reference[i] - ideal[i]).max(0.0);
        volume *= widths[i];
    }
    if volume <= 0.0 {
        return 0.0;
    }
    // splitmix64: tiny, deterministic, dependency-free uniform stream.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut dominated = 0usize;
    for _ in 0..samples {
        let mut x = [0.0f64; AXES];
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = ideal[i] + widths[i] * next();
        }
        if front.iter().any(|p| weakly_dominates(p, &x)) {
            dominated += 1;
        }
    }
    volume * dominated as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_keeps_only_non_dominated_members() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.insert([10.0, 5.0, 5.0, 5.0, 5.0], "a"));
        assert!(a.insert([5.0, 10.0, 5.0, 5.0, 5.0], "b"), "trade-off joins the front");
        assert!(!a.insert([11.0, 6.0, 6.0, 6.0, 6.0], "c"), "dominated point rejected");
        assert!(a.insert([4.0, 4.0, 4.0, 4.0, 4.0], "d"), "dominator evicts both");
        assert_eq!(a.len(), 1);
        assert_eq!(a.members()[0].item, "d");
    }

    #[test]
    fn exact_duplicates_keep_the_first_insertion() {
        let mut a = ParetoArchive::unbounded();
        assert!(a.insert([3.0, 3.0, 3.0, 3.0, 3.0], "first"));
        assert!(!a.insert([3.0, 3.0, 3.0, 3.0, 3.0], "second"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.members()[0].item, "first");
    }

    #[test]
    fn bounded_archive_evicts_the_lexicographically_largest() {
        let mut a = ParetoArchive::new(2);
        assert!(a.insert([1.0, 9.0, 0.0, 0.0, 0.0], "fast"));
        assert!(a.insert([9.0, 1.0, 0.0, 0.0, 0.0], "cheap"));
        // New trade-off overflows the bound; "cheap" (worst cycles) goes.
        assert!(a.insert([5.0, 5.0, 0.0, 0.0, 0.0], "mid"));
        let items: Vec<_> = a.front().iter().map(|m| m.item).collect();
        assert_eq!(items, vec!["fast", "mid"]);
        // A new member that is itself the lexicographic maximum is dropped
        // immediately: insert reports it did not survive.
        assert!(!a.insert([7.0, 2.0, 0.0, 0.0, 0.0], "late"));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn dominance_predicates() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 2.0, 3.0, 4.0, 6.0];
        assert!(weakly_dominates(&a, &b) && strictly_dominates(&a, &b));
        assert!(weakly_dominates(&a, &a) && !strictly_dominates(&a, &a));
        assert!(!weakly_dominates(&b, &a));
    }

    #[test]
    fn nan_axes_are_rejected() {
        let mut a = ParetoArchive::unbounded();
        assert!(!a.insert([f64::NAN, 0.0, 0.0, 0.0, 0.0], ()));
        assert!(a.is_empty());
    }

    #[test]
    fn hypervolume_of_the_ideal_corner_fills_the_box() {
        // One point at the box's lower corner dominates every sample.
        let front = [[0.0, 0.0, 0.0, 0.0, 0.0]];
        let reference = [2.0, 1.0, 1.0, 1.0, 1.0];
        let hv = hypervolume(&front, &reference, 4_000, 7);
        assert!((hv - 2.0).abs() < 1e-9, "expected exactly the box volume, got {hv}");
    }

    #[test]
    fn hypervolume_is_deterministic_and_monotone() {
        let f1 = vec![[5.0, 5.0, 5.0, 5.0, 5.0]];
        let mut f2 = f1.clone();
        f2.push([2.0, 8.0, 8.0, 8.0, 8.0]);
        let reference = [10.0; AXES];
        let a = hypervolume(&f1, &reference, 8_000, 42);
        let b = hypervolume(&f1, &reference, 8_000, 42);
        assert_eq!(a, b, "same seed, same estimate");
        let c = hypervolume(&f2, &reference, 8_000, 42);
        assert!(c >= a, "adding a non-dominated point cannot shrink the volume");
        assert_eq!(hypervolume(&[], &reference, 8_000, 42), 0.0);
    }
}
