//! Multi-objective DSE: what "better" means.
//!
//! The paper's DSE loop (§4.4) minimizes a single latency objective, but the
//! surrogate already predicts DSP/BRAM/LUT/FF and validity. This module
//! makes the objective explicit and pluggable:
//!
//! * [`Objective`] — the contract an exploration optimizes: an
//!   [`ObjectiveKind`] (scalar latency, weighted sum, or true Pareto), the
//!   eq. 7 utilization threshold, and an optional per-device
//!   [`ResourceBudget`];
//! * [`Score`] — an ordered, dominance-aware value replacing the implicit
//!   raw-`f64` (cycles) comparisons the explorers were hard-wired to;
//! * [`ResourceBudget`] — optional per-axis utilization caps
//!   (`dsp=0.8,bram=0.7`), enforced on oracle results directly and on
//!   surrogate candidates through the validity head plus predicted
//!   utilization.
//!
//! With the default objective (latency, threshold 0.8, no budget) every
//! comparison reduces exactly to the pre-multi-objective behavior, so the
//! four §4.1 explorers remain bit-identical through the new API.

use crate::inference::Prediction;
use merlin_sim::{HlsResult, Utilization};
use serde::{Deserialize, Serialize};

/// Optional per-axis utilization caps, checked on top of the global eq. 7
/// threshold. `None` on an axis means "no cap beyond the threshold".
///
/// Budgets model per-device headroom: a board whose DSPs are shared with
/// another kernel can cap `dsp` at 0.5 while leaving BRAM free.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// DSP utilization cap (fraction of the device).
    pub dsp: Option<f64>,
    /// BRAM utilization cap.
    pub bram: Option<f64>,
    /// LUT utilization cap.
    pub lut: Option<f64>,
    /// FF utilization cap.
    pub ff: Option<f64>,
}

impl ResourceBudget {
    /// No caps on any axis.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether no axis is capped.
    pub fn is_unbounded(&self) -> bool {
        self.dsp.is_none() && self.bram.is_none() && self.lut.is_none() && self.ff.is_none()
    }

    /// Whether `util` stays within every capped axis.
    pub fn admits(&self, util: &Utilization) -> bool {
        self.dsp.is_none_or(|b| util.dsp <= b)
            && self.bram.is_none_or(|b| util.bram <= b)
            && self.lut.is_none_or(|b| util.lut <= b)
            && self.ff.is_none_or(|b| util.ff <= b)
    }

    /// Parses the CLI form `dsp=0.8,bram=0.7` (axes: `dsp`, `bram`, `lut`,
    /// `ff`; each at most once; fractions in `(0, 1]`).
    ///
    /// # Errors
    ///
    /// Unknown axis, bad number, out-of-range fraction, or duplicate axis.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut budget = ResourceBudget::none();
        for item in s.split(',').filter(|i| !i.is_empty()) {
            let (axis, value) = item
                .split_once('=')
                .ok_or_else(|| format!("bad budget item `{item}` (want axis=fraction)"))?;
            let v: f64 = value
                .parse()
                .map_err(|e| format!("bad budget fraction in `{item}`: {e}"))?;
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("budget fraction in `{item}` must be in (0, 1]"));
            }
            let slot = match axis {
                "dsp" => &mut budget.dsp,
                "bram" => &mut budget.bram,
                "lut" => &mut budget.lut,
                "ff" => &mut budget.ff,
                other => return Err(format!("unknown budget axis `{other}` (dsp|bram|lut|ff)")),
            };
            if slot.replace(v).is_some() {
                return Err(format!("budget axis `{axis}` given twice"));
            }
        }
        Ok(budget)
    }
}

impl std::fmt::Display for ResourceBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (name, v) in
            [("dsp", self.dsp), ("bram", self.bram), ("lut", self.lut), ("ff", self.ff)]
        {
            if let Some(v) = v {
                if !first {
                    f.write_str(",")?;
                }
                write!(f, "{name}={v}")?;
                first = false;
            }
        }
        if first {
            f.write_str("unbounded")?;
        }
        Ok(())
    }
}

/// Weights of the weighted-sum objective. Latency enters as `log2(cycles)`
/// (the same transform the trainer uses, eq. 11) so one objective unit means
/// "halve the latency"; utilizations enter as raw fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight on `log2(cycles)`.
    pub cycles: f64,
    /// Weight on DSP utilization.
    pub dsp: f64,
    /// Weight on BRAM utilization.
    pub bram: f64,
    /// Weight on LUT utilization.
    pub lut: f64,
    /// Weight on FF utilization.
    pub ff: f64,
}

impl Default for ObjectiveWeights {
    /// Latency-dominant: one halving of latency outweighs 25% of any
    /// resource axis.
    fn default() -> Self {
        Self { cycles: 1.0, dsp: 0.25, bram: 0.25, lut: 0.25, ff: 0.25 }
    }
}

impl ObjectiveWeights {
    /// The weighted objective value (lower is better).
    pub fn combine(&self, cycles: u64, util: &Utilization) -> f64 {
        self.cycles * (cycles.max(1) as f64).log2()
            + self.dsp * util.dsp
            + self.bram * util.bram
            + self.lut * util.lut
            + self.ff * util.ff
    }
}

/// Which quantity an exploration minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveKind {
    /// Minimize latency alone — the paper's implicit contract.
    Latency,
    /// Minimize a weighted sum of `log2(cycles)` and the four utilizations.
    Weighted(ObjectiveWeights),
    /// True multi-objective: minimize (cycles, dsp, bram, lut, ff) jointly;
    /// outcomes are Pareto fronts, not single winners.
    Pareto,
}

/// The full objective an exploration optimizes: kind, eq. 7 utilization
/// threshold, and optional per-axis resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// What to minimize.
    pub kind: ObjectiveKind,
    /// Utilization constraint `T_u` (eq. 7): infeasible above it.
    pub util_threshold: f64,
    /// Per-axis caps on top of the threshold.
    pub budget: ResourceBudget,
}

impl Default for Objective {
    fn default() -> Self {
        Objective::latency()
    }
}

impl Objective {
    /// Minimize cycles under the default 0.8 threshold, no budget — exactly
    /// the pre-multi-objective contract.
    pub fn latency() -> Self {
        Self { kind: ObjectiveKind::Latency, util_threshold: 0.8, budget: ResourceBudget::none() }
    }

    /// Minimize a weighted sum under the default threshold.
    pub fn weighted(weights: ObjectiveWeights) -> Self {
        Self { kind: ObjectiveKind::Weighted(weights), ..Self::latency() }
    }

    /// True Pareto exploration under the default threshold.
    pub fn pareto() -> Self {
        Self { kind: ObjectiveKind::Pareto, ..Self::latency() }
    }

    /// Replaces the utilization threshold.
    pub fn with_util_threshold(mut self, threshold: f64) -> Self {
        self.util_threshold = threshold;
        self
    }

    /// Replaces the resource budget.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Whether an oracle result satisfies every constraint: synthesized,
    /// under the threshold, within the budget.
    pub fn feasible_result(&self, r: &HlsResult) -> bool {
        r.is_valid() && r.util.fits(self.util_threshold) && self.budget.admits(&r.util)
    }

    /// Whether a surrogate prediction satisfies every constraint: the
    /// validity head says valid (p >= 0.5), predicted utilization under the
    /// threshold and within the budget.
    pub fn feasible_prediction(&self, p: &Prediction) -> bool {
        p.usable(self.util_threshold) && self.budget.admits(&p.util)
    }

    /// Scores an oracle result.
    pub fn score_result(&self, r: &HlsResult) -> Score {
        if !self.feasible_result(r) {
            return Score::Infeasible;
        }
        self.score_axes(r.cycles, &r.util)
    }

    /// Scores a surrogate prediction.
    pub fn score_prediction(&self, p: &Prediction) -> Score {
        if !self.feasible_prediction(p) {
            return Score::Infeasible;
        }
        self.score_axes(p.cycles, &p.util)
    }

    fn score_axes(&self, cycles: u64, util: &Utilization) -> Score {
        match self.kind {
            ObjectiveKind::Latency => Score::Cycles(cycles),
            ObjectiveKind::Weighted(w) => Score::Weighted(w.combine(cycles, util)),
            ObjectiveKind::Pareto => {
                Score::Front { cycles, util: [util.dsp, util.bram, util.lut, util.ff] }
            }
        }
    }
}

/// An ordered, dominance-aware objective value — what the redesigned
/// [`Explorer`](crate::explorer::Explorer) trait compares instead of raw
/// `f64` cycles.
///
/// Within one objective mode the variants form a total preference
/// ([`Score::better_than`]): exact `u64` cycle comparison for latency (so
/// the default objective reproduces the old explorers bit for bit),
/// `total_cmp` for weighted sums, and lexicographic (cycles first) for
/// Pareto vectors — hill climbers need a total order to move; dominance
/// proper lives in [`ParetoArchive`](crate::pareto::ParetoArchive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Score {
    /// Fails a constraint (invalid, over threshold, or over budget).
    /// Never preferred over anything.
    Infeasible,
    /// Latency objective: exact cycle count, lower is better.
    Cycles(u64),
    /// Weighted-sum objective value, lower is better.
    Weighted(f64),
    /// Pareto objective vector: cycles plus the four utilization axes.
    Front {
        /// Latency in cycles.
        cycles: u64,
        /// (dsp, bram, lut, ff) utilization fractions.
        util: [f64; 4],
    },
}

impl Score {
    /// Whether the score passed every constraint.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, Score::Infeasible)
    }

    /// Strict total preference within one objective mode. A feasible score
    /// always beats [`Score::Infeasible`]; scores of different feasible
    /// modes are incomparable (`false`).
    pub fn better_than(&self, other: &Score) -> bool {
        use std::cmp::Ordering::Less;
        match (self, other) {
            (Score::Infeasible, _) => false,
            (_, Score::Infeasible) => true,
            (Score::Cycles(a), Score::Cycles(b)) => a < b,
            (Score::Weighted(a), Score::Weighted(b)) => a.total_cmp(b) == Less,
            (Score::Front { cycles: ca, util: ua }, Score::Front { cycles: cb, util: ub }) => {
                match ca.cmp(cb) {
                    Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        ua.iter().zip(ub).find_map(|(a, b)| match a.total_cmp(b) {
                            std::cmp::Ordering::Equal => None,
                            ord => Some(ord == Less),
                        }) == Some(true)
                    }
                }
            }
            _ => false,
        }
    }

    /// A scalar view for code that needs one number (annealing energy,
    /// sampler rewards): cycles for [`Score::Cycles`] and [`Score::Front`],
    /// the sum for [`Score::Weighted`], `None` when infeasible.
    pub fn scalar(&self) -> Option<f64> {
        match self {
            Score::Infeasible => None,
            Score::Cycles(c) | Score::Front { cycles: c, .. } => Some(*c as f64),
            Score::Weighted(w) => Some(*w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn util(dsp: f64, bram: f64, lut: f64, ff: f64) -> Utilization {
        Utilization { dsp, bram, lut, ff }
    }

    fn valid_result(cycles: u64, u: Utilization) -> HlsResult {
        HlsResult {
            validity: merlin_sim::Validity::Valid,
            cycles,
            counts: merlin_sim::ResourceCounts::default(),
            util: u,
            synth_minutes: 5.0,
        }
    }

    #[test]
    fn budget_parses_and_admits() {
        let b = ResourceBudget::parse("dsp=0.8,bram=0.7").unwrap();
        assert_eq!(b.dsp, Some(0.8));
        assert_eq!(b.bram, Some(0.7));
        assert!(b.lut.is_none() && b.ff.is_none());
        assert!(b.admits(&util(0.8, 0.7, 0.99, 0.99)));
        assert!(!b.admits(&util(0.81, 0.1, 0.1, 0.1)));
        assert!(!b.admits(&util(0.1, 0.71, 0.1, 0.1)));
        assert_eq!(b.to_string(), "dsp=0.8,bram=0.7");
        assert!(ResourceBudget::none().is_unbounded());
        assert_eq!(ResourceBudget::none().to_string(), "unbounded");
    }

    #[test]
    fn budget_rejects_bad_input() {
        assert!(ResourceBudget::parse("dsp=1.5").is_err());
        assert!(ResourceBudget::parse("dsp=0").is_err());
        assert!(ResourceBudget::parse("gpu=0.5").is_err());
        assert!(ResourceBudget::parse("dsp=0.5,dsp=0.6").is_err());
        assert!(ResourceBudget::parse("dsp").is_err());
        assert!(ResourceBudget::parse("dsp=abc").is_err());
    }

    #[test]
    fn default_objective_matches_the_legacy_contract() {
        let obj = Objective::latency();
        let good = valid_result(100, util(0.5, 0.5, 0.5, 0.5));
        let hot = valid_result(50, util(0.9, 0.1, 0.1, 0.1));
        assert!(obj.feasible_result(&good));
        assert!(!obj.feasible_result(&hot), "threshold 0.8 rejects 0.9 dsp");
        assert_eq!(obj.score_result(&good), Score::Cycles(100));
        assert_eq!(obj.score_result(&hot), Score::Infeasible);
        // Exact cycle ordering, feasible beats infeasible.
        assert!(Score::Cycles(99).better_than(&Score::Cycles(100)));
        assert!(!Score::Cycles(100).better_than(&Score::Cycles(100)));
        assert!(Score::Cycles(u64::MAX).better_than(&Score::Infeasible));
        assert!(!Score::Infeasible.better_than(&Score::Cycles(u64::MAX)));
    }

    #[test]
    fn budget_tightens_feasibility() {
        let obj = Objective::latency().with_budget(ResourceBudget::parse("dsp=0.4").unwrap());
        let r = valid_result(100, util(0.5, 0.1, 0.1, 0.1));
        assert!(!obj.feasible_result(&r), "fits the threshold but not the budget");
        assert!(Objective::latency().feasible_result(&r));
    }

    #[test]
    fn weighted_scores_order_by_the_sum() {
        let obj = Objective::weighted(ObjectiveWeights::default());
        let cheap = obj.score_result(&valid_result(200, util(0.1, 0.1, 0.1, 0.1)));
        let pricey = obj.score_result(&valid_result(200, util(0.7, 0.7, 0.7, 0.7)));
        assert!(cheap.better_than(&pricey));
        // Halving latency (weight 1 on log2) beats 25% of one resource axis.
        let fast = obj.score_result(&valid_result(100, util(0.35, 0.1, 0.1, 0.1)));
        assert!(fast.better_than(&cheap));
    }

    #[test]
    fn front_scores_prefer_lexicographically() {
        let obj = Objective::pareto();
        let a = obj.score_result(&valid_result(100, util(0.3, 0.3, 0.3, 0.3)));
        let b = obj.score_result(&valid_result(100, util(0.3, 0.4, 0.3, 0.3)));
        let c = obj.score_result(&valid_result(99, util(0.9, 0.9, 0.9, 0.9)).clone());
        assert!(a.better_than(&b), "same cycles, lower bram wins");
        assert!(!b.better_than(&a));
        assert!(!a.better_than(&a));
        assert_eq!(c, Score::Infeasible, "threshold still applies in pareto mode");
    }

    #[test]
    fn prediction_feasibility_uses_the_validity_head() {
        let obj = Objective::latency().with_budget(ResourceBudget::parse("lut=0.5").unwrap());
        let mut p = Prediction { valid_prob: 0.9, cycles: 100, util: util(0.2, 0.2, 0.4, 0.2) };
        assert!(obj.feasible_prediction(&p));
        p.valid_prob = 0.4;
        assert!(!obj.feasible_prediction(&p), "validity head gates the budget check");
        p.valid_prob = 0.9;
        p.util.lut = 0.6;
        assert!(!obj.feasible_prediction(&p), "budget applies to predicted util");
    }

    #[test]
    fn scalar_views() {
        assert_eq!(Score::Cycles(42).scalar(), Some(42.0));
        assert_eq!(Score::Front { cycles: 42, util: [0.0; 4] }.scalar(), Some(42.0));
        assert_eq!(Score::Weighted(1.5).scalar(), Some(1.5));
        assert_eq!(Score::Infeasible.scalar(), None);
    }
}
