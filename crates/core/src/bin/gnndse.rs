//! `gnndse` — command-line front end for the GNN-DSE framework.
//!
//! ```text
//! gnndse kernels                                   list kernels and design spaces
//! gnndse evaluate <kernel> <index>                 evaluate one design with the HLS model
//! gnndse report <kernel> <index>                   per-loop synthesis report (II, cycles)
//! gnndse emit <kernel> [index]                     Merlin-annotated C (placeholders or filled)
//! gnndse gendb <out.json> [budget] [seed]          generate a training database
//! gnndse train <db.json> [model.json] [epochs]     train the surrogate (M7);
//!                                                  --save model.gdse writes a binary artifact,
//!                                                  --save-quant model_q.gdse an int8 one
//! gnndse dse <model> <kernel> [top_m]              surrogate-driven DSE (or --model model.gdse)
//! gnndse predict <model> <kernel> <index>          predict one design point locally
//! gnndse predict <kernel> <index> --addr H:P       ... or against a running server
//! gnndse rounds <db.json>                          iterative DSE rounds (Fig. 7);
//!                                                  --model model.gdse seeds round 1
//! gnndse serve --model model.gdse                  serve predictions over JSON-lines TCP
//!                                                  (--quant serves the int8 inference path)
//! gnndse daemon --db db.json --model model.gdse    serve + background fine-tune/hot-swap
//! gnndse admin <addr> <reload|kill-replica N|shutdown>   control a running server
//! gnndse admin <addr> stats [--prom]               live telemetry (JSON or Prometheus text)
//! gnndse admin <addr> trace <id|slow>              span timelines from the flight recorder
//! gnndse admin <addr> learn-status                 continuous-learning driver status
//! gnndse chaos-proxy --upstream H:P                TCP fault-injection proxy (tests/CI)
//! ```
//!
//! Model files are sniffed by content: binary `.gdse` artifacts (written by
//! `train --save`, validated by checksum, byte-identical predictions after
//! load) and the legacy JSON model files are both accepted wherever a model
//! path is expected.
//!
//! `gendb` and `rounds` drive a *fault-injected* oracle when `--fault-rate`
//! is set: evaluations randomly crash / time out / return garbled reports
//! (reproducibly, per `--fault-seed`), a retrying harness absorbs the
//! transient failures (`--max-retries`), and losses are reported instead of
//! aborting the run. `rounds` additionally supports crash-safe
//! `--checkpoint <file>` persistence and `--resume`.
//!
//! `dse` and `rounds` share the multi-objective flags: `--objective
//! latency|weighted|pareto` picks what "better" means (scalar latency, a
//! weighted latency/resource sum, or a true Pareto front over cycles and
//! the four resource axes), `--budget dsp=0.8,bram=0.7` adds per-device
//! resource-budget constraints enforced through the surrogate's validity
//! head, and `--explorer sweep|gflow` chooses between the priority-order
//! candidate sweep and the learned GFlowNet-style trajectory sampler. In
//! `pareto` mode the DSE also logs the predicted front, and every round
//! report carries its validated front.
//!
//! `serve` answers concurrent clients through a supervised pool of
//! `--replicas N` workers, each owning its own copy of the model behind a
//! bounded queue with micro-batched inference (`--queue`, `--batch`); a full
//! queue rejects with a 429-style response instead of stalling, a crashed
//! or wedged replica restarts under supervision while its requests are
//! re-routed to siblings, and `--max-requests N` stops the server
//! gracefully after N answers (useful for smoke tests). With a `.gdse`
//! artifact, `--reload` watches the file and hot-swaps the model with
//! zero downtime whenever it changes (a `gnndse admin <addr> reload`
//! forces the same swap); a corrupt replacement is rejected — checksum
//! plus canary prediction — and the previous model keeps serving.
//! `serve.*` metrics land in `--metrics-out`.
//!
//! Every request is traced end to end: the server adopts the client's
//! `trace_id` (or mints one), stamps `ingress`/`route`/`queue_wait`/
//! `batch_wait`/`infer`/`write` spans, echoes the id on the response, and
//! remembers recent timelines in a bounded in-memory flight recorder
//! (`--trace-capacity N` per replica). `--trace-slow-ms MS` dumps a Warn
//! log line with the full span timeline for any slower request. `admin
//! <addr> stats` reads live per-replica depth/epoch/restart state and
//! interpolated p50/p95/p99 latency quantiles from the *running* server
//! (`--prom` renders Prometheus text exposition); `admin <addr> trace
//! slow` (or a concrete id) fetches remembered span timelines.
//!
//! `daemon` is the continuous-learning mode: the same replicated server as
//! `serve`, plus a background campaign driver that interleaves DSE, oracle
//! validation, and fine-tuning with serving. Each round's freshly validated
//! results enter a bounded, dedup-by-config replay buffer; the fine-tuned
//! model is written atomically over the served `.gdse` artifact and
//! hot-swapped (canary-validated, rolled back on rejection while the old
//! epoch keeps serving). Campaign checkpoint and replay window are
//! crash-safe: a killed daemon restarted on the same paths resumes
//! learning where it stopped. `gnndse admin <addr> learn-status` reads the
//! driver state, and `learn.*` metrics ride the live telemetry plane.
//!
//! `chaos-proxy` places deterministic TCP faults (drop / delay / truncate
//! / mid-response-kill) between a client and a server — how the chaos
//! tests and the CI smoke prove the resilience story end to end.
//!
//! `gendb`, `rounds` and `dse` also take the observability flags
//! `--log-level <error|warn|info|debug|trace>`, `--log-json <log.jsonl>`
//! (mirror every log record to a JSONL file) and
//! `--metrics-out <report.json>` (write a [`gdse_obs::RunReport`] with
//! per-stage wall-time, oracle retry/fault counts, and the surrogate's
//! modelled speedup at the end of the run).

use design_space::DesignSpace;
use gdse_gnn::{ModelConfig, ModelKind};
use gdse_obs as obs;
use gdse_serve::{ChaosConfig, ChaosProxy, Client, ClientConfig, Response, ServeConfig, Server};
use gnn_dse::dse::{run_dse_with_engine, CandidateSampler, DseConfig};
use gnn_dse::harness::{HarnessBuilder, RetryPolicy};
use gnn_dse::objective::{Objective, ObjectiveKind, ObjectiveWeights, ResourceBudget};
use gnn_dse::parallel::ExecEngine;
use gnn_dse::rounds::{run_rounds_with_engine, RoundsConfig};
use gnn_dse::trainer::TrainConfig;
use gnn_dse::{dbgen, ArtifactMeta, ArtifactProvider, Database, PredictService, Predictor, QuantPredictor};
use hls_ir::kernels;
use merlin_sim::{FaultConfig, MerlinSimulator};
use proggraph::build_graph_bidirectional;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("kernels") => cmd_kernels(),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("emit") => cmd_emit(&args[1..]),
        Some("gendb") => cmd_gendb(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("dse") => cmd_dse(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("rounds") => cmd_rounds(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("daemon") => cmd_daemon(&args[1..]),
        Some("admin") => cmd_admin(&args[1..]),
        Some("chaos-proxy") => cmd_chaos_proxy(&args[1..]),
        _ => {
            eprintln!(
                "usage: gnndse <kernels|evaluate|report|emit|gendb|train|dse|predict|rounds|serve|daemon|admin|chaos-proxy> ..."
            );
            eprintln!("see the crate docs for details");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), String>;

/// Splits `args` into positionals and `--name value` options (`--name`
/// alone for the flags listed in `boolean`). Unknown flags are rejected so
/// typos fail loudly instead of being silently ignored.
fn split_flags(
    args: &[String],
    valued: &[&str],
    boolean: &[&str],
) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if boolean.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
            } else if valued.contains(&name) {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                flags.insert(name.to_string(), v.clone());
            } else {
                return Err(format!(
                    "unknown flag --{name} (known: {})",
                    valued
                        .iter()
                        .chain(boolean)
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    Ok((positional, flags))
}

/// Parses flag `name` as `T`, or returns `default` when absent.
fn flag_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("bad value for --{name}: {e}")),
        None => Ok(default),
    }
}

/// The observability flags shared by `gendb`, `rounds` and `dse`:
/// `--log-level` sets the verbosity, `--log-json` mirrors every record to a
/// JSONL file. Returns the `--metrics-out` path, if any.
fn obs_args(flags: &HashMap<String, String>) -> Result<Option<PathBuf>, String> {
    let level: obs::Level = flag_or(flags, "log-level", obs::Level::Info)?;
    let json_path = flags.get("log-json").map(PathBuf::from);
    obs::log::init(obs::LogConfig { level, human: obs::HumanStyle::Plain, json_path })
        .map_err(|e| format!("cannot open --log-json file: {e}"))?;
    Ok(flags.get("metrics-out").map(PathBuf::from))
}

/// Builds the run report from everything the command recorded and writes it
/// atomically to `path`.
fn write_metrics(path: &Path, command: &str, started: Instant) -> CliResult {
    let report = gnn_dse::report::write_run_report(path, command, started.elapsed())
        .map_err(|e| format!("cannot write --metrics-out file: {e}"))?;
    obs::info!(
        "metrics.written",
        "wrote run report ({} stages, {} counters) to {}",
        report.stages.len(),
        report.counters.len(),
        path.display()
    );
    Ok(())
}

/// Builds the execution engine from `--jobs N` (default: the machine's
/// available parallelism). `--jobs 1` runs the same batched code paths
/// serially, so any jobs count produces byte-identical outputs for the
/// same seed.
fn jobs_arg(flags: &HashMap<String, String>) -> Result<ExecEngine, String> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    let jobs: usize = flag_or(flags, "jobs", default)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    obs::debug!("exec.jobs", "running on {jobs} workers"; jobs = jobs);
    Ok(ExecEngine::builder().jobs(jobs).build())
}

/// The `--objective`/`--budget`/`--explorer` triple shared by `dse` and
/// `rounds`: what "better" means (`latency`, `weighted`, or a true `pareto`
/// front), the per-device resource budget (`dsp=0.8,bram=0.7`, enforced via
/// the validity head), and which candidate sampler proposes configurations
/// (`sweep` or the learned `gflow` trajectory sampler).
fn objective_args(
    flags: &HashMap<String, String>,
) -> Result<(Objective, CandidateSampler), String> {
    let mut objective = match flags.get("objective").map(String::as_str) {
        None | Some("latency") => Objective::latency(),
        Some("weighted") => Objective::weighted(ObjectiveWeights::default()),
        Some("pareto") => Objective::pareto(),
        Some(other) => {
            return Err(format!("--objective must be latency|weighted|pareto, got '{other}'"))
        }
    };
    if let Some(spec) = flags.get("budget") {
        let budget = ResourceBudget::parse(spec).map_err(|e| format!("bad --budget: {e}"))?;
        objective = objective.with_budget(budget);
    }
    let sampler: CandidateSampler = flag_or(flags, "explorer", CandidateSampler::default())?;
    Ok((objective, sampler))
}

/// The `--fault-rate`/`--fault-seed`/`--max-retries` triple shared by
/// `gendb` and `rounds`, parsed into the harness builder.
fn fault_args(
    flags: &HashMap<String, String>,
) -> Result<(FaultConfig, HarnessBuilder), String> {
    let rate: f64 = flag_or(flags, "fault-rate", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must be in [0, 1], got {rate}"));
    }
    let seed: u64 = flag_or(flags, "fault-seed", 0)?;
    let max_retries: u32 = flag_or(flags, "max-retries", 3)?;
    let faults = FaultConfig::uniform(rate, seed);
    let builder = HarnessBuilder::new()
        .faults(faults)
        .retry_policy(RetryPolicy::with_max_retries(max_retries));
    Ok((faults, builder))
}

/// Loads a model file, sniffing the format by content: binary `.gdse`
/// artifacts (magic `GDSE`) decode through the checksummed envelope, and
/// anything else is treated as a legacy JSON model file.
fn load_model(path: &Path) -> Result<Predictor, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if bytes.starts_with(&gdse_gnn::artifact::MAGIC) {
        let (predictor, meta) =
            gnn_dse::decode_predictor(&bytes).map_err(|e| e.to_string())?;
        obs::info!(
            "model.loaded",
            "loaded artifact {} ({}, {} kernels, {} epochs, seed {})",
            path.display(),
            meta.model,
            meta.kernels.len(),
            meta.epochs,
            meta.seed;
            model = meta.model,
            kernels = meta.kernels.len(),
            epochs = meta.epochs,
        );
        Ok(predictor)
    } else {
        Predictor::load(path).map_err(|e| e.to_string())
    }
}

fn cmd_kernels() -> CliResult {
    println!("{:<14} {:>9} {:>18} {:>7} {:>7}", "kernel", "#pragmas", "#configs", "loops", "role");
    for k in kernels::all_kernels() {
        let space = DesignSpace::from_kernel(&k);
        let unseen = kernels::unseen_kernels().iter().any(|u| u.name() == k.name());
        println!(
            "{:<14} {:>9} {:>18} {:>7} {:>7}",
            k.name(),
            space.num_slots(),
            space.size(),
            k.loops().len(),
            if unseen { "unseen" } else { "train" }
        );
    }
    Ok(())
}

fn lookup_kernel(name: &str) -> Result<hls_ir::Kernel, String> {
    if name == "toy" {
        return Ok(kernels::toy());
    }
    kernels::kernel_by_name(name).ok_or_else(|| format!("unknown kernel `{name}`"))
}

fn cmd_evaluate(args: &[String]) -> CliResult {
    let [kernel, index] = args else {
        return Err("usage: gnndse evaluate <kernel> <index>".into());
    };
    let kernel = lookup_kernel(kernel)?;
    let space = DesignSpace::from_kernel(&kernel);
    let index: u128 = index.parse().map_err(|e| format!("bad index: {e}"))?;
    if index >= space.size() {
        return Err(format!("index {index} out of space of size {}", space.size()));
    }
    let point = space.point_at(index);
    let r = MerlinSimulator::new().evaluate(&kernel, &space, &point);
    println!("design : {}", point.describe(space.slots()));
    println!("status : {}", r.validity);
    if r.is_valid() {
        println!("cycles : {}", r.cycles);
        println!(
            "counts : {} DSP, {} BRAM18, {} LUT, {} FF",
            r.counts.dsp, r.counts.bram18, r.counts.lut, r.counts.ff
        );
        println!(
            "util   : dsp {:.3}, bram {:.3}, lut {:.3}, ff {:.3} (fits<0.8: {})",
            r.util.dsp,
            r.util.bram,
            r.util.lut,
            r.util.ff,
            r.util.fits(0.8)
        );
        println!("tool   : {:.1} modelled minutes", r.synth_minutes);
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> CliResult {
    let [kernel, index] = args else {
        return Err("usage: gnndse report <kernel> <index>".into());
    };
    let kernel = lookup_kernel(kernel)?;
    let space = DesignSpace::from_kernel(&kernel);
    let index: u128 = index.parse().map_err(|e| format!("bad index: {e}"))?;
    if index >= space.size() {
        return Err(format!("index {index} out of space of size {}", space.size()));
    }
    let point = space.point_at(index);
    println!("design: {}\n", point.describe(space.slots()));
    let Some(rows) = MerlinSimulator::new().report(&kernel, &space, &point) else {
        return Err("design is invalid; no report".into());
    };
    println!(
        "{:<6} {:>8} {:>9} {:>5} {:>9} {:>6} {:>12}",
        "loop", "trip", "parallel", "tile", "pipeline", "II", "cycles"
    );
    for r in &rows {
        println!(
            "{:<6} {:>8} {:>9} {:>5} {:>9} {:>6} {:>12}",
            r.label, r.trip_count, r.parallel, r.tile, r.pipeline, r.ii, r.cycles
        );
    }
    Ok(())
}

fn cmd_emit(args: &[String]) -> CliResult {
    let kernel_name = args.first().ok_or("usage: gnndse emit <kernel> [index]")?;
    let kernel = lookup_kernel(kernel_name)?;
    match args.get(1) {
        None => print!("{}", hls_ir::emit::emit_c(&kernel)),
        Some(index) => {
            let space = DesignSpace::from_kernel(&kernel);
            let index: u128 = index.parse().map_err(|e| format!("bad index: {e}"))?;
            if index >= space.size() {
                return Err(format!("index {index} out of space of size {}", space.size()));
            }
            let point = space.point_at(index);
            print!("{}", design_space::emit::emit_configured(&kernel, &space, &point));
        }
    }
    Ok(())
}

fn cmd_gendb(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(
        args,
        &[
            "jobs",
            "fault-rate",
            "fault-seed",
            "max-retries",
            "log-level",
            "log-json",
            "metrics-out",
        ],
        &[],
    )?;
    let usage = "usage: gnndse gendb <out.json> [budget] [seed] [--jobs N] \
                 [--fault-rate F] [--fault-seed S] [--max-retries N] \
                 [--log-level L] [--log-json log.jsonl] [--metrics-out report.json]";
    let out = pos.first().ok_or(usage)?;
    let budget: usize = pos.get(1).map_or(Ok(60), |s| s.parse()).map_err(|e| format!("{e}"))?;
    let seed: u64 = pos.get(2).map_or(Ok(42), |s| s.parse()).map_err(|e| format!("{e}"))?;
    let metrics_out = obs_args(&flags)?;
    let started = Instant::now();
    let (faults, harness_builder) = fault_args(&flags)?;
    let engine = jobs_arg(&flags)?;
    let ks = kernels::training_kernels();
    let db = if faults.is_disabled() {
        dbgen::generate_database_par(&engine, &MerlinSimulator::new(), &ks, &[], budget, seed)
    } else {
        let harness = harness_builder.build();
        let db = dbgen::generate_database_par(&engine, &harness, &ks, &[], budget, seed);
        let stats = harness.stats();
        obs::info!(
            "gendb.oracle",
            "oracle: {} attempts, {} transient failures retried, {} evaluations lost \
             ({} exhausted retries, {} permanent), {:.1}s virtual backoff",
            stats.attempts,
            stats.transient_failures,
            stats.losses(),
            stats.exhausted,
            stats.permanent_failures,
            stats.virtual_backoff_ms as f64 / 1e3;
            attempts = stats.attempts,
            transient_failures = stats.transient_failures,
            lost = stats.losses(),
            exhausted = stats.exhausted,
            permanent_failures = stats.permanent_failures,
            virtual_backoff_ms = stats.virtual_backoff_ms,
        );
        db
    };
    {
        let _io = obs::span::stage("io");
        db.save(Path::new(out)).map_err(|e| e.to_string())?;
    }
    obs::info!(
        "gendb.done",
        "wrote {} designs ({} valid) to {out}",
        db.len(),
        db.valid_count();
        designs = db.len(),
        valid = db.valid_count(),
        out = out.as_str(),
    );
    if let Some(p) = metrics_out {
        write_metrics(&p, "gendb", started)?;
    }
    Ok(())
}

fn cmd_rounds(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(
        args,
        &[
            "rounds",
            "out",
            "jobs",
            "model",
            "fault-rate",
            "fault-seed",
            "max-retries",
            "checkpoint",
            "stop-after",
            "objective",
            "budget",
            "explorer",
            "log-level",
            "log-json",
            "metrics-out",
        ],
        &["resume"],
    )?;
    let usage = "usage: gnndse rounds <db.json> [--rounds N] [--out out.json] [--jobs N] \
                 [--model model.gdse] \
                 [--fault-rate F] [--fault-seed S] [--max-retries N] \
                 [--checkpoint ck.json] [--resume] [--stop-after N] \
                 [--objective latency|weighted|pareto] [--budget dsp=0.8,bram=0.7] \
                 [--explorer sweep|gflow] \
                 [--log-level L] [--log-json log.jsonl] [--metrics-out report.json]";
    let db_path = pos.first().ok_or(usage)?;
    let n_rounds: usize = flag_or(&flags, "rounds", 4)?;
    let out = flags.get("out").cloned().unwrap_or_else(|| db_path.clone());
    let metrics_out = obs_args(&flags)?;
    let started = Instant::now();
    let (faults, harness_builder) = fault_args(&flags)?;
    let checkpoint = flags.get("checkpoint").cloned();
    let resume = flags.contains_key("resume");
    if resume && checkpoint.is_none() {
        return Err("--resume requires --checkpoint <file>".into());
    }
    let stop_after: Option<usize> = match flags.get("stop-after") {
        Some(v) => Some(v.parse().map_err(|e| format!("bad value for --stop-after: {e}"))?),
        None => None,
    };
    let mut model_ignored = false;
    let initial_model = match flags.get("model") {
        Some(p) if resume => {
            obs::warn!(
                "rounds.model",
                "--model {p} is ignored when resuming: the checkpoint already \
                 carries the training state"
            );
            model_ignored = true;
            None
        }
        Some(p) => Some(load_model(Path::new(p))?),
        None => None,
    };

    let mut db = {
        let _io = obs::span::stage("io");
        Database::load(Path::new(db_path)).map_err(|e| e.to_string())?
    };
    let ks: Vec<_> = kernels::all_kernels()
        .into_iter()
        .filter(|k| db.entries().iter().any(|e| e.kernel == k.name()))
        .collect();
    if ks.is_empty() {
        return Err(format!("{db_path} contains no known kernels"));
    }
    let (objective, sampler) = objective_args(&flags)?;
    let mut cfg =
        RoundsConfig { rounds: n_rounds, stop_after, initial_model, ..RoundsConfig::quick() };
    cfg.dse.objective = objective;
    cfg.dse.sampler = sampler;

    obs::info!(
        "rounds.start",
        "running {n_rounds} rounds over {} kernels ({} designs to start)...",
        ks.len(),
        db.len();
        rounds = n_rounds,
        kernels = ks.len(),
        designs = db.len(),
    );
    let engine = jobs_arg(&flags)?;
    let harness = harness_builder.build();
    run_rounds_with_engine(
        &mut db,
        &ks,
        &cfg,
        &harness,
        checkpoint.as_deref().map(Path::new),
        resume,
        &engine,
    )
    .map_err(|e| e.to_string())?;
    if model_ignored {
        // Surface the ignored flag in run_report.json too, not only on
        // stderr — scripted runs read the report, not the log. Booked
        // *after* the campaign: resuming restores the checkpoint's metrics
        // snapshot, which would wipe a counter booked earlier.
        obs::metrics::counter_inc("rounds.model_ignored");
    }

    let stats = harness.stats();
    if stats.attempts > 0 && !faults.is_disabled() {
        obs::info!(
            "rounds.oracle",
            "oracle: {} attempts, {} transient failures retried, {} evaluations lost, \
             {:.1}s virtual backoff",
            stats.attempts,
            stats.transient_failures,
            stats.losses(),
            stats.virtual_backoff_ms as f64 / 1e3;
            attempts = stats.attempts,
            transient_failures = stats.transient_failures,
            lost = stats.losses(),
            virtual_backoff_ms = stats.virtual_backoff_ms,
        );
    }
    {
        let _io = obs::span::stage("io");
        db.save(Path::new(&out)).map_err(|e| e.to_string())?;
    }
    obs::info!(
        "rounds.done",
        "wrote {} designs ({} valid) to {out}",
        db.len(),
        db.valid_count();
        designs = db.len(),
        valid = db.valid_count(),
        out = out.as_str(),
    );
    if let Some(p) = metrics_out {
        write_metrics(&p, "rounds", started)?;
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(args, &["save", "save-quant", "epochs"], &[])?;
    let usage = "usage: gnndse train <db.json> [model.json] [epochs] [--epochs N] \
                 [--save model.gdse] [--save-quant model_q.gdse]";
    let [db_path, rest @ ..] = &pos[..] else {
        return Err(usage.into());
    };
    let model_json = rest.first();
    let epochs: usize = match rest.get(1) {
        Some(s) => s.parse().map_err(|e| format!("bad epochs: {e}"))?,
        None => flag_or(&flags, "epochs", 40)?,
    };
    let save = flags.get("save").map(PathBuf::from);
    let save_quant = flags.get("save-quant").map(PathBuf::from);
    if model_json.is_none() && save.is_none() && save_quant.is_none() {
        return Err(format!(
            "nothing to write: give a model.json positional, --save model.gdse, \
             or --save-quant model_q.gdse\n{usage}"
        ));
    }
    let db = Database::load(Path::new(db_path)).map_err(|e| e.to_string())?;
    let ks = kernels::all_kernels();
    let referenced: Vec<_> = ks
        .into_iter()
        .filter(|k| db.entries().iter().any(|e| e.kernel == k.name()))
        .collect();
    let cfg = TrainConfig { epochs, ..TrainConfig::paper() };
    println!("training M7 on {} designs for {epochs} epochs...", db.len());
    let model_cfg = ModelConfig { hidden: 32, gnn_layers: 4, mlp_layers: 4, seed: 42 };
    let (p, _) = Predictor::train(&db, &referenced, ModelKind::Full, model_cfg, &cfg);
    if let Some(model_path) = model_json {
        p.save(Path::new(model_path)).map_err(|e| e.to_string())?;
        println!("saved model to {model_path}");
    }
    if save.is_some() || save_quant.is_some() {
        let trained_on: Vec<String> =
            referenced.iter().map(|k| k.name().to_string()).collect();
        let meta = ArtifactMeta::describe(&p, &trained_on, epochs);
        if let Some(path) = save {
            p.save_artifact(&path, &meta).map_err(|e| e.to_string())?;
            println!(
                "saved artifact ({}, {} kernels, schema v{}) to {}",
                meta.model,
                meta.kernels.len(),
                meta.schema_version,
                path.display()
            );
        }
        if let Some(path) = save_quant {
            let qp = QuantPredictor::quantize(&p);
            qp.save_artifact(&path, &meta).map_err(|e| e.to_string())?;
            let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            println!(
                "saved int8-quantized artifact ({}, {} kernels, {} KiB) to {} \
                 — serve it with `gnndse serve --quant`",
                meta.model,
                meta.kernels.len(),
                size / 1024,
                path.display()
            );
        }
    }
    Ok(())
}

fn cmd_dse(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(
        args,
        &[
            "top-m",
            "jobs",
            "model",
            "objective",
            "budget",
            "explorer",
            "log-level",
            "log-json",
            "metrics-out",
        ],
        &[],
    )?;
    let usage = "usage: gnndse dse <model> <kernel> [top_m] (or: gnndse dse <kernel> \
                 --model model.gdse) [--jobs N] \
                 [--objective latency|weighted|pareto] [--budget dsp=0.8,bram=0.7] \
                 [--explorer sweep|gflow] [--log-level L] \
                 [--log-json log.jsonl] [--metrics-out report.json]";
    let (model_path, kernel, rest) = match flags.get("model") {
        Some(m) => {
            let [kernel, rest @ ..] = &pos[..] else {
                return Err(usage.into());
            };
            (m.clone(), kernel, rest)
        }
        None => {
            let [model_path, kernel, rest @ ..] = &pos[..] else {
                return Err(usage.into());
            };
            (model_path.clone(), kernel, rest)
        }
    };
    let top_m: usize = match rest.first() {
        Some(s) => s.parse().map_err(|e| format!("{e}"))?,
        None => flag_or(&flags, "top-m", 10)?,
    };
    let metrics_out = obs_args(&flags)?;
    let started = Instant::now();
    let predictor = {
        let _io = obs::span::stage("io");
        load_model(Path::new(&model_path))?
    };
    let kernel = lookup_kernel(kernel)?;
    let space = DesignSpace::from_kernel(&kernel);
    let (objective, sampler) = objective_args(&flags)?;
    let cfg = DseConfig { top_m, objective, sampler, ..DseConfig::default() };
    let engine = jobs_arg(&flags)?;
    let graph = build_graph_bidirectional(&kernel, &space);
    let outcome = run_dse_with_engine(&predictor, &kernel, &space, &graph, &cfg, &engine);
    obs::info!(
        "dse.summary",
        "{} inferences in {:?} ({})",
        outcome.inferences,
        outcome.wall,
        if outcome.exhaustive { "exhaustive" } else { "heuristic" };
        kernel = kernel.name(),
        inferences = outcome.inferences,
        wall_us = outcome.wall,
        exhaustive = outcome.exhaustive,
    );
    let sim = MerlinSimulator::new();
    let _validate = obs::span::stage("validate");
    for (rank, (point, pred)) in outcome.top.iter().enumerate() {
        let truth = sim.evaluate(&kernel, &space, point);
        obs::info!(
            "dse.candidate",
            "#{:<3} predicted {:>10} | actual {:>10} ({}) | {}",
            rank + 1,
            pred.cycles,
            truth.cycles,
            truth.validity,
            point.describe(space.slots());
            rank = rank + 1,
            predicted_cycles = pred.cycles,
            actual_cycles = truth.cycles,
            validity = truth.validity.to_string(),
        );
    }
    drop(_validate);
    if objective.kind == ObjectiveKind::Pareto {
        obs::info!(
            "dse.front",
            "predicted Pareto front: {} mutually non-dominated designs",
            outcome.front.len();
            front_points = outcome.front.len(),
        );
        for (point, pred) in &outcome.front {
            obs::info!(
                "dse.front_point",
                "front: {:>10} cycles | dsp {:.2} bram {:.2} lut {:.2} ff {:.2} | {}",
                pred.cycles,
                pred.util.dsp,
                pred.util.bram,
                pred.util.lut,
                pred.util.ff,
                point.describe(space.slots());
                predicted_cycles = pred.cycles,
            );
        }
    }
    if let Some(p) = metrics_out {
        write_metrics(&p, "dse", started)?;
    }
    Ok(())
}

fn cmd_predict(args: &[String]) -> CliResult {
    let (pos, flags) =
        split_flags(args, &["addr", "id", "retries", "timeout", "connect-timeout"], &[])?;
    let usage = "usage: gnndse predict <model> <kernel> <index> \
                 (or: gnndse predict <kernel> <index> --addr HOST:PORT \
                 [--id N] [--retries N] [--timeout MS] [--connect-timeout MS])";
    if let Some(addr) = flags.get("addr") {
        let [kernel, index] = &pos[..] else {
            return Err(usage.into());
        };
        let index: u128 = index.parse().map_err(|e| format!("bad index: {e}"))?;
        let id: u64 = flag_or(&flags, "id", 1)?;
        let retries: u32 = flag_or(&flags, "retries", 3)?;
        let timeout_ms: u64 = flag_or(&flags, "timeout", 30_000)?;
        let connect_ms: u64 = flag_or(&flags, "connect-timeout", 5_000)?;
        let client_config = ClientConfig {
            connect_timeout: Duration::from_millis(connect_ms),
            read_timeout: Some(Duration::from_millis(timeout_ms)),
            retries,
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(addr, client_config).map_err(|e| e.to_string())?;
        let start = Instant::now();
        let response = client.predict(id, kernel, index).map_err(|e| e.to_string())?;
        match response {
            Response::Ok { id, epoch, row } => {
                println!("id        : {id}");
                println!("epoch     : {epoch}");
                println!("valid prob: {:.3}", row.valid_prob);
                println!("cycles    : {}", row.cycles);
                println!(
                    "util      : dsp {:.3}, bram {:.3}, lut {:.3}, ff {:.3}",
                    row.dsp, row.bram, row.lut, row.ff
                );
                println!("latency   : {:?} (round trip)", start.elapsed());
                Ok(())
            }
            Response::Rejected { retry_after_ms, .. } => Err(format!(
                "rejected (429): prediction queue full, retry in {retry_after_ms} ms"
            )),
            Response::Error { code, message, .. } => Err(format!("server error {code}: {message}")),
            other => Err(format!("unexpected response: {other:?}")),
        }
    } else {
        let [model_path, kernel, index] = &pos[..] else {
            return Err(usage.into());
        };
        let predictor = load_model(Path::new(model_path))?;
        let kernel = lookup_kernel(kernel)?;
        let space = DesignSpace::from_kernel(&kernel);
        let index: u128 = index.parse().map_err(|e| format!("bad index: {e}"))?;
        if index >= space.size() {
            return Err(format!("index {index} out of space of size {}", space.size()));
        }
        let point = space.point_at(index);
        let graph = build_graph_bidirectional(&kernel, &space);
        let start = Instant::now();
        let pred = predictor.predict(&graph, &point);
        println!("design    : {}", point.describe(space.slots()));
        println!("valid prob: {:.3}", pred.valid_prob);
        println!("cycles    : {}", pred.cycles);
        println!(
            "util      : dsp {:.3}, bram {:.3}, lut {:.3}, ff {:.3}",
            pred.util.dsp, pred.util.bram, pred.util.lut, pred.util.ff
        );
        println!("latency   : {:?} (surrogate wall-clock)", start.elapsed());
        Ok(())
    }
}

fn cmd_serve(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(
        args,
        &[
            "model",
            "addr",
            "jobs",
            "queue",
            "batch",
            "max-requests",
            "replicas",
            "request-timeout",
            "idle-timeout",
            "trace-slow-ms",
            "trace-capacity",
            "log-level",
            "log-json",
            "metrics-out",
        ],
        &["reload", "quant"],
    )?;
    let usage = "usage: gnndse serve --model model.gdse [--addr 127.0.0.1:7878] [--jobs N] \
                 [--queue N] [--batch N] [--max-requests N] [--replicas N] [--reload] \
                 [--quant] [--request-timeout MS] [--idle-timeout MS] \
                 [--trace-slow-ms MS] [--trace-capacity N] \
                 [--log-level L] [--log-json log.jsonl] [--metrics-out report.json]";
    if !pos.is_empty() {
        return Err(format!("unexpected positional arguments\n{usage}"));
    }
    let model_path = flags.get("model").ok_or(usage)?;
    let addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let metrics_out = obs_args(&flags)?;
    let started = Instant::now();
    let queue_capacity: usize = flag_or(&flags, "queue", 64)?;
    let max_batch: usize = flag_or(&flags, "batch", 16)?;
    if max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let max_requests: Option<u64> = match flags.get("max-requests") {
        Some(v) => Some(v.parse().map_err(|e| format!("bad value for --max-requests: {e}"))?),
        None => None,
    };
    let replicas: usize = flag_or(&flags, "replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    let request_timeout_ms: u64 = flag_or(&flags, "request-timeout", 60_000)?;
    let idle_timeout: Option<Duration> = match flags.get("idle-timeout") {
        Some(v) => Some(Duration::from_millis(
            v.parse().map_err(|e| format!("bad value for --idle-timeout: {e}"))?,
        )),
        None => None,
    };
    let watch = flags.contains_key("reload");
    let quant = flags.contains_key("quant");
    let trace_slow: Option<Duration> = match flags.get("trace-slow-ms") {
        Some(v) => Some(Duration::from_millis(
            v.parse().map_err(|e| format!("bad value for --trace-slow-ms: {e}"))?,
        )),
        None => None,
    };
    let trace_capacity: usize = flag_or(&flags, "trace-capacity", 256)?;

    // Split the worker budget across replicas: each replica owns a private
    // engine, so N replicas × per-replica jobs ≈ the machine budget.
    let total_jobs: usize = flag_or(&flags, "jobs", {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })?;
    if total_jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let per_replica_jobs = (total_jobs / replicas).max(1);

    let config = ServeConfig {
        queue_capacity,
        max_batch,
        max_requests,
        replicas,
        request_timeout: Duration::from_millis(request_timeout_ms),
        idle_timeout,
        reload_watch: watch.then(|| Duration::from_millis(500)),
        trace_slow,
        trace_capacity,
        ..ServeConfig::default()
    };

    // A binary artifact gets the versioned hot-swap provider; a legacy
    // JSON model can still be served, but only statically.
    let bytes =
        std::fs::read(Path::new(model_path)).map_err(|e| format!("{model_path}: {e}"))?;
    let server = if bytes.starts_with(&gdse_gnn::artifact::MAGIC) {
        let provider = {
            let _io = obs::span::stage("io");
            if quant {
                ArtifactProvider::open_quant(Path::new(model_path), per_replica_jobs)?
            } else {
                ArtifactProvider::open(Path::new(model_path), per_replica_jobs)?
            }
        };
        let meta = provider.meta();
        obs::info!(
            "model.loaded",
            "loaded artifact {model_path} ({}, {} kernels, {} epochs, seed {}{})",
            meta.model,
            meta.kernels.len(),
            meta.epochs,
            meta.seed,
            if meta.quant { ", int8" } else { "" };
            model = meta.model,
            kernels = meta.kernels.len(),
            quant = meta.quant,
        );
        Server::bind_with_provider(&addr, config, std::sync::Arc::new(provider))
            .map_err(|e| e.to_string())?
    } else {
        if watch {
            return Err(
                "--reload needs a binary .gdse artifact (JSON models are served statically)"
                    .into(),
            );
        }
        let predictor = {
            let _io = obs::span::stage("io");
            load_model(Path::new(model_path))?
        };
        let engine = if per_replica_jobs <= 1 {
            ExecEngine::serial()
        } else {
            ExecEngine::builder().jobs(per_replica_jobs).build()
        };
        let service = if quant {
            PredictService::new_quant(QuantPredictor::quantize(&predictor), engine)
        } else {
            PredictService::new(predictor, engine)
        };
        Server::bind(&addr, config, service).map_err(|e| e.to_string())?
    };
    let local = server.local_addr();
    obs::info!(
        "serve.listening",
        "serving predictions on {local} ({replicas} replica(s) × {per_replica_jobs} job(s), \
         queue {queue_capacity}, batch {max_batch}{})",
        if watch { ", watching artifact for hot swap" } else { "" };
        addr = local.to_string(),
        replicas = replicas,
        queue = queue_capacity,
        batch = max_batch,
    );
    // Scripts block on this line to learn the (possibly ephemeral) port.
    println!("listening on {local}");
    std::io::stdout().flush().ok();

    let stats = {
        let _serve = obs::span::stage("serve");
        server.run()
    };
    obs::info!(
        "serve.done",
        "served {} predictions ({} rejected, {} errors, {} rerouted, \
         {} replica restarts, {} reloads, {} reload failures)",
        stats.served,
        stats.rejected,
        stats.errors,
        stats.rerouted,
        stats.replica_restarts,
        stats.reloads,
        stats.reload_failures;
        served = stats.served,
        rejected = stats.rejected,
        errors = stats.errors,
        rerouted = stats.rerouted,
        replica_restarts = stats.replica_restarts,
        reloads = stats.reloads,
        reload_failures = stats.reload_failures,
    );
    if let Some(p) = metrics_out {
        write_metrics(&p, "serve", started)?;
    }
    Ok(())
}

/// `gnndse daemon` — the continuous-learning service: the replicated
/// prediction server plus a background DSE/fine-tune driver that hot-swaps
/// the served artifact after every round.
fn cmd_daemon(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(
        args,
        &[
            "db",
            "model",
            "addr",
            "rounds",
            "checkpoint",
            "replay",
            "replay-capacity",
            "train-epochs",
            "pause-ms",
            "jobs",
            "queue",
            "batch",
            "replicas",
            "max-requests",
            "request-timeout",
            "watch-ms",
            "log-level",
            "log-json",
            "metrics-out",
        ],
        &[],
    )?;
    let usage = "usage: gnndse daemon --db db.json --model model.gdse \
                 [--addr 127.0.0.1:7878] [--rounds N] [--checkpoint ck.json] \
                 [--replay replay.json] [--replay-capacity N] [--train-epochs N] \
                 [--pause-ms MS] [--jobs N] [--queue N] [--batch N] [--replicas N] \
                 [--max-requests N] [--request-timeout MS] [--watch-ms MS] \
                 [--log-level L] [--log-json log.jsonl] [--metrics-out report.json]";
    if !pos.is_empty() {
        return Err(format!("unexpected positional arguments\n{usage}"));
    }
    let db = flags.get("db").ok_or(usage)?;
    let model = flags.get("model").ok_or(usage)?;
    let addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let metrics_out = obs_args(&flags)?;
    let started = Instant::now();
    let n_rounds: usize = flag_or(&flags, "rounds", 4)?;
    let checkpoint =
        flags.get("checkpoint").cloned().unwrap_or_else(|| format!("{model}.ck.json"));
    let replay = flags.get("replay").cloned().unwrap_or_else(|| format!("{model}.replay.json"));
    let replay_capacity: usize = flag_or(&flags, "replay-capacity", 512)?;
    let train_epochs: usize = flag_or(&flags, "train-epochs", 4)?;
    let pause_ms: u64 = flag_or(&flags, "pause-ms", 500)?;
    let replicas: usize = flag_or(&flags, "replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    let max_requests: Option<u64> = match flags.get("max-requests") {
        Some(v) => Some(v.parse().map_err(|e| format!("bad value for --max-requests: {e}"))?),
        None => None,
    };
    let watch: Option<Duration> = match flags.get("watch-ms") {
        Some(v) => Some(Duration::from_millis(
            v.parse().map_err(|e| format!("bad value for --watch-ms: {e}"))?,
        )),
        None => None,
    };
    let jobs: usize = flag_or(&flags, "jobs", {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let serve = ServeConfig {
        queue_capacity: flag_or(&flags, "queue", 64)?,
        max_batch: flag_or(&flags, "batch", 16)?,
        max_requests,
        replicas,
        request_timeout: Duration::from_millis(flag_or(&flags, "request-timeout", 60_000)?),
        reload_watch: watch,
        ..ServeConfig::default()
    };
    if serve.max_batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let rounds = RoundsConfig {
        rounds: n_rounds,
        train_cfg: gnn_dse::TrainConfig::quick().with_epochs(train_epochs),
        ..RoundsConfig::quick()
    };
    let cfg = gnn_dse::DaemonConfig {
        addr,
        db: PathBuf::from(db),
        artifact: PathBuf::from(model),
        checkpoint: PathBuf::from(checkpoint),
        replay: PathBuf::from(replay),
        replay_capacity,
        rounds,
        serve,
        jobs,
        round_pause: Duration::from_millis(pause_ms),
    };
    let daemon = gnn_dse::Daemon::start(cfg)?;
    let local = daemon.addr();
    // Scripts block on this line to learn the (possibly ephemeral) port.
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    let report = daemon.run()?;
    obs::info!(
        "daemon.done",
        "served {} predictions ({} errors, {} reloads, {} reload failures); \
         completed {} learning round(s){}",
        report.serve.served,
        report.serve.errors,
        report.serve.reloads,
        report.serve.reload_failures,
        report.rounds.len(),
        match &report.learner_error {
            Some(e) => format!("; learner failed: {e}"),
            None => String::new(),
        };
        served = report.serve.served,
        errors = report.serve.errors,
        reloads = report.serve.reloads,
        rounds = report.rounds.len(),
    );
    if let Some(p) = metrics_out {
        write_metrics(&p, "daemon", started)?;
    }
    match report.learner_error {
        Some(e) => Err(format!("learning plane failed: {e}")),
        None => Ok(()),
    }
}

/// `gnndse admin <addr> <command>` — poke a running server over its own
/// protocol: force a hot swap, run a kill drill, read live telemetry and
/// traces, or stop it.
fn cmd_admin(args: &[String]) -> CliResult {
    let usage = "usage: gnndse admin <addr> \
                 <reload | kill-replica N | stats [--prom] | trace <id|slow> | \
                 learn-status | shutdown>";
    let [addr, command, rest @ ..] = args else {
        return Err(usage.into());
    };
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    match (command.as_str(), rest) {
        ("stats", rest) => {
            let prom = match rest {
                [] => false,
                [f] if f == "--prom" => true,
                _ => return Err(usage.into()),
            };
            let body = client.stats().map_err(|e| e.to_string())?;
            if prom {
                // The snapshot rides inside the stats document; re-render
                // it as Prometheus text exposition for scrapers.
                let metrics = body
                    .as_map()
                    .and_then(|m| m.iter().find(|(k, _)| k == "metrics"))
                    .map(|(_, v)| v.clone())
                    .ok_or("stats response carries no `metrics` snapshot")?;
                let json = serde_json::to_string(&metrics)
                    .map_err(|e| format!("metrics re-serialize: {e}"))?;
                let snap: obs::MetricsSnapshot = serde_json::from_str(&json)
                    .map_err(|e| format!("metrics snapshot decode: {e}"))?;
                print!("{}", obs::prom::render(&snap));
            } else {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&body)
                        .map_err(|e| format!("stats serialize: {e}"))?
                );
            }
            Ok(())
        }
        ("learn-status", []) => {
            let body = client.learn_status().map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string_pretty(&body)
                    .map_err(|e| format!("learn-status serialize: {e}"))?
            );
            Ok(())
        }
        ("trace", [query]) => {
            let body = client.trace(query).map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string_pretty(&body)
                    .map_err(|e| format!("trace serialize: {e}"))?
            );
            Ok(())
        }
        ("reload", []) => match client.reload_server().map_err(|e| e.to_string())? {
            Response::Reloaded { epoch } => {
                println!("reloaded: serving epoch {epoch}");
                Ok(())
            }
            Response::Error { code, message, .. } => {
                Err(format!("reload rejected ({code}): {message}"))
            }
            other => Err(format!("unexpected response: {other:?}")),
        },
        ("kill-replica", [replica]) => {
            let replica: usize =
                replica.parse().map_err(|e| format!("bad replica index: {e}"))?;
            match client.kill_replica(replica).map_err(|e| e.to_string())? {
                Response::Killed { replica } => {
                    println!("killed replica {replica} (it will restart under supervision)");
                    Ok(())
                }
                Response::Error { code, message, .. } => {
                    Err(format!("kill rejected ({code}): {message}"))
                }
                other => Err(format!("unexpected response: {other:?}")),
            }
        }
        ("shutdown", []) => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server is shutting down");
            Ok(())
        }
        _ => Err(usage.into()),
    }
}

/// `gnndse chaos-proxy` — a TCP fault-injection proxy between a client and
/// a running server, for chaos tests and the CI smoke.
fn cmd_chaos_proxy(args: &[String]) -> CliResult {
    let (pos, flags) = split_flags(
        args,
        &[
            "listen",
            "upstream",
            "drop",
            "delay-rate",
            "delay-ms",
            "truncate",
            "kill",
            "seed",
            "duration-secs",
        ],
        &[],
    )?;
    let usage = "usage: gnndse chaos-proxy --upstream HOST:PORT [--listen 127.0.0.1:0] \
                 [--drop F] [--delay-rate F] [--delay-ms N] [--truncate F] [--kill F] \
                 [--seed N] [--duration-secs N]";
    if !pos.is_empty() {
        return Err(format!("unexpected positional arguments\n{usage}"));
    }
    let upstream = flags.get("upstream").ok_or(usage)?;
    let listen = flags.get("listen").cloned().unwrap_or_else(|| "127.0.0.1:0".to_string());
    let config = ChaosConfig {
        drop_rate: flag_or(&flags, "drop", 0.0)?,
        delay_rate: flag_or(&flags, "delay-rate", 0.0)?,
        truncate_rate: flag_or(&flags, "truncate", 0.0)?,
        kill_rate: flag_or(&flags, "kill", 0.0)?,
        delay: Duration::from_millis(flag_or(&flags, "delay-ms", 100)?),
        seed: flag_or(&flags, "seed", 7)?,
    };
    for (name, rate) in [
        ("drop", config.drop_rate),
        ("delay-rate", config.delay_rate),
        ("truncate", config.truncate_rate),
        ("kill", config.kill_rate),
    ] {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("--{name} must be in [0, 1], got {rate}"));
        }
    }
    let duration_secs: u64 = flag_or(&flags, "duration-secs", 0)?;
    let mut proxy = ChaosProxy::start(&listen, upstream, config).map_err(|e| e.to_string())?;
    // Scripts block on this line to learn the (possibly ephemeral) port.
    println!("proxying on {} -> {upstream}", proxy.addr());
    std::io::stdout().flush().ok();
    if duration_secs == 0 {
        // Run until killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration_secs));
    let stats = proxy.stats();
    proxy.shutdown();
    println!(
        "proxied {} connection(s): {} dropped, {} delayed, {} truncated, {} killed",
        stats.connections, stats.dropped, stats.delayed, stats.truncated, stats.killed
    );
    Ok(())
}
