//! The execution engine: one [`ExecEngine`] threads the [`gdse_exec`]
//! worker pool and caches through the whole pipeline.
//!
//! The engine bundles three things every parallel stage needs:
//!
//! * a [`WorkerPool`] sized by `--jobs` (results always come back in
//!   submission order, so any worker count reproduces the serial output);
//! * an **oracle cache** keyed by `(kernel, pragma-config)` holding
//!   successful [`HlsResult`]s — losses are *not* cached, so a config that
//!   failed through the fault-injecting harness stays eligible for retry;
//! * a **prediction cache** with the same key shape for surrogate
//!   [`Prediction`]s, cleared whenever the model retrains
//!   ([`ExecEngine::clear_predictions`]).
//!
//! Cache lookups and result splicing happen on the calling thread; only the
//! actual oracle/surrogate work fans out. Per-worker observability counters
//! are folded back into the caller's registry by the pool, so
//! `run_report.json` sees one consistent total regardless of `--jobs`.

use crate::harness::{EvalBackend, EvalError};
use crate::inference::{Prediction, Predictor};
use design_space::{DesignPoint, DesignSpace};
use gdse_exec::{evaluate_cached, ShardedCache, WorkerPool};
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::HlsResult;
use proggraph::ProgramGraph;
use std::collections::HashMap;

/// Cache key: kernel name + full pragma configuration.
type ConfigKey = (String, DesignPoint);

/// Worker pool plus the two pipeline-wide caches (see module docs).
#[derive(Debug)]
pub struct ExecEngine {
    pool: WorkerPool,
    oracle_cache: ShardedCache<ConfigKey, HlsResult>,
    prediction_cache: ShardedCache<ConfigKey, Prediction>,
}

/// Fluent construction of an [`ExecEngine`]: worker count plus the shard
/// granularity of the two pipeline caches.
///
/// ```
/// use gnn_dse::parallel::ExecEngine;
///
/// let engine = ExecEngine::builder().jobs(4).oracle_cache_shards(32).build();
/// assert_eq!(engine.jobs(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExecEngineBuilder {
    jobs: Option<usize>,
    oracle_shards: usize,
    prediction_shards: usize,
}

impl Default for ExecEngineBuilder {
    fn default() -> Self {
        ExecEngineBuilder { jobs: Some(1), oracle_shards: 16, prediction_shards: 16 }
    }
}

impl ExecEngineBuilder {
    /// Workers in the pool (clamped to at least 1). Default: 1 (serial).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Size the pool to the machine's available parallelism.
    pub fn auto_jobs(mut self) -> Self {
        self.jobs = None;
        self
    }

    /// Shard count of the oracle cache (rounded up to a power of two).
    /// More shards mean less lock contention at high worker counts.
    pub fn oracle_cache_shards(mut self, shards: usize) -> Self {
        self.oracle_shards = shards;
        self
    }

    /// Shard count of the prediction cache (rounded up to a power of two).
    pub fn prediction_cache_shards(mut self, shards: usize) -> Self {
        self.prediction_shards = shards;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> ExecEngine {
        ExecEngine {
            pool: match self.jobs {
                Some(jobs) => WorkerPool::new(jobs),
                None => WorkerPool::auto(),
            },
            oracle_cache: ShardedCache::new(self.oracle_shards),
            prediction_cache: ShardedCache::new(self.prediction_shards),
        }
    }
}

impl ExecEngine {
    /// A builder for tuning worker count and cache sharding.
    pub fn builder() -> ExecEngineBuilder {
        ExecEngineBuilder::default()
    }

    /// An engine running on `jobs` workers (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Self {
        ExecEngine::builder().jobs(jobs).build()
    }

    /// A single-worker engine: batched code paths, serial execution.
    pub fn serial() -> Self {
        ExecEngine::with_jobs(1)
    }

    /// An engine sized to the machine's available parallelism.
    pub fn auto() -> Self {
        ExecEngine::builder().auto_jobs().build()
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// The underlying pool, for stages that fan out non-evaluation work.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Drops every cached prediction. Must be called whenever the surrogate
    /// retrains — predictions from the previous model are stale.
    pub fn clear_predictions(&self) {
        self.prediction_cache.clear();
    }

    /// Evaluates `points` through `eval`, in parallel, returning results in
    /// input order.
    ///
    /// Previously seen successful configs are served from the oracle cache;
    /// duplicate configs *within* the batch are evaluated once and their
    /// result copied to every occurrence. Misses run on the worker pool.
    /// Only successes are cached: a lost point (retries exhausted, fatal
    /// tool error) is re-attempted the next time it is submitted, exactly
    /// like the serial harness would.
    pub fn evaluate_ordered<B: EvalBackend + Sync>(
        &self,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> Vec<Result<HlsResult, EvalError>> {
        let mut out: Vec<Option<Result<HlsResult, EvalError>>> = vec![None; points.len()];
        let mut miss_points: Vec<DesignPoint> = Vec::new();
        let mut miss_slot: Vec<(usize, usize)> = Vec::new();
        let mut first_seen: HashMap<ConfigKey, usize> = HashMap::new();
        let mut hits = 0u64;

        for (i, point) in points.iter().enumerate() {
            let key = (kernel.name().to_string(), point.clone());
            if let Some(r) = self.oracle_cache.get(&key) {
                out[i] = Some(Ok(r));
                hits += 1;
                continue;
            }
            let batch_idx = *first_seen.entry(key).or_insert_with(|| {
                miss_points.push(point.clone());
                miss_points.len() - 1
            });
            miss_slot.push((i, batch_idx));
        }
        obs::metrics::counter_add("exec.cache_hits", hits);
        obs::metrics::counter_add("exec.cache_misses", miss_points.len() as u64);

        if !miss_points.is_empty() {
            let fresh = self.pool.map(&miss_points, |_, p| eval.try_evaluate(kernel, space, p));
            for (point, result) in miss_points.iter().zip(&fresh) {
                if let Ok(v) = result {
                    self.oracle_cache.insert((kernel.name().to_string(), point.clone()), *v);
                }
            }
            for (slot, batch_idx) in miss_slot {
                out[slot] = Some(fresh[batch_idx].clone());
            }
        }
        out.into_iter().map(|v| v.expect("every slot is a hit or a miss")).collect()
    }

    /// Runs the surrogate over `points`, in parallel, returning predictions
    /// in input order.
    ///
    /// Misses are split into one contiguous chunk per worker and scored with
    /// [`Predictor::predict_batch`], which amortizes graph encoding over the
    /// chunk. Prediction is item-independent, so any chunking (any `--jobs`)
    /// produces the same numbers as one serial batch.
    pub fn predict_ordered(
        &self,
        predictor: &Predictor,
        graph: &ProgramGraph,
        kernel_name: &str,
        points: &[DesignPoint],
    ) -> Vec<Prediction> {
        let chunked = |items: &[DesignPoint]| -> Vec<Prediction> {
            if items.is_empty() {
                return Vec::new();
            }
            let per_worker = items.len().div_ceil(self.pool.jobs()).max(1);
            let chunks: Vec<&[DesignPoint]> = items.chunks(per_worker).collect();
            self.pool
                .map(&chunks, |_, chunk| predictor.predict_batch(graph, chunk))
                .into_iter()
                .flatten()
                .collect()
        };
        evaluate_cached(
            &chunked,
            &self.prediction_cache,
            |p| (kernel_name.to_string(), p.clone()),
            points,
        )
    }
}

impl Default for ExecEngine {
    /// Serial engine — the safe default for library callers.
    fn default() -> Self {
        ExecEngine::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    fn setup() -> (Kernel, DesignSpace) {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        (k, space)
    }

    fn sample(space: &DesignSpace, n: usize, seed: u64) -> Vec<DesignPoint> {
        (0..n as u64)
            .map(|i| {
                let mut z = (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                space.point_at(u128::from(z ^ (z >> 31)) % space.size())
            })
            .collect()
    }

    #[test]
    fn parallel_evaluation_matches_serial_order() {
        let (k, space) = setup();
        let sim = MerlinSimulator::new();
        let points = sample(&space, 40, 11);

        let serial: Vec<_> =
            points.iter().map(|p| Ok(sim.evaluate(&k, &space, p))).collect::<Vec<_>>();
        for jobs in [1, 4, 8] {
            let engine = ExecEngine::with_jobs(jobs);
            let got = engine.evaluate_ordered(&sim, &k, &space, &points);
            assert_eq!(got, serial, "jobs={jobs} must reproduce serial results in order");
        }
    }

    #[test]
    fn repeated_evaluation_is_served_from_the_cache() {
        let (k, space) = setup();
        let sim = MerlinSimulator::new();
        let points = sample(&space, 10, 3);
        let engine = ExecEngine::with_jobs(4);

        let first = engine.evaluate_ordered(&sim, &k, &space, &points);
        let second = engine.evaluate_ordered(&sim, &k, &space, &points);
        assert_eq!(first, second);
        // All 10 points hit on the second pass (sample() may repeat a point,
        // so the first pass can contribute hits of its own).
        let hit_points: usize =
            points.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(engine.oracle_cache.len(), hit_points);
    }

    #[test]
    fn duplicate_points_in_one_batch_are_evaluated_once() {
        let (k, space) = setup();
        let sim = MerlinSimulator::new();
        let p = space.default_point();
        let engine = ExecEngine::serial();
        let out = engine.evaluate_ordered(&sim, &k, &space, &[p.clone(), p.clone(), p]);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
        assert_eq!(engine.oracle_cache.len(), 1);
    }

    #[test]
    fn builder_routes_jobs_and_shards() {
        let engine = ExecEngine::builder()
            .jobs(3)
            .oracle_cache_shards(4)
            .prediction_cache_shards(8)
            .build();
        assert_eq!(engine.jobs(), 3);
        assert_eq!(engine.oracle_cache.num_shards(), 4);
        assert_eq!(engine.prediction_cache.num_shards(), 8);

        let auto = ExecEngine::builder().auto_jobs().build();
        assert!(auto.jobs() >= 1);

        // Shard count must not change results, only contention.
        let (k, space) = setup();
        let sim = MerlinSimulator::new();
        let points = sample(&space, 12, 21);
        let coarse = ExecEngine::builder().jobs(4).oracle_cache_shards(1).build();
        let fine = ExecEngine::builder().jobs(4).oracle_cache_shards(64).build();
        assert_eq!(
            coarse.evaluate_ordered(&sim, &k, &space, &points),
            fine.evaluate_ordered(&sim, &k, &space, &points),
        );
    }

    #[test]
    fn chunked_prediction_matches_one_serial_batch() {
        let (k, space) = setup();
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let predictor = Predictor::untrained(
            gdse_gnn::ModelKind::Transformer,
            gdse_gnn::ModelConfig::small(),
            crate::dataset::Normalizer::with_factor(1_000_000.0),
        );
        let points = sample(&space, 17, 5);

        let reference = predictor.predict_batch(&graph, &points);
        for jobs in [1, 3, 8] {
            let engine = ExecEngine::with_jobs(jobs);
            let got = engine.predict_ordered(&predictor, &graph, k.name(), &points);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.valid_prob.to_bits(), r.valid_prob.to_bits(), "jobs={jobs}");
                assert_eq!(g.cycles, r.cycles, "jobs={jobs}");
            }
            // Second call: everything cached, same values.
            let again = engine.predict_ordered(&predictor, &graph, k.name(), &points);
            for (g, r) in again.iter().zip(&reference) {
                assert_eq!(g.valid_prob.to_bits(), r.valid_prob.to_bits());
            }
            engine.clear_predictions();
        }
    }
}
