//! The shared training database (§4.1): evaluated design points from all
//! applications, accumulated across explorers and DSE rounds.

use crate::persist::atomic_write;
use design_space::DesignPoint;
use merlin_sim::HlsResult;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a database could not be saved or loaded.
#[derive(Debug)]
pub enum DbError {
    /// Reading or writing `path` failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The database could not be serialized.
    Serialize {
        /// The destination file.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// The file's contents are not a valid database.
    Parse {
        /// The file involved.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io { path, source } => {
                write!(f, "database I/O error on {}: {source}", path.display())
            }
            DbError::Serialize { path, detail } => {
                write!(f, "cannot serialize database to {}: {detail}", path.display())
            }
            DbError::Parse { path, detail } => {
                write!(f, "{} is not a valid database: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One evaluated design: kernel, configuration, and the tool's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbEntry {
    /// Kernel name.
    pub kernel: String,
    /// The design configuration.
    pub point: DesignPoint,
    /// Ground-truth evaluation.
    pub result: HlsResult,
}

/// Per-kernel database statistics (the Table 1 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Total entries.
    pub total: usize,
    /// Entries that synthesized successfully.
    pub valid: usize,
}

/// The design database: deduplicated evaluated configurations from many
/// kernels, in insertion order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    entries: Vec<DbEntry>,
    #[serde(skip)]
    index: HashMap<(String, DesignPoint), usize>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an evaluated design. Returns `false` (and keeps the original)
    /// if this (kernel, point) pair is already present.
    pub fn insert(&mut self, kernel: &str, point: DesignPoint, result: HlsResult) -> bool {
        let key = (kernel.to_string(), point.clone());
        if self.index.contains_key(&key) {
            return false;
        }
        self.entries.push(DbEntry { kernel: kernel.to_string(), point, result });
        self.index.insert(key, self.entries.len() - 1);
        true
    }

    /// Whether this (kernel, point) pair was already evaluated.
    pub fn contains(&self, kernel: &str, point: &DesignPoint) -> bool {
        self.index.contains_key(&(kernel.to_string(), point.clone()))
    }

    /// Looks up a stored evaluation.
    pub fn get(&self, kernel: &str, point: &DesignPoint) -> Option<&DbEntry> {
        self.index
            .get(&(kernel.to_string(), point.clone()))
            .map(|&i| &self.entries[i])
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[DbEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_valid()).count()
    }

    /// Entries of one kernel.
    pub fn of_kernel<'a>(&'a self, kernel: &str) -> impl Iterator<Item = &'a DbEntry> + 'a {
        let kernel = kernel.to_string();
        self.entries.iter().filter(move |e| e.kernel == kernel)
    }

    /// Total / valid counts per kernel, sorted by kernel name.
    pub fn stats(&self) -> Vec<(String, KernelStats)> {
        let mut map: HashMap<&str, KernelStats> = HashMap::new();
        for e in &self.entries {
            let s = map.entry(&e.kernel).or_default();
            s.total += 1;
            if e.result.is_valid() {
                s.valid += 1;
            }
        }
        let mut out: Vec<(String, KernelStats)> =
            map.into_iter().map(|(k, s)| (k.to_string(), s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The best valid design of a kernel that fits under the utilization
    /// threshold (minimum cycles) — the reference point of Fig. 7.
    pub fn best_design(&self, kernel: &str, util_threshold: f64) -> Option<&DbEntry> {
        self.of_kernel(kernel)
            .filter(|e| e.result.is_valid() && e.result.util.fits(util_threshold))
            .min_by_key(|e| e.result.cycles)
    }

    /// Range of latencies across all valid entries (the §5.1 dataset-range
    /// report).
    pub fn latency_range(&self) -> Option<(u64, u64)> {
        let mut it = self.entries.iter().filter(|e| e.result.is_valid()).map(|e| e.result.cycles);
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for c in it {
            lo = lo.min(c);
            hi = hi.max(c);
        }
        Some((lo, hi))
    }

    /// Saves the database as JSON, atomically: the bytes are written to a
    /// temporary sibling, fsynced, and renamed into place, so a crash mid-
    /// save leaves any previous file intact rather than a truncated one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DbError`] naming the file and the failure.
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        let json = serde_json::to_string(&self).map_err(|e| DbError::Serialize {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        atomic_write(path, &json)
            .map_err(|source| DbError::Io { path: path.to_path_buf(), source })
    }

    /// Loads a database saved by [`Database::save`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`DbError`]: [`DbError::Io`] if the file cannot be
    /// read, [`DbError::Parse`] if its contents are not a database.
    pub fn load(path: &Path) -> Result<Self, DbError> {
        let json = std::fs::read_to_string(path)
            .map_err(|source| DbError::Io { path: path.to_path_buf(), source })?;
        let mut db: Database = serde_json::from_str(&json).map_err(|e| DbError::Parse {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        db.rebuild_index();
        Ok(db)
    }

    /// Merges another database into this one (the §4.1 "shared space" that
    /// gradually collects results from different applications). Duplicate
    /// (kernel, point) pairs keep this database's entry. Returns how many
    /// entries were added.
    pub fn merge(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for e in other.entries() {
            if self.insert(&e.kernel, e.point.clone(), e.result) {
                added += 1;
            }
        }
        added
    }

    /// Rebuilds the dedup index after deserialization (the index is
    /// `serde(skip)` — any path that deserializes a `Database` must call
    /// this before using it).
    pub(crate) fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.kernel.clone(), e.point.clone()), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    fn sample_db() -> Database {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        for i in 0..10 {
            let p = space.point_at(i);
            let r = sim.evaluate(&k, &space, &p);
            db.insert("aes", p, r);
        }
        db
    }

    #[test]
    fn insert_deduplicates() {
        let mut db = sample_db();
        let first = db.entries()[0].clone();
        assert!(!db.insert("aes", first.point.clone(), first.result));
        assert_eq!(db.len(), 10);
        assert!(db.contains("aes", &first.point));
    }

    #[test]
    fn stats_count_valid() {
        let db = sample_db();
        let stats = db.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "aes");
        assert_eq!(stats[0].1.total, 10);
        assert_eq!(stats[0].1.valid, db.valid_count());
    }

    #[test]
    fn best_design_minimizes_cycles() {
        let db = sample_db();
        let best = db.best_design("aes", 0.8).expect("some valid design");
        for e in db.of_kernel("aes") {
            if e.result.is_valid() && e.result.util.fits(0.8) {
                assert!(best.result.cycles <= e.result.cycles);
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("gnn_dse_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        assert_eq!(loaded.len(), db.len());
        let first = &db.entries()[0];
        assert!(loaded.contains("aes", &first.point), "index rebuilt after load");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_typed_errors() {
        let dir = std::env::temp_dir().join("gnn_dse_db_err_test");
        std::fs::create_dir_all(&dir).unwrap();

        let missing = dir.join("does_not_exist.json");
        assert!(matches!(Database::load(&missing), Err(DbError::Io { .. })));

        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "{ this is not a database").unwrap();
        let err = Database::load(&garbled).unwrap_err();
        assert!(matches!(err, DbError::Parse { .. }));
        assert!(err.to_string().contains("garbled.json"), "error should name the file: {err}");
        std::fs::remove_file(&garbled).ok();
    }

    #[test]
    fn save_replaces_atomically() {
        let dir = std::env::temp_dir().join("gnn_dse_db_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        sample_db().save(&path).unwrap();
        let bigger = {
            let mut db = sample_db();
            let k = kernels::gesummv();
            let space = DesignSpace::from_kernel(&k);
            let sim = MerlinSimulator::new();
            let p = space.default_point();
            let r = sim.evaluate(&k, &space, &p);
            db.insert("gesummv", p, r);
            db
        };
        bigger.save(&path).unwrap();
        assert_eq!(Database::load(&path).unwrap().len(), bigger.len());
        assert!(!path.with_file_name("db.json.tmp").exists(), "no tmp residue after save");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_deduplicates_and_counts() {
        let mut a = sample_db();
        let b = sample_db(); // identical content
        assert_eq!(a.merge(&b), 0, "identical databases add nothing");

        // A database over a different kernel merges fully.
        let k = kernels::gesummv();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut c = Database::new();
        for i in 0..5 {
            let p = space.point_at(i);
            let r = sim.evaluate(&k, &space, &p);
            c.insert("gesummv", p, r);
        }
        assert_eq!(a.merge(&c), 5);
        assert_eq!(a.stats().len(), 2);
    }

    #[test]
    fn latency_range_covers_valid_entries() {
        let db = sample_db();
        let (lo, hi) = db.latency_range().unwrap();
        assert!(lo <= hi);
        assert!(lo > 0);
    }
}
