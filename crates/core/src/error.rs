//! The unified error surface of the crate.
//!
//! Each subsystem keeps its own precise error type ([`EvalError`],
//! [`DbError`], [`RoundsError`], [`ArtifactError`], [`ServeError`]) — those
//! stay the right thing to match on near the failure — but library users
//! driving whole campaigns get one [`enum@Error`] with `From` impls from every
//! subsystem error, so `?` composes across layers and a single `match`
//! covers the crate.

use crate::db::DbError;
use crate::harness::EvalError;
use crate::rounds::RoundsError;
use gdse_gnn::ArtifactError;
use gdse_serve::ServeError;
use std::fmt;

/// Any failure the `gnn-dse` crate can surface, by subsystem.
#[derive(Debug)]
pub enum Error {
    /// An evaluation could not produce a result (oracle/harness layer).
    Eval(EvalError),
    /// Database persistence failed.
    Db(DbError),
    /// The rounds-loop checkpoint was unreadable or mismatched.
    Rounds(RoundsError),
    /// A model artifact failed to encode, decode, or validate.
    Artifact(ArtifactError),
    /// The prediction service failed (bind, socket, protocol).
    Serve(ServeError),
    /// A bare I/O failure outside the typed paths above.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Eval(e) => write!(f, "evaluation failed: {e}"),
            Error::Db(e) => write!(f, "database error: {e}"),
            Error::Rounds(e) => write!(f, "rounds checkpoint error: {e}"),
            Error::Artifact(e) => write!(f, "model artifact error: {e}"),
            Error::Serve(e) => write!(f, "prediction service error: {e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Eval(e) => Some(e),
            Error::Db(e) => Some(e),
            Error::Rounds(e) => Some(e),
            Error::Artifact(e) => Some(e),
            Error::Serve(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}

impl From<DbError> for Error {
    fn from(e: DbError) -> Self {
        Error::Db(e)
    }
}

impl From<RoundsError> for Error {
    fn from(e: RoundsError) -> Self {
        Error::Rounds(e)
    }
}

impl From<ArtifactError> for Error {
    fn from(e: ArtifactError) -> Self {
        Error::Artifact(e)
    }
}

impl From<ServeError> for Error {
    fn from(e: ServeError) -> Self {
        Error::Serve(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_sim::OracleFailure;

    #[test]
    fn every_subsystem_error_converts() {
        fn unified(e: impl Into<Error>) -> Error {
            e.into()
        }
        assert!(matches!(
            unified(EvalError::Permanent {
                failure: OracleFailure::Fatal { detail: "x".into() }
            }),
            Error::Eval(_)
        ));
        assert!(matches!(
            unified(DbError::Parse { path: "db.json".into(), detail: "bad".into() }),
            Error::Db(_)
        ));
        assert!(matches!(
            unified(RoundsError::Corrupt { path: "ckpt.json".into(), detail: "bad".into() }),
            Error::Rounds(_)
        ));
        assert!(matches!(unified(ArtifactError::BadMagic), Error::Artifact(_)));
        assert!(matches!(
            unified(ServeError::Protocol("bad".into())),
            Error::Serve(_)
        ));
        assert!(matches!(
            unified(std::io::Error::other("disk on fire")),
            Error::Io(_)
        ));
    }

    #[test]
    fn display_names_the_subsystem() {
        let e = Error::from(ArtifactError::BadMagic);
        assert!(e.to_string().contains("artifact"));
        let e = Error::from(ServeError::Protocol("x".into()));
        assert!(e.to_string().contains("service"));
    }

    #[test]
    fn source_chains_to_the_subsystem_error() {
        use std::error::Error as _;
        let e = Error::from(ArtifactError::BadMagic);
        assert!(e.source().is_some());
    }
}
