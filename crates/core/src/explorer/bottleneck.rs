//! AutoDSE-style bottleneck-based greedy optimizer.
//!
//! The original AutoDSE repeatedly identifies the performance bottleneck and
//! tweaks the pragma responsible for it. Our analog sweeps the pragmas in
//! the §4.4 priority order (innermost loops first, parallel > pipeline >
//! tile — the pragmas that address the hot inner loops *are* the bottleneck
//! pragmas), commits every improving option, and repeats until a full pass
//! yields no improvement or the budget runs out. "Improving" is judged by
//! the [`Objective`]'s [`Score`](crate::objective::Score): under the default
//! latency objective that is the exact cycle comparison the pre-objective
//! explorer used, so default behavior is bit-identical.
//!
//! This explorer doubles as the **AutoDSE baseline** of Table 3: its
//! modelled tool runtime is the sum of the synthesis minutes of everything
//! it evaluated.

use super::{evaluate_frontier, Budget, Explorer};
use crate::db::Database;
use crate::harness::EvalBackend;
use crate::objective::{Objective, Score};
use crate::parallel::ExecEngine;
use design_space::{order::ordered_slots, DesignPoint, DesignSpace};
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::HlsResult;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What one explorer run did: evaluations spent and the incumbent trace.
#[derive(Debug, Clone, Default)]
pub struct ExplorationLog {
    /// Fresh tool evaluations spent.
    pub evals: usize,
    /// Modelled tool wall-clock spent, in minutes.
    pub tool_minutes: f64,
    /// Incumbent (best-so-far) trace: `(eval index, cycles)`. Cycles are
    /// recorded under every objective — the trace is a latency trajectory,
    /// not an objective value.
    pub trace: Vec<(usize, u64)>,
    /// The best point found, if any feasible one exists.
    pub best: Option<(DesignPoint, HlsResult)>,
}

/// AutoDSE-like greedy explorer with random restarts: when a greedy sweep
/// converges with budget remaining, the search restarts from a random
/// configuration (AutoDSE similarly keeps exploring new bottleneck
/// hypotheses for its full time budget instead of stopping at the first
/// local optimum).
#[derive(Debug, Clone)]
pub struct BottleneckExplorer {
    /// Designs must keep every utilization below this threshold (eq. 7).
    /// Used by [`Explorer::objective`] for the deprecated scalar entry
    /// points; the scored entry points take the threshold from their
    /// [`Objective`] argument.
    pub util_threshold: f64,
    /// Seed for the restart points.
    pub seed: u64,
}

impl Default for BottleneckExplorer {
    fn default() -> Self {
        Self { util_threshold: 0.8, seed: 0 }
    }
}

impl BottleneckExplorer {
    /// Creates an explorer with the default 0.8 utilization constraint.
    pub fn new() -> Self {
        Self::default()
    }

    /// One greedy pass from `start`, scoring each slot's option frontier as
    /// a batch. The frontier is folded in candidate order, so acceptance,
    /// budget, and trace bookkeeping match a point-by-point sweep.
    #[allow(clippy::too_many_arguments)]
    fn greedy_sweep<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
        start: DesignPoint,
        log: &mut ExplorationLog,
    ) -> Option<(DesignPoint, HlsResult)> {
        let order = ordered_slots(kernel, space);

        let mut current = start;
        let first = evaluate_frontier(
            engine,
            eval,
            kernel,
            space,
            std::slice::from_ref(&current),
            db,
            log.evals,
            budget.max_evals,
        )
        .into_iter()
        .next()?;
        if first.fresh {
            log.evals += 1;
        }
        // A lost sweep start leaves nothing to improve on; the caller will
        // restart from another point with the remaining budget.
        let mut best_result = first.result?;
        if first.fresh {
            log.tool_minutes += best_result.synth_minutes;
        }
        if objective.feasible_result(&best_result) {
            log.trace.push((log.evals, best_result.cycles));
        }

        loop {
            let mut improved = false;
            for &slot in &order {
                if log.evals >= budget.max_evals {
                    break;
                }
                let cands: Vec<DesignPoint> = space.slots()[slot]
                    .options
                    .iter()
                    .filter(|&&opt| opt != current.value(slot))
                    .map(|&opt| current.with_value(slot, opt))
                    .collect();
                let items = evaluate_frontier(
                    engine,
                    eval,
                    kernel,
                    space,
                    &cands,
                    db,
                    log.evals,
                    budget.max_evals,
                );
                let mut best_here = current.clone();
                let mut best_here_result = best_result;
                let mut best_here_score = objective.score_result(&best_here_result);
                for (item, cand) in items.iter().zip(&cands) {
                    if item.fresh {
                        log.evals += 1;
                    }
                    let Some(r) = item.result else { continue };
                    if item.fresh {
                        log.tool_minutes += r.synth_minutes;
                    }
                    let score = objective.score_result(&r);
                    if score.better_than(&best_here_score) {
                        best_here = cand.clone();
                        best_here_result = r;
                        best_here_score = score;
                    }
                }
                if best_here != current {
                    current = best_here;
                    best_result = best_here_result;
                    improved = true;
                    log.trace.push((log.evals, best_result.cycles));
                }
            }
            if !improved || log.evals >= budget.max_evals {
                break;
            }
        }

        objective.feasible_result(&best_result).then_some((current, best_result))
    }
}

impl Explorer for BottleneckExplorer {
    type Log = ExplorationLog;

    /// Runs greedy sweeps (with random restarts on convergence) until the
    /// budget is spent, recording every evaluation into `db`. Each greedy
    /// slot's candidate frontier is scored through the engine's worker pool
    /// (batched, cached evaluation); with an infallible backend any worker
    /// count visits exactly the same points in the same order.
    fn explore_scored_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
    ) -> ExplorationLog {
        let mut log = ExplorationLog::default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut start = space.default_point();
        let mut global_best: Option<(DesignPoint, HlsResult)> = None;
        let mut global_best_score = Score::Infeasible;

        while log.evals < budget.max_evals {
            let before = log.evals;
            let best = self.greedy_sweep(
                engine, eval, kernel, space, db, budget, objective, start, &mut log,
            );
            if let Some((pt, r)) = best {
                // The sweep only returns feasible results, so a strict
                // score comparison suffices (ties keep the earlier best).
                let score = objective.score_result(&r);
                if score.better_than(&global_best_score) {
                    global_best = Some((pt, r));
                    global_best_score = score;
                }
            }
            if log.evals == before {
                // The restart point was already fully explored; avoid
                // spinning without spending budget.
                break;
            }
            start = space.random_point(&mut rng);
        }

        // Restarts can locally regress; the published trace is the *global*
        // incumbent (monotone prefix-minimum), which is what the hybrid
        // explorer's improvement anchors and callers expect.
        let mut mono: Vec<(usize, u64)> = Vec::with_capacity(log.trace.len());
        for &(e, c) in &log.trace {
            if mono.last().is_none_or(|&(_, best)| c < best) {
                mono.push((e, c));
            }
        }
        log.trace = mono;
        log.best = global_best;
        obs::metrics::counter_add_labeled("explorer.evals", "explorer", "bottleneck", log.evals as u64);
        obs::debug!(
            "explorer.done",
            "bottleneck: {} evals on {}",
            log.evals,
            kernel.name();
            explorer = "bottleneck",
            kernel = kernel.name(),
            evals = log.evals,
        );
        log
    }

    fn objective(&self) -> Objective {
        Objective::latency().with_util_threshold(self.util_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ResourceBudget;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn finds_a_much_better_design_than_default() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let log = BottleneckExplorer::new().explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(150),
            &Objective::latency(),
        );
        let (_, best) = log.best.expect("gemm has valid optimized designs");
        let default = sim.evaluate(&k, &space, &space.default_point());
        assert!(
            best.cycles * 10 < default.cycles,
            "greedy should find >10x: {} vs {}",
            best.cycles,
            default.cycles
        );
        assert!(best.util.fits(0.8));
        assert!(db.len() > 20, "evaluations are recorded");
    }

    #[test]
    fn respects_budget() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let log = BottleneckExplorer::new().explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(25),
            &Objective::latency(),
        );
        assert!(log.evals <= 25);
        assert!(log.tool_minutes > 0.0);
    }

    #[test]
    fn batched_sweep_reproduces_the_serial_sweep() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let obj = Objective::latency();

        let mut db_serial = Database::new();
        let serial = BottleneckExplorer::new().explore_scored(
            &sim,
            &k,
            &space,
            &mut db_serial,
            Budget::evals(80),
            &obj,
        );

        for jobs in [1, 4] {
            let engine = ExecEngine::with_jobs(jobs);
            let mut db = Database::new();
            let log = BottleneckExplorer::new().explore_scored_with(
                &engine,
                &sim,
                &k,
                &space,
                &mut db,
                Budget::evals(80),
                &obj,
            );
            assert_eq!(log.evals, serial.evals, "jobs={jobs}");
            assert_eq!(log.trace, serial.trace, "jobs={jobs}");
            assert_eq!(
                log.best.as_ref().map(|(p, r)| (p.clone(), r.cycles)),
                serial.best.as_ref().map(|(p, r)| (p.clone(), r.cycles)),
                "jobs={jobs}"
            );
            assert_eq!(db.entries(), db_serial.entries(), "jobs={jobs}");
        }
    }

    #[test]
    fn incumbent_trace_is_monotonic() {
        let k = kernels::atax();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let log = BottleneckExplorer::new().explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(120),
            &Objective::latency(),
        );
        for w in log.trace.windows(2) {
            assert!(w[1].1 <= w[0].1, "incumbent cycles must not regress");
        }
    }

    #[test]
    fn budgeted_objective_constrains_the_returned_best() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let budget = ResourceBudget::parse("dsp=0.5,lut=0.5").unwrap();
        let obj = Objective::latency().with_budget(budget);
        let log = BottleneckExplorer::new().explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(120),
            &obj,
        );
        if let Some((_, best)) = log.best {
            assert!(budget.admits(&best.util), "best must respect the budget: {:?}", best.util);
        }
    }
}
