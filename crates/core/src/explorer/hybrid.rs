//! Hybrid explorer: bottleneck optimizer + local search (§4.1).
//!
//! "A hybrid explorer combining the bottleneck-based optimizer with a local
//! search, which evaluates up to P neighbors of the best design point after
//! X% improvement in its quality. Thus, the model can see the effect of
//! modifying only one of the pragmas."
//!
//! Because our greedy phase already sweeps the full Hamming-1 shell of its
//! incumbent, the local search also samples Hamming-2 perturbations so the
//! database gains configurations the greedy pass never visits.

use super::bottleneck::{BottleneckExplorer, ExplorationLog};
use super::{dedupe_canonical, evaluate_frontier, Budget, Explorer};
use crate::db::Database;
use crate::harness::EvalBackend;
use crate::objective::Objective;
use crate::parallel::ExecEngine;
use design_space::DesignSpace;
use gdse_obs as obs;
use hls_ir::Kernel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Bottleneck optimizer followed by Hamming-1 local search around the
/// incumbents that improved the design by at least `improvement_pct`.
#[derive(Debug, Clone)]
pub struct HybridExplorer {
    /// Utilization constraint for the deprecated scalar entry points (the
    /// scored entry points take it from their [`Objective`] argument).
    pub util_threshold: f64,
    /// Neighbors evaluated per improvement event (the paper's `P`).
    pub neighbors_per_improvement: usize,
    /// Improvement (in percent) that triggers the local search (the `X%`).
    pub improvement_pct: f64,
    /// RNG seed for neighbor sampling.
    pub seed: u64,
}

impl Default for HybridExplorer {
    fn default() -> Self {
        Self { util_threshold: 0.8, neighbors_per_improvement: 12, improvement_pct: 20.0, seed: 0 }
    }
}

impl HybridExplorer {
    /// Creates a hybrid explorer with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }
}

impl Explorer for HybridExplorer {
    type Log = ExplorationLog;

    /// Runs bottleneck + local search, recording everything into `db`. The
    /// greedy phase is delegated to [`BottleneckExplorer`] under the same
    /// objective; each local-search round's deduplicated neighbor list is
    /// scored as one batch on the engine's pool.
    fn explore_scored_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
    ) -> ExplorationLog {
        // Phase 1: greedy, with half the budget.
        let greedy = BottleneckExplorer { util_threshold: self.util_threshold, seed: self.seed };
        let mut log = greedy.explore_scored_with(
            engine,
            eval,
            kernel,
            space,
            db,
            Budget::evals(budget.max_evals / 2),
            objective,
        );
        let greedy_evals = log.evals;
        let mut best_score = log
            .best
            .as_ref()
            .map(|(_, r)| objective.score_result(r))
            .unwrap_or(crate::objective::Score::Infeasible);

        // Phase 2: local search around incumbents that improved >= X%.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut anchors = Vec::new();
        for w in log.trace.windows(2) {
            let (prev, cur) = (w[0].1 as f64, w[1].1 as f64);
            if prev > 0.0 && (prev - cur) / prev * 100.0 >= self.improvement_pct {
                anchors.push(w[1]);
            }
        }
        // Always search around the final best.
        let best_point = log.best.as_ref().map(|(p, _)| p.clone());
        let mut centers = Vec::new();
        if let Some(p) = best_point {
            centers.push(p);
        }
        // The trace does not store points, so the local search centers on
        // the final best once per anchor — each round with a fresh shuffle.
        let rounds = anchors.len().max(1);
        for _ in 0..rounds {
            if log.evals >= budget.max_evals {
                break;
            }
            let Some(center) = centers.last().cloned() else { break };
            // Hamming-1 neighbors plus sampled Hamming-2 perturbations: the
            // greedy phase has usually evaluated the entire Hamming-1 shell
            // of its incumbent, so two-pragma changes are what actually add
            // unseen "effect of modifying a pragma" samples.
            let mut neighbors = space.neighbors(&center);
            let shell1 = neighbors.clone();
            for base in shell1.iter().take(self.neighbors_per_improvement) {
                let mut more = space.neighbors(base);
                more.shuffle(&mut rng);
                neighbors.extend(more.into_iter().take(2));
            }
            neighbors.shuffle(&mut rng);
            // Two raw neighbors can collapse to the same canonical config
            // (masked pragmas); dedupe so no config is scored twice in one
            // local-search round.
            let deduped = dedupe_canonical(kernel, space, &neighbors);
            let batch: Vec<_> =
                deduped.into_iter().take(self.neighbors_per_improvement * 3).collect();
            let items = evaluate_frontier(
                engine,
                eval,
                kernel,
                space,
                &batch,
                db,
                log.evals,
                budget.max_evals,
            );
            for item in items {
                if item.fresh {
                    log.evals += 1;
                }
                let Some(r) = item.result else { continue };
                if item.fresh {
                    log.tool_minutes += r.synth_minutes;
                }
                let score = objective.score_result(&r);
                let better = match &log.best {
                    None => score.is_feasible(),
                    Some(_) => score.better_than(&best_score),
                };
                if better {
                    log.trace.push((log.evals, r.cycles));
                    log.best = Some((item.point.clone(), r));
                    best_score = score;
                    centers.push(item.point);
                }
            }
        }
        // Phase 1 already booked its evals under `explorer=bottleneck`; only
        // the local-search delta is attributed to the hybrid explorer.
        let local = (log.evals - greedy_evals) as u64;
        obs::metrics::counter_add_labeled("explorer.evals", "explorer", "hybrid", local);
        obs::debug!(
            "explorer.done",
            "hybrid: {} local-search evals on {}",
            local,
            kernel.name();
            explorer = "hybrid",
            kernel = kernel.name(),
            evals = local,
        );
        log
    }

    fn objective(&self) -> Objective {
        Objective::latency().with_util_threshold(self.util_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn hybrid_explores_neighbors_beyond_greedy() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let obj = Objective::latency();

        let mut db_greedy = Database::new();
        BottleneckExplorer::new().explore_scored(
            &sim,
            &k,
            &space,
            &mut db_greedy,
            Budget::evals(60),
            &obj,
        );

        let mut db_hybrid = Database::new();
        let log = HybridExplorer::with_seed(1).explore_scored(
            &sim,
            &k,
            &space,
            &mut db_hybrid,
            Budget::evals(120),
            &obj,
        );
        assert!(log.best.is_some());
        // The hybrid run covers points the greedy run (with the same first
        // phase) never visits.
        let extra = db_hybrid
            .entries()
            .iter()
            .filter(|e| !db_greedy.contains(&e.kernel, &e.point))
            .count();
        assert!(extra > 0, "local search should add unseen neighbors");
    }

    #[test]
    fn batched_hybrid_reproduces_the_serial_hybrid() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let obj = Objective::latency();

        let mut db_serial = Database::new();
        let serial = HybridExplorer::with_seed(1).explore_scored(
            &sim,
            &k,
            &space,
            &mut db_serial,
            Budget::evals(100),
            &obj,
        );

        for jobs in [1, 4] {
            let engine = ExecEngine::with_jobs(jobs);
            let mut db = Database::new();
            let log = HybridExplorer::with_seed(1).explore_scored_with(
                &engine,
                &sim,
                &k,
                &space,
                &mut db,
                Budget::evals(100),
                &obj,
            );
            assert_eq!(log.evals, serial.evals, "jobs={jobs}");
            assert_eq!(
                log.best.as_ref().map(|(_, r)| r.cycles),
                serial.best.as_ref().map(|(_, r)| r.cycles),
                "jobs={jobs}"
            );
            assert_eq!(db.entries(), db_serial.entries(), "jobs={jobs}");
        }
    }

    #[test]
    fn hybrid_never_worse_than_its_greedy_phase() {
        let k = kernels::atax();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let obj = Objective::latency();
        let mut db = Database::new();
        let explorer = HybridExplorer::with_seed(2);
        let log = explorer.explore_scored(&sim, &k, &space, &mut db, Budget::evals(100), &obj);
        let best = log.best.expect("valid design").1;
        let mut db2 = Database::new();
        // Reconstruct exactly the greedy phase the hybrid ran (same seed and
        // threshold, half the budget) so the comparison is structural rather
        // than dependent on a particular RNG stream.
        let greedy_phase =
            BottleneckExplorer { util_threshold: explorer.util_threshold, seed: explorer.seed };
        let greedy =
            greedy_phase.explore_scored(&sim, &k, &space, &mut db2, Budget::evals(50), &obj);
        let greedy_best = greedy.best.expect("valid design").1;
        assert!(best.cycles <= greedy_best.cycles);
    }
}
