//! Random explorer (§4.1): uniform configurations the guided explorers skip.

use super::{evaluate_frontier, Budget, Explorer};
use crate::db::Database;
use crate::harness::EvalBackend;
use crate::objective::Objective;
use crate::parallel::ExecEngine;
use design_space::DesignSpace;
use gdse_obs as obs;
use hls_ir::Kernel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform random sampler over the design space (deduplicated, canonical).
#[derive(Debug, Clone)]
pub struct RandomExplorer {
    /// RNG seed.
    pub seed: u64,
}

impl RandomExplorer {
    /// Creates a random explorer.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Explorer for RandomExplorer {
    /// The number of fresh evaluations spent.
    type Log = usize;

    /// Samples random points until the budget is spent, drawing fixed-size
    /// waves and scoring each wave as one batch on the engine's pool.
    ///
    /// The wave size is a constant (not a function of the worker count), so
    /// the RNG stream — and with it the sampled points, the database, and
    /// the eval count — is identical at every `--jobs` setting. Uniform
    /// sampling optimizes nothing, so the objective is ignored: the same
    /// configurations are drawn under every [`Objective`].
    fn explore_scored_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        _objective: &Objective,
    ) -> usize {
        const WAVE: usize = 64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evals = 0;
        // Sampling may hit duplicates; bound the attempts so tiny spaces
        // terminate.
        let max_attempts = budget.max_evals.saturating_mul(20).max(64);
        let mut attempts = 0;
        while evals < budget.max_evals && attempts < max_attempts {
            let n = WAVE.min(max_attempts - attempts);
            let wave: Vec<_> = (0..n).map(|_| space.random_point(&mut rng)).collect();
            attempts += n;
            let items =
                evaluate_frontier(engine, eval, kernel, space, &wave, db, evals, budget.max_evals);
            evals += items.iter().filter(|i| i.fresh).count();
        }
        obs::metrics::counter_add_labeled("explorer.evals", "explorer", "random", evals as u64);
        obs::debug!(
            "explorer.done",
            "random: {} evals on {}",
            evals,
            kernel.name();
            explorer = "random",
            kernel = kernel.name(),
            evals = evals,
        );
        evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn random_fills_the_budget_on_large_spaces() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let n = RandomExplorer::new(3).explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(40),
            &Objective::latency(),
        );
        assert_eq!(n, 40);
        assert_eq!(db.len(), 40);
    }

    #[test]
    fn random_terminates_on_tiny_spaces() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        // Budget exceeds the canonical space; attempts cap must stop it.
        let n = RandomExplorer::new(4).explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(1000),
            &Objective::latency(),
        );
        assert!(n <= 45);
        assert!(db.len() <= 45);
    }

    #[test]
    fn wave_sampling_is_jobs_invariant_and_respects_budget() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();

        let mut reference: Option<Vec<crate::db::DbEntry>> = None;
        for jobs in [1, 4, 8] {
            let engine = ExecEngine::with_jobs(jobs);
            let mut db = Database::new();
            let n = RandomExplorer::new(3).explore_scored_with(
                &engine,
                &sim,
                &k,
                &space,
                &mut db,
                Budget::evals(40),
                &Objective::latency(),
            );
            assert_eq!(n, 40, "jobs={jobs}");
            match &reference {
                None => reference = Some(db.entries().to_vec()),
                Some(r) => assert_eq!(db.entries(), &r[..], "jobs={jobs}"),
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let k = kernels::spmv_ellpack();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut a = Database::new();
        let mut b = Database::new();
        let obj = Objective::latency();
        RandomExplorer::new(9).explore_scored(&sim, &k, &space, &mut a, Budget::evals(20), &obj);
        RandomExplorer::new(9).explore_scored(&sim, &k, &space, &mut b, Budget::evals(20), &obj);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_scalar_shims_match_the_scored_methods() {
        let k = kernels::spmv_ellpack();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut via_shim = Database::new();
        let mut via_scored = Database::new();
        let e = RandomExplorer::new(11);
        let n1 = e.explore(&sim, &k, &space, &mut via_shim, Budget::evals(15));
        let n2 = e.explore_scored(
            &sim,
            &k,
            &space,
            &mut via_scored,
            Budget::evals(15),
            &e.objective(),
        );
        assert_eq!(n1, n2);
        assert_eq!(via_shim.entries(), via_scored.entries());
    }
}
