//! GFlowNet-style trajectory sampler — a learned, zero-dependency explorer.
//!
//! A design is built as a trajectory of slot assignments in fixed slot
//! order; a tabular policy (one logit per `(slot, option)` pair) samples
//! each step from its softmax. The policy is trained online from harness
//! evaluations with the trajectory-balance objective
//!
//! ```text
//! L(τ) = (log Z + Σᵢ log P_F(oᵢ | sᵢ) − log R(τ))²
//! ```
//!
//! so at convergence the sampler draws configurations **in proportion to
//! their reward** rather than collapsing onto one argmax — exactly the
//! diversity a database generator and a Pareto front need. Logits start at
//! zero (uniform), so early waves match uniform random sampling and the
//! learner can only sharpen from there.
//!
//! Everything is plain arithmetic on `Vec<f64>` — no tensor dependency —
//! and every wave is evaluated through
//! [`evaluate_frontier`](super::evaluate_frontier), which keeps the search
//! byte-identical at any `--jobs` setting.

use super::{evaluate_frontier, Budget, Explorer, ExplorationLog};
use crate::db::Database;
use crate::harness::EvalBackend;
use crate::objective::{Objective, Score};
use crate::parallel::ExecEngine;
use design_space::{DesignPoint, DesignSpace};
use gdse_obs as obs;
use hls_ir::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Floor reward for infeasible designs: small but positive so log-space
/// updates stay finite and the sampler keeps a nonzero escape probability.
const MIN_REWARD: f64 = 1e-4;
/// Reward ceiling, bounding the trajectory-balance error on outliers.
const MAX_REWARD: f64 = 1e6;

/// The tabular trajectory policy: per-(slot, option) logits plus the
/// trajectory-balance partition estimate `log Z`. Shared between the
/// [`GFlowExplorer`] (oracle rewards) and the DSE candidate sampler
/// (surrogate rewards).
#[derive(Debug, Clone)]
pub(crate) struct GFlowSampler {
    /// `logits[slot][option]`, initialized to zero (uniform policy).
    logits: Vec<Vec<f64>>,
    /// Trajectory-balance `log Z` estimate.
    log_z: f64,
    /// SGD step size.
    lr: f64,
}

impl GFlowSampler {
    /// A uniform policy over `space`.
    pub fn new(space: &DesignSpace, lr: f64) -> Self {
        let logits = space.slots().iter().map(|s| vec![0.0; s.options.len()]).collect();
        Self { logits, log_z: 0.0, lr }
    }

    /// Softmax probabilities of one slot's options (numerically stable).
    fn probs(&self, slot: usize) -> Vec<f64> {
        let l = &self.logits[slot];
        let m = l.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = l.iter().map(|v| (v - m).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    /// Samples one trajectory: a full slot assignment in fixed slot order.
    /// Returns the design point and the option index chosen at each slot.
    pub fn sample(&self, space: &DesignSpace, rng: &mut StdRng) -> (DesignPoint, Vec<usize>) {
        let mut point = space.default_point();
        let mut choices = Vec::with_capacity(self.logits.len());
        for (slot, pragma) in space.slots().iter().enumerate() {
            let p = self.probs(slot);
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut pick = p.len() - 1;
            for (j, pj) in p.iter().enumerate() {
                acc += pj;
                if u < acc {
                    pick = j;
                    break;
                }
            }
            point.set_value(slot, pragma.options[pick]);
            choices.push(pick);
        }
        (point, choices)
    }

    /// One trajectory-balance SGD step for a trajectory with the given
    /// per-slot choices and reward. Gradients are taken at the *current*
    /// parameters (on-policy within a wave, slightly stale across one —
    /// standard for online TB training).
    pub fn update(&mut self, choices: &[usize], reward: f64) {
        let reward = reward.clamp(MIN_REWARD, MAX_REWARD);
        // delta = log Z + sum_i log P_F(o_i) - log R
        let mut sum_logp = 0.0;
        let mut slot_probs = Vec::with_capacity(choices.len());
        for (slot, &o) in choices.iter().enumerate() {
            let p = self.probs(slot);
            sum_logp += p[o].max(1e-300).ln();
            slot_probs.push(p);
        }
        let delta = self.log_z + sum_logp - reward.ln();
        // d delta / d logit[slot][j] = 1{j = o} - p_j; squared loss gives
        // the extra factor 2 * delta.
        let step = self.lr * 2.0 * delta;
        for (slot, &o) in choices.iter().enumerate() {
            let p = &slot_probs[slot];
            for (j, pj) in p.iter().enumerate() {
                let indicator = if j == o { 1.0 } else { 0.0 };
                self.logits[slot][j] -= step * (indicator - pj);
            }
        }
        self.log_z -= step;
    }
}

/// A GFlowNet-style learned explorer: samples design trajectories from a
/// tabular softmax policy and trains it online (trajectory balance) on the
/// rewards of the oracle evaluations it spends — the fifth [`Explorer`],
/// pluggable wherever the §4.1 explorers are.
#[derive(Debug, Clone)]
pub struct GFlowExplorer {
    /// Utilization constraint for the deprecated scalar entry points (the
    /// scored entry points take it from their [`Objective`] argument).
    pub util_threshold: f64,
    /// RNG seed (sampling stream).
    pub seed: u64,
    /// Trajectories sampled per wave. A constant (never a function of the
    /// worker count) so the run is `--jobs`-invariant.
    pub wave: usize,
    /// Trajectory-balance SGD step size.
    pub lr: f64,
}

impl Default for GFlowExplorer {
    fn default() -> Self {
        Self { util_threshold: 0.8, seed: 0, wave: 32, lr: 0.05 }
    }
}

impl GFlowExplorer {
    /// Creates a sampler explorer with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Trajectory reward: how many times faster than `baseline` cycles the
    /// design's objective scalar is (clamped). Infeasible designs earn the
    /// floor reward — still positive, so the policy keeps mass everywhere.
    fn reward(score: &Score, baseline: f64) -> f64 {
        match score.scalar() {
            Some(v) => (baseline / v.max(1.0)).clamp(MIN_REWARD, MAX_REWARD),
            None => MIN_REWARD,
        }
    }
}

impl Explorer for GFlowExplorer {
    type Log = ExplorationLog;

    /// Samples fixed-size waves of trajectories, scores each wave as one
    /// batch on the engine's pool, and applies one trajectory-balance
    /// update per trajectory. Duplicate and database-hit trajectories
    /// still train the policy (their result is known and free), they just
    /// spend no budget.
    fn explore_scored_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
    ) -> ExplorationLog {
        let mut log = ExplorationLog::default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sampler = GFlowSampler::new(space, self.lr);
        let mut best_score = Score::Infeasible;

        // The default design anchors the reward scale.
        let first = evaluate_frontier(
            engine,
            eval,
            kernel,
            space,
            std::slice::from_ref(&space.default_point()),
            db,
            log.evals,
            budget.max_evals,
        )
        .into_iter()
        .next();
        let mut baseline = 1e9;
        if let Some(item) = first {
            if item.fresh {
                log.evals += 1;
            }
            if let Some(r) = item.result {
                if item.fresh {
                    log.tool_minutes += r.synth_minutes;
                }
                if r.is_valid() {
                    baseline = (r.cycles.max(1)) as f64;
                }
                let score = objective.score_result(&r);
                if score.better_than(&best_score) {
                    log.trace.push((log.evals, r.cycles));
                    log.best = Some((item.point, r));
                    best_score = score;
                }
            }
        }

        // Sampling may concentrate; bound the attempts so tiny spaces and
        // converged policies terminate.
        let max_attempts = budget.max_evals.saturating_mul(20).max(64);
        let mut attempts = 0;
        while log.evals < budget.max_evals && attempts < max_attempts {
            let n = self.wave.max(1).min(max_attempts - attempts);
            let trajectories: Vec<(DesignPoint, Vec<usize>)> =
                (0..n).map(|_| sampler.sample(space, &mut rng)).collect();
            attempts += n;
            let wave: Vec<DesignPoint> =
                trajectories.iter().map(|(p, _)| p.clone()).collect();
            let items = evaluate_frontier(
                engine,
                eval,
                kernel,
                space,
                &wave,
                db,
                log.evals,
                budget.max_evals,
            );
            // `items` can be shorter than the wave when the budget cuts the
            // frontier; the zip drops the unevaluated tail (it spent no
            // budget and yields no reward signal).
            for (item, (_, choices)) in items.iter().zip(&trajectories) {
                if item.fresh {
                    log.evals += 1;
                }
                let Some(r) = item.result else { continue };
                if item.fresh {
                    log.tool_minutes += r.synth_minutes;
                }
                let score = objective.score_result(&r);
                if score.better_than(&best_score) {
                    log.trace.push((log.evals, r.cycles));
                    log.best = Some((item.point.clone(), r));
                    best_score = score;
                }
                sampler.update(choices, Self::reward(&score, baseline));
            }
        }

        obs::metrics::counter_add_labeled("explorer.evals", "explorer", "gflow", log.evals as u64);
        obs::debug!(
            "explorer.done",
            "gflow: {} evals on {}",
            log.evals,
            kernel.name();
            explorer = "gflow",
            kernel = kernel.name(),
            evals = log.evals,
        );
        log
    }

    fn objective(&self) -> Objective {
        Objective::latency().with_util_threshold(self.util_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn sampler_starts_uniform_and_sharpens_toward_reward() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let mut s = GFlowSampler::new(&space, 0.1);
        let p0 = s.probs(0);
        let uniform = 1.0 / p0.len() as f64;
        assert!(p0.iter().all(|p| (p - uniform).abs() < 1e-12), "zero logits = uniform");

        // Repeatedly reward option 0 of every slot; its probability must
        // grow past uniform.
        let choices: Vec<usize> = vec![0; space.num_slots()];
        for _ in 0..50 {
            s.update(&choices, 100.0);
        }
        let p = s.probs(0);
        assert!(p[0] > uniform, "rewarded option should gain mass: {} vs {uniform}", p[0]);
    }

    #[test]
    fn finds_a_better_design_than_default() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let log = GFlowExplorer::with_seed(3).explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(120),
            &Objective::latency(),
        );
        let default = sim.evaluate(&k, &space, &space.default_point());
        let (_, best) = log.best.expect("finds a valid design");
        assert!(best.cycles < default.cycles, "{} !< {}", best.cycles, default.cycles);
        assert!(best.util.fits(0.8));
        assert!(log.evals <= 120);
    }

    #[test]
    fn wave_sampling_is_jobs_invariant() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();

        let mut reference: Option<Vec<crate::db::DbEntry>> = None;
        for jobs in [1, 4] {
            let engine = ExecEngine::with_jobs(jobs);
            let mut db = Database::new();
            let log = GFlowExplorer::with_seed(3).explore_scored_with(
                &engine,
                &sim,
                &k,
                &space,
                &mut db,
                Budget::evals(40),
                &Objective::latency(),
            );
            assert!(log.evals <= 40, "jobs={jobs}");
            match &reference {
                None => reference = Some(db.entries().to_vec()),
                Some(r) => assert_eq!(db.entries(), &r[..], "jobs={jobs}"),
            }
        }
    }

    #[test]
    fn deterministic_under_seed_and_terminates_on_tiny_spaces() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut a = Database::new();
        let mut b = Database::new();
        let obj = Objective::latency();
        let la = GFlowExplorer::with_seed(9)
            .explore_scored(&sim, &k, &space, &mut a, Budget::evals(500), &obj);
        let lb = GFlowExplorer::with_seed(9)
            .explore_scored(&sim, &k, &space, &mut b, Budget::evals(500), &obj);
        assert_eq!(a.entries(), b.entries());
        assert_eq!(la.evals, lb.evals);
        assert!(la.evals <= 45, "tiny canonical space bounds the evals");
    }

    #[test]
    fn budgeted_objective_constrains_the_returned_best() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let budget = crate::objective::ResourceBudget::parse("dsp=0.5").unwrap();
        let obj = Objective::latency().with_budget(budget);
        let log = GFlowExplorer::with_seed(1).explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(80),
            &obj,
        );
        if let Some((_, best)) = log.best {
            assert!(budget.admits(&best.util));
        }
    }
}
