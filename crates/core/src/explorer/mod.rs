//! The database-generation explorers of §4.1.
//!
//! GNN-DSE extends AutoDSE with three explorers so the training set contains
//! designs "from bad to good":
//!
//! * [`BottleneckExplorer`] — AutoDSE's greedy bottleneck-based optimizer
//!   (also the Table 3 baseline);
//! * [`HybridExplorer`] — the bottleneck optimizer plus a local search over
//!   neighbors of the incumbent after significant improvements;
//! * [`RandomExplorer`] — uniform random configurations that the other two
//!   skip.
//!
//! [`AnnealingExplorer`] adds the classic simulated-annealing baseline from
//! the related work (not part of the paper's database generator, used for
//! baseline comparisons).

mod annealing;
mod bottleneck;
mod hybrid;
mod random;

pub use annealing::AnnealingExplorer;
pub use bottleneck::{BottleneckExplorer, ExplorationLog};
pub use hybrid::HybridExplorer;
pub use random::RandomExplorer;

use crate::db::Database;
use design_space::{DesignPoint, DesignSpace};
use hls_ir::Kernel;
use merlin_sim::{HlsResult, MerlinSimulator};

/// Shared exploration limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of HLS-tool evaluations.
    pub max_evals: usize,
}

impl Budget {
    /// A budget of `max_evals` evaluations.
    pub fn evals(max_evals: usize) -> Self {
        Self { max_evals }
    }
}

/// Evaluates `point` (deduplicated against `db`), recording the result.
/// Returns the result and whether a fresh evaluation was spent.
pub(crate) fn evaluate_into_db(
    sim: &MerlinSimulator,
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    db: &mut Database,
) -> (HlsResult, bool) {
    let canonical = design_space::rules::canonicalize(kernel, space, point);
    if let Some(e) = db.get(kernel.name(), &canonical) {
        return (e.result, false);
    }
    let r = sim.evaluate(kernel, space, &canonical);
    db.insert(kernel.name(), canonical, r);
    (r, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;

    #[test]
    fn evaluate_into_db_dedups_canonical_forms() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let p = space.default_point();
        let (_, fresh1) = evaluate_into_db(&sim, &k, &space, &p, &mut db);
        let (_, fresh2) = evaluate_into_db(&sim, &k, &space, &p, &mut db);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(db.len(), 1);
    }
}
