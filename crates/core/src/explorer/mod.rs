//! The database-generation explorers of §4.1.
//!
//! GNN-DSE extends AutoDSE with three explorers so the training set contains
//! designs "from bad to good":
//!
//! * [`BottleneckExplorer`] — AutoDSE's greedy bottleneck-based optimizer
//!   (also the Table 3 baseline);
//! * [`HybridExplorer`] — the bottleneck optimizer plus a local search over
//!   neighbors of the incumbent after significant improvements;
//! * [`RandomExplorer`] — uniform random configurations that the other two
//!   skip.
//!
//! [`AnnealingExplorer`] adds the classic simulated-annealing baseline from
//! the related work (not part of the paper's database generator, used for
//! baseline comparisons), and [`GFlowExplorer`] a learned trajectory
//! sampler that draws diverse high-reward configurations in proportion to
//! their reward.

//! All five implement the [`Explorer`] trait — one engine-taking,
//! [`Objective`]-parameterized entry point,
//! [`Explorer::explore_scored_with`], with [`Explorer::explore_scored`] as a
//! serial-engine convenience — so campaigns can drive any mix of explorers
//! through one shared [`ExecEngine`] under any objective (scalar latency,
//! weighted sum, or Pareto, with optional resource budgets).

mod annealing;
mod bottleneck;
mod gflow;
mod hybrid;
mod random;

pub use annealing::AnnealingExplorer;
pub use bottleneck::{BottleneckExplorer, ExplorationLog};
pub use gflow::GFlowExplorer;
pub use hybrid::HybridExplorer;
pub use random::RandomExplorer;

pub(crate) use gflow::GFlowSampler;

use crate::db::Database;
use crate::harness::EvalBackend;
use crate::objective::Objective;
use crate::parallel::ExecEngine;
use design_space::{DesignPoint, DesignSpace};
use hls_ir::Kernel;
use merlin_sim::HlsResult;
use std::collections::HashMap;

/// Shared exploration limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of HLS-tool evaluations.
    pub max_evals: usize,
}

impl Budget {
    /// A budget of `max_evals` evaluations.
    pub fn evals(max_evals: usize) -> Self {
        Self { max_evals }
    }
}

/// The unified exploration interface.
///
/// Every explorer has exactly one implementation of its search, written
/// against an [`ExecEngine`] and an [`Objective`]: candidate frontiers are
/// scored through the engine's worker pool and oracle cache, comparisons go
/// through the objective's ordered, dominance-aware
/// [`Score`](crate::objective::Score) (never raw `f64` cycles), and the
/// serial behavior is just the same code on a single-worker engine.
/// [`Explorer::explore_scored`] is that serial convenience — a default
/// method, so implementors only write [`Explorer::explore_scored_with`].
///
/// The scalar entry points [`Explorer::explore_with`] / [`Explorer::explore`]
/// predate the objective parameter; they are deprecated shims that run the
/// search under [`Explorer::objective`] (each explorer's own threshold,
/// latency mode) so external callers compile — and behave — unchanged.
pub trait Explorer {
    /// What one run returns: an [`ExplorationLog`] for the guided
    /// explorers, the fresh-evaluation count for [`RandomExplorer`].
    type Log;

    /// Explores `kernel`'s `space` within `budget` under `objective`,
    /// scoring candidates through `engine` and recording every evaluation
    /// into `db`.
    #[allow(clippy::too_many_arguments)]
    fn explore_scored_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
    ) -> Self::Log;

    /// [`Explorer::explore_scored_with`] on a fresh single-worker engine:
    /// batched code path, serial execution.
    fn explore_scored<B: EvalBackend + Sync>(
        &self,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
    ) -> Self::Log {
        self.explore_scored_with(&ExecEngine::serial(), eval, kernel, space, db, budget, objective)
    }

    /// The objective this explorer optimizes when called through the
    /// deprecated scalar entry points: latency mode under the explorer's
    /// own utilization threshold — exactly the pre-redesign behavior.
    fn objective(&self) -> Objective {
        Objective::default()
    }

    /// Deprecated scalar shim: [`Explorer::explore_scored_with`] under
    /// [`Explorer::objective`].
    #[deprecated(note = "use `explore_scored_with` with an explicit `Objective`")]
    fn explore_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
    ) -> Self::Log {
        self.explore_scored_with(engine, eval, kernel, space, db, budget, &self.objective())
    }

    /// Deprecated scalar shim: [`Explorer::explore_scored`] under
    /// [`Explorer::objective`].
    #[deprecated(note = "use `explore_scored` with an explicit `Objective`")]
    fn explore<B: EvalBackend + Sync>(
        &self,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
    ) -> Self::Log {
        self.explore_scored(eval, kernel, space, db, budget, &self.objective())
    }
}

/// Canonicalizes `points` and drops canonical duplicates (first occurrence
/// wins, order otherwise preserved).
///
/// The explorers assemble candidate lists whose raw entries can collapse to
/// the same canonical configuration (e.g. two Hamming-1 neighbors that only
/// differ in a masked pragma); deduplicating *before* submission keeps them
/// from scoring the same config twice in one step.
pub(crate) fn dedupe_canonical(
    kernel: &Kernel,
    space: &DesignSpace,
    points: &[DesignPoint],
) -> Vec<DesignPoint> {
    let mut seen = std::collections::HashSet::new();
    points
        .iter()
        .map(|p| design_space::rules::canonicalize(kernel, space, p))
        .filter(|c| seen.insert(c.clone()))
        .collect()
}

/// Evaluates `point` (deduplicated against `db`), recording the result.
///
/// Returns the result (`None` when the backend lost the point to tool
/// failure — nothing is recorded, so a later run can pick it up again) and
/// whether a fresh evaluation was spent. Lost points still spend budget:
/// the attempts consumed real tool time. The miss is evaluated by
/// [`ExecEngine::evaluate_ordered`] (single-point batch), so it benefits
/// from the engine's oracle cache and its merged per-worker accounting.
pub(crate) fn evaluate_into_db_with<B: EvalBackend + Sync>(
    engine: &ExecEngine,
    eval: &B,
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    db: &mut Database,
) -> (Option<HlsResult>, bool) {
    let canonical = design_space::rules::canonicalize(kernel, space, point);
    if let Some(e) = db.get(kernel.name(), &canonical) {
        return (Some(e.result), false);
    }
    let result = engine
        .evaluate_ordered(eval, kernel, space, std::slice::from_ref(&canonical))
        .pop()
        .expect("one result per submitted point");
    match result {
        Ok(r) => {
            db.insert(kernel.name(), canonical, r);
            (Some(r), true)
        }
        Err(_) => (None, true),
    }
}

/// One candidate's outcome from [`evaluate_frontier`].
#[derive(Debug, Clone)]
pub(crate) struct FrontierItem {
    /// The canonical form of the candidate.
    pub point: DesignPoint,
    /// The HLS result (`None` when the backend lost the point).
    pub result: Option<HlsResult>,
    /// Whether a fresh tool evaluation was spent on this candidate.
    pub fresh: bool,
}

/// Scores a whole candidate frontier through the engine's worker pool,
/// replicating the serial explorer semantics item by item.
///
/// Candidates are scanned in order. Scanning stops as soon as the budget
/// (`evals_so_far` plus the fresh evaluations already planned) reaches
/// `max_evals` — exactly where the serial per-candidate loop would `break`,
/// so the returned list can be shorter than `candidates`. A candidate
/// already in `db` is a free hit; a canonical duplicate of an earlier
/// candidate in the same frontier reuses that candidate's outcome without
/// spending budget (the duplicate-neighbor fix). Everything else is a
/// planned fresh evaluation: planned points run through
/// [`ExecEngine::evaluate_ordered`] and successes are recorded into `db` in
/// plan order, so any worker count yields the same database as `--jobs 1`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_frontier<B: EvalBackend + Sync>(
    engine: &ExecEngine,
    eval: &B,
    kernel: &Kernel,
    space: &DesignSpace,
    candidates: &[DesignPoint],
    db: &mut Database,
    evals_so_far: usize,
    max_evals: usize,
) -> Vec<FrontierItem> {
    // Per scanned candidate: either a finished item or an index into
    // `planned` to splice once the batch comes back.
    enum Slot {
        Done(FrontierItem),
        Planned(usize),
        Duplicate(usize),
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut planned: Vec<DesignPoint> = Vec::new();
    let mut planned_idx: HashMap<DesignPoint, usize> = HashMap::new();

    for cand in candidates {
        if evals_so_far + planned.len() >= max_evals {
            break;
        }
        let canonical = design_space::rules::canonicalize(kernel, space, cand);
        if let Some(e) = db.get(kernel.name(), &canonical) {
            slots.push(Slot::Done(FrontierItem {
                point: canonical,
                result: Some(e.result),
                fresh: false,
            }));
            continue;
        }
        if let Some(&idx) = planned_idx.get(&canonical) {
            slots.push(Slot::Duplicate(idx));
            continue;
        }
        planned_idx.insert(canonical.clone(), planned.len());
        planned.push(canonical);
        slots.push(Slot::Planned(planned.len() - 1));
    }

    let results = engine.evaluate_ordered(eval, kernel, space, &planned);
    for (point, result) in planned.iter().zip(&results) {
        if let Ok(r) = result {
            db.insert(kernel.name(), point.clone(), *r);
        }
    }

    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Done(item) => item,
            Slot::Planned(i) => FrontierItem {
                point: planned[i].clone(),
                result: results[i].as_ref().ok().copied(),
                fresh: true,
            },
            Slot::Duplicate(i) => FrontierItem {
                point: planned[i].clone(),
                result: results[i].as_ref().ok().copied(),
                fresh: false,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn evaluate_into_db_dedups_canonical_forms() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let engine = ExecEngine::serial();
        let mut db = Database::new();
        let p = space.default_point();
        let (r1, fresh1) = evaluate_into_db_with(&engine, &sim, &k, &space, &p, &mut db);
        let (r2, fresh2) = evaluate_into_db_with(&engine, &sim, &k, &space, &p, &mut db);
        assert!(r1.is_some() && r2.is_some());
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn frontier_respects_budget_db_hits_and_duplicates() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let engine = ExecEngine::with_jobs(4);
        let mut db = Database::new();
        let p0 = space.default_point();
        // Pre-seed the db with p0 so it becomes a free hit.
        evaluate_into_db_with(&engine, &sim, &k, &space, &p0, &mut db);

        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let p1 = space.random_point(&mut rng);
        let p2 = space.random_point(&mut rng);
        let cands =
            vec![p0.clone(), p1.clone(), p1.clone(), p2.clone(), space.random_point(&mut rng)];
        // Budget allows 2 fresh evals: p1 and p2. The final candidate must
        // be cut off; the duplicate p1 must be free.
        let items = evaluate_frontier(&engine, &sim, &k, &space, &cands, &mut db, 0, 2);
        assert_eq!(items.len(), 4, "fifth candidate is over budget");
        assert!(!items[0].fresh, "db hit is free");
        assert!(items[1].fresh);
        assert!(!items[2].fresh, "in-frontier duplicate is free");
        assert_eq!(items[1].result, items[2].result);
        assert!(items[3].fresh);
        assert_eq!(items.iter().filter(|i| i.fresh).count(), 2);
    }

    #[test]
    fn dedupe_canonical_keeps_first_occurrence_order() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let p = space.default_point();
        let q = p.with_value(0, space.slots()[0].options[1]);
        let out = dedupe_canonical(&k, &space, &[p.clone(), q.clone(), p.clone()]);
        let pc = design_space::rules::canonicalize(&k, &space, &p);
        let qc = design_space::rules::canonicalize(&k, &space, &q);
        if pc == qc {
            assert_eq!(out, vec![pc]);
        } else {
            assert_eq!(out, vec![pc, qc]);
        }
    }

    #[test]
    fn lost_points_spend_budget_but_stay_out_of_the_db() {
        use crate::harness::{Harness, RetryPolicy};
        use merlin_sim::{FaultConfig, FaultyOracle};

        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        // 100% crash rate with no retries: every point is lost.
        let cfg = FaultConfig { crash_rate: 1.0, ..FaultConfig::none() };
        let h = Harness::new(
            FaultyOracle::new(MerlinSimulator::new(), cfg),
            RetryPolicy::with_max_retries(0),
        );
        let mut db = Database::new();
        let engine = ExecEngine::serial();
        let (r, fresh) =
            evaluate_into_db_with(&engine, &h, &k, &space, &space.default_point(), &mut db);
        assert!(r.is_none());
        assert!(fresh, "failed attempts still consume tool budget");
        assert_eq!(db.len(), 0, "a lost point must not pollute the database");
    }
}
