//! The database-generation explorers of §4.1.
//!
//! GNN-DSE extends AutoDSE with three explorers so the training set contains
//! designs "from bad to good":
//!
//! * [`BottleneckExplorer`] — AutoDSE's greedy bottleneck-based optimizer
//!   (also the Table 3 baseline);
//! * [`HybridExplorer`] — the bottleneck optimizer plus a local search over
//!   neighbors of the incumbent after significant improvements;
//! * [`RandomExplorer`] — uniform random configurations that the other two
//!   skip.
//!
//! [`AnnealingExplorer`] adds the classic simulated-annealing baseline from
//! the related work (not part of the paper's database generator, used for
//! baseline comparisons).

mod annealing;
mod bottleneck;
mod hybrid;
mod random;

pub use annealing::AnnealingExplorer;
pub use bottleneck::{BottleneckExplorer, ExplorationLog};
pub use hybrid::HybridExplorer;
pub use random::RandomExplorer;

use crate::db::Database;
use crate::harness::EvalBackend;
use design_space::{DesignPoint, DesignSpace};
use hls_ir::Kernel;
use merlin_sim::HlsResult;

/// Shared exploration limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of HLS-tool evaluations.
    pub max_evals: usize,
}

impl Budget {
    /// A budget of `max_evals` evaluations.
    pub fn evals(max_evals: usize) -> Self {
        Self { max_evals }
    }
}

/// Evaluates `point` (deduplicated against `db`), recording the result.
///
/// Returns the result (`None` when the backend lost the point to tool
/// failure — nothing is recorded, so a later run can pick it up again) and
/// whether a fresh evaluation was spent. Lost points still spend budget:
/// the attempts consumed real tool time.
pub(crate) fn evaluate_into_db<B: EvalBackend>(
    eval: &B,
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    db: &mut Database,
) -> (Option<HlsResult>, bool) {
    let canonical = design_space::rules::canonicalize(kernel, space, point);
    if let Some(e) = db.get(kernel.name(), &canonical) {
        return (Some(e.result), false);
    }
    match eval.try_evaluate(kernel, space, &canonical) {
        Ok(r) => {
            db.insert(kernel.name(), canonical, r);
            (Some(r), true)
        }
        Err(_) => (None, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn evaluate_into_db_dedups_canonical_forms() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let p = space.default_point();
        let (r1, fresh1) = evaluate_into_db(&sim, &k, &space, &p, &mut db);
        let (r2, fresh2) = evaluate_into_db(&sim, &k, &space, &p, &mut db);
        assert!(r1.is_some() && r2.is_some());
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn lost_points_spend_budget_but_stay_out_of_the_db() {
        use crate::harness::{Harness, RetryPolicy};
        use merlin_sim::{FaultConfig, FaultyOracle};

        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        // 100% crash rate with no retries: every point is lost.
        let cfg = FaultConfig { crash_rate: 1.0, ..FaultConfig::none() };
        let h = Harness::new(
            FaultyOracle::new(MerlinSimulator::new(), cfg),
            RetryPolicy::with_max_retries(0),
        );
        let mut db = Database::new();
        let (r, fresh) = evaluate_into_db(&h, &k, &space, &space.default_point(), &mut db);
        assert!(r.is_none());
        assert!(fresh, "failed attempts still consume tool budget");
        assert_eq!(db.len(), 0, "a lost point must not pollute the database");
    }
}
