//! Simulated-annealing explorer — the classic model-free DSE baseline the
//! paper's related work cites (Mahapatra & Schafer's ML-SA line), included
//! for baseline comparisons against the bottleneck optimizer and the
//! GNN-driven DSE.

use super::{evaluate_into_db_with, Budget, Explorer};
use crate::db::Database;
use crate::explorer::ExplorationLog;
use crate::harness::EvalBackend;
use crate::objective::Objective;
use crate::parallel::ExecEngine;
use design_space::{DesignPoint, DesignSpace};
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::HlsResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated annealing over the pragma space: single-slot mutations,
/// objective-scalar energy (latency under the default objective), geometric
/// cooling. Infeasible designs (invalid, over the utilization threshold, or
/// over the resource budget) get a large penalty energy instead of outright
/// rejection so the walk can traverse them.
#[derive(Debug, Clone)]
pub struct AnnealingExplorer {
    /// Utilization constraint for the deprecated scalar entry points (the
    /// scored entry points take it from their [`Objective`] argument).
    pub util_threshold: f64,
    /// Initial temperature as a fraction of the default design's latency.
    pub initial_temp_frac: f64,
    /// Geometric cooling factor per evaluation.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingExplorer {
    fn default() -> Self {
        Self { util_threshold: 0.8, initial_temp_frac: 0.5, cooling: 0.97, seed: 0 }
    }
}

impl AnnealingExplorer {
    /// Creates an annealing explorer with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Walk energy: the objective's scalar view for feasible designs
    /// (cycles under latency/Pareto, the sum under weighted), the penalty
    /// otherwise.
    fn energy(objective: &Objective, r: &HlsResult, penalty: f64) -> f64 {
        objective.score_result(r).scalar().unwrap_or(penalty)
    }
}

impl Explorer for AnnealingExplorer {
    type Log = ExplorationLog;

    /// Runs the annealing walk, recording every evaluation into `db`. The
    /// walk is inherently sequential — each step depends on the previous
    /// acceptance — so this submits single-point batches; routing them
    /// through the engine still buys the oracle cache and the merged
    /// per-worker accounting, and lets a parallel campaign share one engine
    /// across all explorers.
    fn explore_scored_with<B: EvalBackend + Sync>(
        &self,
        engine: &ExecEngine,
        eval: &B,
        kernel: &Kernel,
        space: &DesignSpace,
        db: &mut Database,
        budget: Budget,
        objective: &Objective,
    ) -> ExplorationLog {
        let mut log = ExplorationLog::default();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Keep the walk state canonical: mutations are compared in canonical
        // form, so a raw candidate that collapses onto the current config is
        // skipped instead of scored a second time.
        let mut current: DesignPoint =
            design_space::rules::canonicalize(kernel, space, &space.default_point());
        let (first, fresh) = evaluate_into_db_with(engine, eval, kernel, space, &current, db);
        if fresh {
            log.evals += 1;
        }
        // Without a starting energy there is nothing to anneal from.
        let Some(cur_res) = first else { return log };
        if fresh {
            log.tool_minutes += cur_res.synth_minutes;
        }
        let penalty = (cur_res.cycles.max(1) as f64) * 10.0;
        let mut cur_energy = Self::energy(objective, &cur_res, penalty);
        let mut temp = penalty * self.initial_temp_frac;

        let mut best_score = objective.score_result(&cur_res);
        let mut best: Option<(DesignPoint, HlsResult)> = if best_score.is_feasible() {
            log.trace.push((log.evals, cur_res.cycles));
            Some((current.clone(), cur_res))
        } else {
            None
        };

        while log.evals < budget.max_evals {
            // Single-slot mutation.
            let slot = rng.gen_range(0..space.num_slots());
            let opts = &space.slots()[slot].options;
            let cand = design_space::rules::canonicalize(
                kernel,
                space,
                &current.with_value(slot, opts[rng.gen_range(0..opts.len())]),
            );
            if cand == current {
                continue;
            }
            let (r, fresh) = evaluate_into_db_with(engine, eval, kernel, space, &cand, db);
            if fresh {
                log.evals += 1;
            }
            let Some(r) = r else { continue };
            if fresh {
                log.tool_minutes += r.synth_minutes;
            }
            let e = Self::energy(objective, &r, penalty);
            let accept = e <= cur_energy
                || rng.gen::<f64>() < ((cur_energy - e) / temp.max(1e-9)).exp();
            if accept {
                current = cand.clone();
                cur_energy = e;
                let score = objective.score_result(&r);
                let improved = match &best {
                    None => score.is_feasible(),
                    Some(_) => score.better_than(&best_score),
                };
                if improved {
                    log.trace.push((log.evals, r.cycles));
                    best = Some((cand, r));
                    best_score = score;
                }
            }
            temp *= self.cooling;
        }
        log.best = best;
        obs::metrics::counter_add_labeled("explorer.evals", "explorer", "annealing", log.evals as u64);
        obs::debug!(
            "explorer.done",
            "annealing: {} evals on {}",
            log.evals,
            kernel.name();
            explorer = "annealing",
            kernel = kernel.name(),
            evals = log.evals,
        );
        log
    }

    fn objective(&self) -> Objective {
        Objective::latency().with_util_threshold(self.util_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    #[test]
    fn annealing_improves_over_default() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let log = AnnealingExplorer::with_seed(3).explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(150),
            &Objective::latency(),
        );
        let default = sim.evaluate(&k, &space, &space.default_point());
        let (_, best) = log.best.expect("finds a valid design");
        assert!(best.cycles < default.cycles, "{} !< {}", best.cycles, default.cycles);
        assert!(best.util.fits(0.8));
    }

    #[test]
    fn respects_budget_and_records_evals() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut db = Database::new();
        let log = AnnealingExplorer::with_seed(5).explore_scored(
            &sim,
            &k,
            &space,
            &mut db,
            Budget::evals(40),
            &Objective::latency(),
        );
        assert!(log.evals <= 40);
        assert_eq!(db.len(), log.evals);
    }

    #[test]
    fn engine_routed_walk_reproduces_the_serial_walk() {
        let k = kernels::spmv_ellpack();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let obj = Objective::latency();

        let mut db_serial = Database::new();
        let serial = AnnealingExplorer::with_seed(9).explore_scored(
            &sim,
            &k,
            &space,
            &mut db_serial,
            Budget::evals(30),
            &obj,
        );

        for jobs in [1, 4] {
            let engine = ExecEngine::with_jobs(jobs);
            let mut db = Database::new();
            let log = AnnealingExplorer::with_seed(9).explore_scored_with(
                &engine,
                &sim,
                &k,
                &space,
                &mut db,
                Budget::evals(30),
                &obj,
            );
            assert_eq!(log.evals, serial.evals, "jobs={jobs}");
            assert_eq!(log.trace, serial.trace, "jobs={jobs}");
            assert_eq!(db.entries(), db_serial.entries(), "jobs={jobs}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let k = kernels::spmv_ellpack();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut a = Database::new();
        let mut b = Database::new();
        let obj = Objective::latency();
        let la = AnnealingExplorer::with_seed(9)
            .explore_scored(&sim, &k, &space, &mut a, Budget::evals(30), &obj);
        let lb = AnnealingExplorer::with_seed(9)
            .explore_scored(&sim, &k, &space, &mut b, Budget::evals(30), &obj);
        assert_eq!(a.entries(), b.entries());
        assert_eq!(la.best.map(|(_, r)| r.cycles), lb.best.map(|(_, r)| r.cycles));
    }
}
