//! The continuous-learning daemon (`gnndse daemon`): serve predictions
//! while a background trainer fine-tunes and hot-swaps the model.
//!
//! One process, two planes:
//!
//! * the **serving plane** — the replicated prediction server of
//!   [`gdse_serve`] behind an [`ArtifactProvider`], answering `predict`
//!   traffic exactly like `gnndse serve`;
//! * the **learning plane** — a background thread stepping a
//!   [`CampaignDriver`] (one DSE/validate/fine-tune round per step, §4.4),
//!   with a [`ReplayBuffer`] of freshly validated oracle results feeding
//!   each fine-tune batch.
//!
//! After every completed round the learner writes the fine-tuned model to
//! the served `.gdse` artifact **atomically** and triggers the provider's
//! reload path: the artifact is checksum- and canary-validated, replicas
//! cut over at their next batch boundary, and every response carries the
//! new `epoch`. A rejected artifact (e.g. corrupted on disk) rolls back —
//! the old epoch keeps serving, `serve.reload_failures` increments, and
//! the learner simply tries again after its next round. The daemon
//! **survives swap failure by design**; it never stops serving to learn.
//!
//! ## Crash safety
//!
//! Three files persist the learning state, all written atomically:
//! the campaign checkpoint (database + reports + carried model, one
//! document, from [`CampaignDriver`]), the replay window (via the
//! crash-safe DB path), and the `.gdse` artifact itself. A killed daemon
//! restarted on the same paths resumes the campaign from the last round
//! boundary with the replay window it had.
//!
//! ## Observability
//!
//! The learner mirrors its state into the server's live registry —
//! `learn.rounds`, `learn.swaps`, `learn.swap_failures` counters and
//! `learn.buffer_depth` / `learn.last_loss` gauges show up in
//! `admin stats` next to the `serve.*` series — and answers the
//! `{"learn-status": true}` admin verb (`gnndse admin ADDR learn-status`)
//! with a full status document: driver state, rounds completed, serving
//! epoch, buffer depth, last fine-tune loss, swap counts.

use crate::artifact::ArtifactMeta;
use crate::db::Database;
use crate::inference::Predictor;
use crate::learn::{ReplayBuffer, ReplayStats};
use crate::parallel::ExecEngine;
use crate::rounds::{CampaignDriver, RoundReport, RoundsConfig};
use crate::serving::ArtifactProvider;
use gdse_obs as obs;
use gdse_serve::{LearnStatusSource, ModelProvider, ServeConfig, ServeStats, Server, ServerHandle};
use hls_ir::{kernels, Kernel};
use merlin_sim::MerlinSimulator;
use serde::Value;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything a daemon needs: where to serve, where the training state
/// lives on disk, and how aggressively to learn.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address (port 0 binds an ephemeral port; read it back from
    /// [`Daemon::addr`]).
    pub addr: String,
    /// The seed database of evaluated designs (must exist; the augmented
    /// database is saved back here when the learner finishes).
    pub db: PathBuf,
    /// The served `.gdse` artifact. Missing = bootstrap-train one from the
    /// database before serving; present = serve it and fine-tune from it.
    pub artifact: PathBuf,
    /// The campaign checkpoint. When the file exists the campaign
    /// **resumes** from it; otherwise a fresh campaign starts.
    pub checkpoint: PathBuf,
    /// The persisted replay window. Restored when present, else seeded
    /// from the newest database entries.
    pub replay: PathBuf,
    /// Replay-window bound (validated results kept for fine-tuning).
    pub replay_capacity: usize,
    /// The campaign itself. `fine_tune`, `fine_tune_initial`, and
    /// `initial_model` are overridden by the daemon (it always fine-tunes
    /// the artifact it serves).
    pub rounds: RoundsConfig,
    /// Serving-plane knobs (replicas, queues, timeouts, reload watch).
    pub serve: ServeConfig,
    /// Total worker budget, split across replicas like `gnndse serve`;
    /// the learner's engine uses the full budget (it runs between waves).
    pub jobs: usize,
    /// Pause between learning rounds, so serving traffic gets the machine
    /// between fine-tunes. Shutdown is polled during the pause.
    pub round_pause: Duration,
}

impl DaemonConfig {
    /// A small-footprint configuration for tests: quick campaign, tiny
    /// pause, ephemeral port.
    pub fn quick(dir: &std::path::Path) -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            db: dir.join("daemon-db.json"),
            artifact: dir.join("daemon-model.gdse"),
            checkpoint: dir.join("daemon-ck.json"),
            replay: dir.join("daemon-replay.json"),
            replay_capacity: 256,
            rounds: RoundsConfig::quick(),
            serve: ServeConfig::default(),
            jobs: 1,
            round_pause: Duration::from_millis(25),
        }
    }
}

/// What one daemon run did: the serving stats, every completed round, and
/// whether the learning plane failed (the serving plane outlives learner
/// failures on purpose).
#[derive(Debug)]
pub struct DaemonReport {
    /// Lifetime serving stats (same as [`Server::run`]'s return).
    pub serve: ServeStats,
    /// Reports of every round the campaign completed, including rounds
    /// replayed from a resumed checkpoint.
    pub rounds: Vec<RoundReport>,
    /// Why the learning plane stopped early, if it did.
    pub learner_error: Option<String>,
}

#[derive(Debug, Clone, Default)]
struct StatusInner {
    state: String,
    rounds_completed: u64,
    rounds_planned: u64,
    buffer_depth: u64,
    buffer_capacity: u64,
    last_loss: Option<f64>,
    swaps: u64,
    swap_failures: u64,
    last_error: Option<String>,
    replay: ReplayStats,
}

/// The `learn-status` answer source: a snapshot of the learning plane,
/// updated by the learner at every state transition and served through
/// the admin socket. The `epoch` field is read live from the provider.
pub struct DaemonStatus {
    provider: Arc<dyn ModelProvider>,
    inner: Mutex<StatusInner>,
}

impl DaemonStatus {
    fn new(provider: Arc<dyn ModelProvider>, rounds_planned: u64, capacity: u64) -> Self {
        DaemonStatus {
            provider,
            inner: Mutex::new(StatusInner {
                state: "starting".into(),
                rounds_planned,
                buffer_capacity: capacity,
                ..StatusInner::default()
            }),
        }
    }

    fn update(&self, f: impl FnOnce(&mut StatusInner)) {
        f(&mut self.inner.lock().expect("status lock"));
    }

    /// The driver's current state label (`starting`, `round N`,
    /// `complete`, `stopped`, `failed`).
    pub fn state(&self) -> String {
        self.inner.lock().expect("status lock").state.clone()
    }

    /// Rounds the campaign has completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.inner.lock().expect("status lock").rounds_completed
    }

    /// Successful hot swaps so far.
    pub fn swaps(&self) -> u64 {
        self.inner.lock().expect("status lock").swaps
    }

    /// Rejected hot swaps so far (old epoch kept serving).
    pub fn swap_failures(&self) -> u64 {
        self.inner.lock().expect("status lock").swap_failures
    }
}

impl LearnStatusSource for DaemonStatus {
    fn learn_status(&self) -> Value {
        let s = self.inner.lock().expect("status lock").clone();
        let opt_f = |v: Option<f64>| v.map_or(Value::Null, Value::Float);
        let opt_s = |v: Option<String>| v.map_or(Value::Null, Value::Str);
        Value::Map(vec![
            ("state".into(), Value::Str(s.state)),
            ("round".into(), Value::Int(i128::from(s.rounds_completed))),
            ("rounds_planned".into(), Value::Int(i128::from(s.rounds_planned))),
            ("epoch".into(), Value::Int(i128::from(self.provider.epoch()))),
            ("buffer_depth".into(), Value::Int(i128::from(s.buffer_depth))),
            ("buffer_capacity".into(), Value::Int(i128::from(s.buffer_capacity))),
            ("last_loss".into(), opt_f(s.last_loss)),
            ("swaps".into(), Value::Int(i128::from(s.swaps))),
            ("swap_failures".into(), Value::Int(i128::from(s.swap_failures))),
            ("replay_inserted".into(), Value::Int(i128::from(s.replay.inserted))),
            ("replay_duplicates".into(), Value::Int(i128::from(s.replay.duplicates))),
            ("replay_evicted".into(), Value::Int(i128::from(s.replay.evicted))),
            ("last_error".into(), opt_s(s.last_error)),
        ])
    }
}

/// A started daemon: the serving plane is bound and the learning plane is
/// running. Call [`run`](Daemon::run) to hand the accept loop the current
/// thread.
pub struct Daemon {
    server: Server,
    handle: ServerHandle,
    status: Arc<DaemonStatus>,
    learner: JoinHandle<Result<(Vec<RoundReport>, obs::MetricsSnapshot), String>>,
}

/// Starts a daemon and runs it to completion on the current thread —
/// `Daemon::start(cfg)?.run()`.
///
/// # Errors
///
/// Setup failures: unreadable database, bootstrap-train/save failure, or
/// an unbindable address. Learning-plane failures after startup do *not*
/// error — they land in [`DaemonReport::learner_error`].
pub fn run_daemon(cfg: DaemonConfig) -> Result<DaemonReport, String> {
    Daemon::start(cfg)?.run()
}

impl Daemon {
    /// Loads (or bootstrap-trains) the artifact, binds the serving plane,
    /// and spawns the learning plane.
    ///
    /// # Errors
    ///
    /// Unreadable database, no known kernels in it, bootstrap train/save
    /// failure, artifact load failure, or bind failure.
    pub fn start(cfg: DaemonConfig) -> Result<Daemon, String> {
        let db = {
            let _io = obs::span::stage("io");
            Database::load(&cfg.db).map_err(|e| e.to_string())?
        };
        let kernel_set: Vec<Kernel> = kernels::all_kernels()
            .into_iter()
            .filter(|k| db.entries().iter().any(|e| e.kernel == k.name()))
            .collect();
        if kernel_set.is_empty() {
            return Err(format!("{} contains no known kernels", cfg.db.display()));
        }
        let kernel_names: Vec<String> =
            kernel_set.iter().map(|k| k.name().to_string()).collect();

        // Bootstrap: no artifact yet means nothing to serve, so train one
        // from the seed database before binding.
        if !cfg.artifact.exists() {
            let _train = obs::span::stage("bootstrap_train");
            obs::info!(
                "daemon.bootstrap",
                "no artifact at {}; training one from {} designs",
                cfg.artifact.display(),
                db.len();
                designs = db.len(),
            );
            let (p, _) = Predictor::train(
                &db,
                &kernel_set,
                cfg.rounds.model,
                cfg.rounds.model_cfg.clone(),
                &cfg.rounds.train_cfg,
            );
            let meta = ArtifactMeta::describe(&p, &kernel_names, cfg.rounds.train_cfg.epochs);
            p.save_artifact(&cfg.artifact, &meta).map_err(|e| e.to_string())?;
        }
        let (initial, _meta) =
            Predictor::load_artifact(&cfg.artifact).map_err(|e| e.to_string())?;

        // The daemon always fine-tunes the artifact it serves: round 1
        // starts from the served model, not from scratch and not as-is.
        let mut rounds_cfg = cfg.rounds.clone();
        rounds_cfg.initial_model = Some(initial);
        rounds_cfg.fine_tune = true;
        rounds_cfg.fine_tune_initial = true;

        let replicas = cfg.serve.replicas.max(1);
        let per_replica_jobs = (cfg.jobs / replicas).max(1);
        let provider = Arc::new(ArtifactProvider::open(&cfg.artifact, per_replica_jobs)?);
        let server = Server::bind_with_provider(
            &cfg.addr,
            cfg.serve,
            Arc::clone(&provider) as Arc<dyn ModelProvider>,
        )
        .map_err(|e| e.to_string())?;
        let handle = server.handle();
        let status = Arc::new(DaemonStatus::new(
            Arc::clone(&provider) as Arc<dyn ModelProvider>,
            rounds_cfg.rounds as u64,
            cfg.replay_capacity as u64,
        ));
        handle.attach_learn_status(Arc::clone(&status) as Arc<dyn LearnStatusSource>);

        let resume = cfg.checkpoint.exists();
        let replay = if cfg.replay.exists() {
            ReplayBuffer::load(&cfg.replay, cfg.replay_capacity).map_err(|e| e.to_string())?
        } else {
            ReplayBuffer::seed_from(&db, cfg.replay_capacity)
        };
        {
            let mut s = status.inner.lock().expect("daemon status lock");
            s.buffer_depth = replay.len() as u64;
        }
        obs::info!(
            "daemon.start",
            "daemon on {} ({} kernels, {} designs, {} replay entries, resume={resume})",
            server.local_addr(),
            kernel_set.len(),
            db.len(),
            replay.len();
            kernels = kernel_set.len(),
            designs = db.len(),
            replay = replay.len(),
        );

        let learner = {
            let handle = handle.clone();
            let live = handle.live_metrics();
            let status = Arc::clone(&status);
            std::thread::spawn(move || {
                learner_loop(
                    db,
                    kernel_set,
                    kernel_names,
                    rounds_cfg,
                    cfg.db,
                    cfg.artifact,
                    cfg.checkpoint,
                    cfg.replay,
                    replay,
                    resume,
                    cfg.jobs,
                    cfg.round_pause,
                    &handle,
                    &live,
                    &status,
                )
            })
        };
        Ok(Daemon { server, handle, status, learner })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// A remote control of the serving plane (shutdown, reload, stats).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The learning plane's status, as `learn-status` serves it.
    pub fn status(&self) -> Arc<DaemonStatus> {
        Arc::clone(&self.status)
    }

    /// Runs the serving plane on the current thread until shutdown (admin
    /// verb, handle, or request limit), then joins the learning plane and
    /// folds its metrics into the caller's registry.
    ///
    /// # Errors
    ///
    /// Only a panicked learner thread; a learner that failed cleanly is
    /// reported in [`DaemonReport::learner_error`].
    pub fn run(self) -> Result<DaemonReport, String> {
        let stats = {
            let _serve = obs::span::stage("serve");
            self.server.run()
        };
        // `run` returning means shutdown began; make it explicit anyway so
        // the learner cannot outlive the serving plane.
        self.handle.shutdown();
        match self.learner.join() {
            Ok(Ok((rounds, snap))) => {
                obs::metrics::merge(&snap);
                Ok(DaemonReport { serve: stats, rounds, learner_error: None })
            }
            Ok(Err(e)) => {
                Ok(DaemonReport { serve: stats, rounds: Vec::new(), learner_error: Some(e) })
            }
            Err(_) => Err("learner thread panicked".into()),
        }
    }
}

/// The learning plane: step the campaign, persist, publish, swap, pause —
/// until the campaign is done or the serving plane shuts down. Returns the
/// round reports plus this thread's metric registry (the caller merges it).
#[allow(clippy::too_many_arguments)]
fn learner_loop(
    mut db: Database,
    kernel_set: Vec<Kernel>,
    kernel_names: Vec<String>,
    rounds_cfg: RoundsConfig,
    db_path: PathBuf,
    artifact: PathBuf,
    checkpoint: PathBuf,
    replay_path: PathBuf,
    replay: ReplayBuffer,
    resume: bool,
    jobs: usize,
    round_pause: Duration,
    handle: &ServerHandle,
    live: &obs::metrics::SharedMetrics,
    status: &DaemonStatus,
) -> Result<(Vec<RoundReport>, obs::MetricsSnapshot), String> {
    let fail = |status: &DaemonStatus, e: String| -> String {
        status.update(|s| {
            s.state = "failed".into();
            s.last_error = Some(e.clone());
        });
        e
    };
    let engine = if jobs <= 1 {
        ExecEngine::serial()
    } else {
        ExecEngine::builder().jobs(jobs).build()
    };
    let sim = MerlinSimulator::new();
    let mut driver = match CampaignDriver::new(
        &mut db,
        &kernel_set,
        &rounds_cfg,
        &sim,
        Some(checkpoint.as_path()),
        resume,
        &engine,
    ) {
        Ok(d) => d,
        Err(e) => return Err(fail(status, e.to_string())),
    };
    driver.attach_replay(replay);
    status.update(|s| {
        s.rounds_completed = driver_completed(&driver);
        s.state = "running".into();
    });

    loop {
        if handle.is_shutting_down() {
            status.update(|s| s.state = "stopped".into());
            break;
        }
        if driver.is_done() {
            status.update(|s| s.state = "complete".into());
            break;
        }
        let round = driver.next_round();
        status.update(|s| s.state = format!("round {round}"));
        match driver.step() {
            Ok(Some(_)) => {}
            Ok(None) => continue, // done; the loop head reports it
            Err(e) => return Err(fail(status, e.to_string())),
        }

        // Persist the replay window next to the checkpoint the step just
        // wrote, so a kill between rounds loses neither.
        if let Some(buf) = driver.replay() {
            if let Err(e) = buf.save(&replay_path) {
                obs::warn!(
                    "learn.replay_save_failed",
                    "cannot persist replay window to {}: {e}",
                    replay_path.display()
                );
            }
        }

        // Publish: write the fine-tuned model atomically over the served
        // artifact, then ask the provider to validate + cut over. A
        // rejected swap is survivable — the old epoch keeps serving and
        // the next round overwrites the artifact again.
        if let Some(model) = driver.carried_model() {
            let meta = ArtifactMeta::describe(model, &kernel_names, round);
            if let Err(e) = model.save_artifact(&artifact, &meta) {
                return Err(fail(status, format!("cannot write artifact: {e}")));
            }
            match handle.reload() {
                Ok(epoch) => {
                    obs::metrics::counter_inc("learn.swaps");
                    live.counter_inc("learn.swaps");
                    status.update(|s| s.swaps += 1);
                    obs::info!(
                        "learn.swapped",
                        "round {round}: replicas cutting over to epoch {epoch}";
                        round = round,
                        epoch = epoch,
                    );
                }
                Err(e) => {
                    obs::metrics::counter_inc("learn.swap_failures");
                    live.counter_inc("learn.swap_failures");
                    status.update(|s| {
                        s.swap_failures += 1;
                        s.last_error = Some(e.clone());
                    });
                    obs::warn!(
                        "learn.swap_failed",
                        "round {round}: artifact rejected ({e}); previous epoch keeps serving"
                    );
                }
            }
        }

        obs::metrics::counter_inc("learn.rounds");
        live.counter_inc("learn.rounds");
        let snap = obs::metrics::snapshot();
        let loss = snap.gauge("train.epoch_loss");
        let (depth, rstats) =
            driver.replay().map_or((0, ReplayStats::default()), |b| (b.len(), b.stats()));
        live.gauge_set("learn.buffer_depth", depth as f64);
        obs::metrics::gauge_set("learn.buffer_depth", depth as f64);
        if let Some(l) = loss {
            live.gauge_set("learn.last_loss", l);
            obs::metrics::gauge_set("learn.last_loss", l);
        }
        status.update(|s| {
            s.rounds_completed = round as u64;
            s.buffer_depth = depth as u64;
            s.last_loss = loss;
            s.replay = rstats;
        });

        // Yield the machine to serving traffic between rounds, but wake
        // promptly on shutdown.
        let pause_until = Instant::now() + round_pause;
        while Instant::now() < pause_until && !handle.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    if let Some(buf) = driver.take_replay() {
        if let Err(e) = buf.save(&replay_path) {
            obs::warn!(
                "learn.replay_save_failed",
                "cannot persist replay window to {}: {e}",
                replay_path.display()
            );
        }
    }
    let reports = driver.into_reports();
    {
        let _io = obs::span::stage("io");
        if let Err(e) = db.save(&db_path) {
            obs::warn!(
                "learn.db_save_failed",
                "cannot save augmented database to {}: {e}",
                db_path.display()
            );
        }
    }
    Ok((reports, obs::metrics::snapshot()))
}

/// Completed-round count of a driver (next round is 1-based).
fn driver_completed<B: crate::harness::EvalBackend + Sync>(
    driver: &CampaignDriver<'_, B>,
) -> u64 {
    driver.next_round().saturating_sub(1) as u64
}
