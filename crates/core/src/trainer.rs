//! Training and evaluation loops (§5.1): Adam at lr 0.001, mini-batches,
//! RMSE reporting for regression and accuracy/F1 for the validity
//! classifier.

use crate::dataset::Dataset;
use gdse_gnn::PredictionModel;
use gdse_obs as obs;
use gdse_tensor::Adam;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate (§5.1: 0.001).
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl TrainConfig {
    /// The paper's training setup (lr 0.001), with an epoch count sized for
    /// this CPU implementation.
    pub fn paper() -> Self {
        Self { epochs: 60, batch_size: 32, lr: 1e-3, seed: 0, grad_clip: 5.0 }
    }

    /// A fast configuration for tests and examples.
    pub fn quick() -> Self {
        Self { epochs: 10, batch_size: 16, lr: 3e-3, seed: 0, grad_clip: 5.0 }
    }

    /// Replaces the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

/// Whether a model is trained on MSE (regression heads) or BCE (validity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loss {
    Mse,
    BceLogits,
}

fn train_loop(
    model: &mut PredictionModel,
    ds: &Dataset,
    idxs: &[usize],
    cfg: &TrainConfig,
    loss_kind: Loss,
) -> Vec<f32> {
    assert!(!idxs.is_empty(), "empty training set");

    // Some initializations of deep attention stacks start in a collapsed
    // basin and never learn (the loss plateaus just below its first-epoch
    // value). Detect the stall early and deterministically re-roll the
    // weights — a cheap, reproducible form of warm restarts.
    const STALL_CHECK_EPOCH: usize = 6;
    const MAX_RESTARTS: u32 = 3;
    let mut restarts = 0;
    loop {
        let losses = train_epochs(model, ds, idxs, cfg, loss_kind);
        let stalled = loss_kind == Loss::Mse
            && cfg.epochs > STALL_CHECK_EPOCH
            && losses.len() > STALL_CHECK_EPOCH
            && losses[STALL_CHECK_EPOCH] > 0.6 * losses[1].max(1e-6)
            && restarts < MAX_RESTARTS;
        if !stalled {
            return losses;
        }
        restarts += 1;
        obs::metrics::counter_inc("train.stall_restarts");
        obs::debug!(
            "train.stall_restart",
            "loss stalled; reinitializing weights (restart {restarts})";
            restart = restarts,
        );
        let new_seed = model
            .config()
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(restarts));
        model.reinitialize(new_seed);
    }
}

fn train_epochs(
    model: &mut PredictionModel,
    ds: &Dataset,
    idxs: &[usize],
    cfg: &TrainConfig,
    loss_kind: Loss,
) -> Vec<f32> {
    let head_names: Vec<String> = model.head_names().to_vec();
    let mut adam = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order = idxs.to_vec();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    // Linear learning-rate warmup: the initial loss is dominated by the
    // (large) latency targets and full-size first steps destabilize deep
    // attention stacks.
    const WARMUP_EPOCHS: usize = 2;

    for epoch in 0..cfg.epochs {
        let epoch_started = std::time::Instant::now();
        let warm = ((epoch + 1) as f32 / WARMUP_EPOCHS as f32).min(1.0);
        adam.set_learning_rate(cfg.lr * warm);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let batch = ds.batch(chunk);
            let mut out = model.forward(&batch);
            // Sum per-head losses on the tape.
            let mut total = None;
            for (h, name) in head_names.iter().enumerate() {
                let target = ds.targets(chunk, name);
                let l = match loss_kind {
                    Loss::Mse => out.graph.mse_loss(out.outputs[h], target),
                    Loss::BceLogits => out.graph.bce_logits_loss(out.outputs[h], target),
                };
                total = Some(match total {
                    None => l,
                    Some(t) => out.graph.add(t, l),
                });
            }
            let total = total.expect("at least one head");
            epoch_loss += out.graph.value(total).scalar();
            batches += 1;

            let mut grads = model.store().zero_grads();
            out.graph.backward(total, &mut grads);
            grads.clip_global_norm(cfg.grad_clip);
            adam.step(model.store_mut(), &grads);
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        epoch_losses.push(mean_loss);
        obs::metrics::counter_inc("train.epochs");
        obs::metrics::gauge_set("train.epoch_loss", f64::from(mean_loss));
        obs::metrics::observe_us("train.epoch_us", epoch_started.elapsed().as_micros() as u64);
        obs::debug!(
            "train.epoch",
            "epoch {epoch}: mean loss {mean_loss:.5}";
            epoch = epoch,
            loss = mean_loss,
            batches = batches,
            elapsed_us = epoch_started.elapsed(),
        );
    }
    epoch_losses
}

/// Trains a regression model (MSE on each head) on the given sample indices
/// (callers pass valid samples only). Returns the mean loss per epoch.
pub fn train_regression(
    model: &mut PredictionModel,
    ds: &Dataset,
    idxs: &[usize],
    cfg: &TrainConfig,
) -> Vec<f32> {
    train_loop(model, ds, idxs, cfg, Loss::Mse)
}

/// Trains the validity classifier (BCE on logits) on all samples.
pub fn train_classifier(
    model: &mut PredictionModel,
    ds: &Dataset,
    idxs: &[usize],
    cfg: &TrainConfig,
) -> Vec<f32> {
    train_loop(model, ds, idxs, cfg, Loss::BceLogits)
}

/// Per-head RMSE of a regression model on a test set (the Table 2 metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionMetrics {
    /// Head names.
    pub heads: Vec<String>,
    /// RMSE per head.
    pub rmse: Vec<f64>,
}

impl RegressionMetrics {
    /// Sum of the per-head RMSEs (the paper's "All" column combines the
    /// objectives the same way).
    pub fn total(&self) -> f64 {
        self.rmse.iter().sum()
    }

    /// RMSE of one head by name.
    pub fn rmse_of(&self, head: &str) -> Option<f64> {
        self.heads.iter().position(|h| h == head).map(|i| self.rmse[i])
    }
}

/// Evaluates a regression model on the given indices.
pub fn eval_regression(model: &PredictionModel, ds: &Dataset, idxs: &[usize]) -> RegressionMetrics {
    let heads: Vec<String> = model.head_names().to_vec();
    let mut sq = vec![0.0f64; heads.len()];
    let mut n = 0usize;
    for chunk in idxs.chunks(64) {
        let batch = ds.batch(chunk);
        let out = model.forward(&batch);
        for (h, name) in heads.iter().enumerate() {
            let target = ds.targets(chunk, name);
            let pred = out.graph.value(out.outputs[h]);
            for r in 0..chunk.len() {
                let d = f64::from(pred.get(r, 0)) - f64::from(target.get(r, 0));
                sq[h] += d * d;
            }
        }
        n += chunk.len();
    }
    let rmse = sq.iter().map(|&s| (s / n.max(1) as f64).sqrt()).collect();
    RegressionMetrics { heads, rmse }
}

/// Classifier quality on a test set (Table 2: accuracy and F1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationMetrics {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// Precision on the "valid" class.
    pub precision: f64,
    /// Recall on the "valid" class.
    pub recall: f64,
    /// F1 score on the "valid" class.
    pub f1: f64,
}

/// Evaluates the validity classifier (threshold 0.5 on the sigmoid).
pub fn eval_classifier(
    model: &PredictionModel,
    ds: &Dataset,
    idxs: &[usize],
) -> ClassificationMetrics {
    let (mut tp, mut fp, mut tn, mut fneg) = (0u64, 0u64, 0u64, 0u64);
    for chunk in idxs.chunks(64) {
        let batch = ds.batch(chunk);
        let out = model.forward(&batch);
        let logits = out.graph.value(out.outputs[0]);
        let target = ds.targets(chunk, "valid");
        for r in 0..chunk.len() {
            let pred = logits.get(r, 0) > 0.0; // sigmoid(z) > 0.5 <=> z > 0
            let truth = target.get(r, 0) == 1.0;
            match (pred, truth) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => tn += 1,
                (false, true) => fneg += 1,
            }
        }
    }
    let total = (tp + fp + tn + fneg).max(1) as f64;
    let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 };
    let recall = if tp + fneg > 0 { tp as f64 / (tp + fneg) as f64 } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    ClassificationMetrics { accuracy: (tp + tn) as f64 / total, precision, recall, f1 }
}

/// K-fold cross-validated regression: trains a fresh model per fold and
/// averages the per-head RMSEs (§5.1: 3-fold cross-validation).
pub fn cross_validate_regression(
    make_model: impl Fn() -> PredictionModel,
    ds: &Dataset,
    k: usize,
    cfg: &TrainConfig,
) -> RegressionMetrics {
    let folds = ds.kfold(k, cfg.seed);
    let mut acc: Option<RegressionMetrics> = None;
    for (train, test) in &folds {
        let train_valid: Vec<usize> =
            train.iter().copied().filter(|&i| ds.samples()[i].valid).collect();
        let test_valid: Vec<usize> =
            test.iter().copied().filter(|&i| ds.samples()[i].valid).collect();
        if train_valid.is_empty() || test_valid.is_empty() {
            continue;
        }
        let mut model = make_model();
        train_regression(&mut model, ds, &train_valid, cfg);
        let m = eval_regression(&model, ds, &test_valid);
        acc = Some(match acc {
            None => m,
            Some(mut a) => {
                for (r, x) in a.rmse.iter_mut().zip(&m.rmse) {
                    *r += x;
                }
                a
            }
        });
    }
    let mut out = acc.expect("at least one usable fold");
    for r in &mut out.rmse {
        *r /= folds.len() as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use gdse_gnn::{ModelConfig, ModelKind};
    use hls_ir::kernels;

    fn dataset() -> Dataset {
        let ks = vec![kernels::gemm_ncubed(), kernels::spmv_ellpack()];
        let db = generate_database(&ks, &[("gemm-ncubed", 60), ("spmv-ellpack", 40)], 40, 13);
        Dataset::from_database(&db, &ks)
    }

    #[test]
    fn regression_training_reduces_loss() {
        let ds = dataset();
        let idxs = ds.valid_indices();
        let mut model =
            PredictionModel::new(ModelKind::Transformer, ModelConfig::small(), &["latency"]);
        let losses = train_regression(&mut model, &ds, &idxs, &TrainConfig::quick());
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn classifier_beats_chance_after_training() {
        let ds = dataset();
        let all: Vec<usize> = (0..ds.len()).collect();
        let mut model = PredictionModel::new(ModelKind::Transformer, ModelConfig::small(), &["valid"]);
        train_classifier(&mut model, &ds, &all, &TrainConfig::quick());
        let m = eval_classifier(&model, &ds, &all);
        // Training-set accuracy after training must beat the majority rate
        // by a little or at least match it.
        let majority = {
            let v = ds.valid_indices().len() as f64 / ds.len() as f64;
            v.max(1.0 - v)
        };
        assert!(
            m.accuracy >= majority - 0.05,
            "accuracy {} vs majority {majority}",
            m.accuracy
        );
        assert!(m.f1 >= 0.0 && m.f1 <= 1.0);
    }

    #[test]
    fn eval_metrics_have_one_rmse_per_head() {
        let ds = dataset();
        let idxs = ds.valid_indices();
        let model = PredictionModel::new(
            ModelKind::MlpPragma,
            ModelConfig::small(),
            &["latency", "dsp"],
        );
        let m = eval_regression(&model, &ds, &idxs);
        assert_eq!(m.heads, vec!["latency", "dsp"]);
        assert_eq!(m.rmse.len(), 2);
        assert!(m.total() >= m.rmse[0]);
    }

    #[test]
    fn training_is_deterministic() {
        let ds = dataset();
        let idxs = ds.valid_indices();
        let cfg = TrainConfig::quick().with_epochs(2);
        let mut m1 = PredictionModel::new(ModelKind::Gcn, ModelConfig::small(), &["latency"]);
        let mut m2 = PredictionModel::new(ModelKind::Gcn, ModelConfig::small(), &["latency"]);
        let l1 = train_regression(&mut m1, &ds, &idxs, &cfg);
        let l2 = train_regression(&mut m2, &ds, &idxs, &cfg);
        assert_eq!(l1, l2);
    }
}
