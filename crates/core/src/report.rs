//! Run-report assembly: turn the metric registry into a [`RunReport`] and
//! persist it crash-safely.
//!
//! The CLI calls [`write_run_report`] at the end of `gendb` / `rounds` /
//! `dse` when `--metrics-out` is given; tests and library users can call it
//! around any instrumented pipeline. The report is written through
//! [`crate::persist::atomic_write`], so a crash mid-write leaves either the
//! previous report or the new one — never a truncated file.

use crate::persist::atomic_write;
use gdse_obs::RunReport;
use std::io;
use std::path::Path;
use std::time::Duration;

/// Builds a [`RunReport`] for `command` from the current (thread-local)
/// metric registry.
pub fn build_run_report(command: &str, total_wall: Duration) -> RunReport {
    RunReport::from_current_metrics(command, total_wall)
}

/// Builds a report from the current registry and atomically writes it to
/// `path` as pretty-printed JSON.
///
/// # Errors
///
/// Any I/O error from the atomic write; the registry is left untouched.
pub fn write_run_report(path: &Path, command: &str, total_wall: Duration) -> io::Result<RunReport> {
    let report = build_run_report(command, total_wall);
    atomic_write(path, &report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_disk() {
        gdse_obs::metrics::reset();
        gdse_obs::metrics::counter_add("stage.train.busy_us", 1_000);
        gdse_obs::metrics::counter_add("oracle.attempts", 4);
        gdse_obs::metrics::counter_add("oracle.successes", 4);

        let dir = std::env::temp_dir().join("gnn_dse_run_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run_report.json");
        let written =
            write_run_report(&path, "test", Duration::from_micros(2_000)).unwrap();
        let loaded = RunReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded, written);
        assert_eq!(loaded.command, "test");
        assert_eq!(loaded.stage_us("train"), 1_000);
        assert_eq!(loaded.oracle.attempts, 4);
        std::fs::remove_file(&path).ok();
    }
}
