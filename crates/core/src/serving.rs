//! The [`gdse_serve`] backend: routes service requests through the
//! [`ExecEngine`] prediction cache and [`Predictor::predict_batch`].
//!
//! [`PredictService`] is the glue between the model-agnostic TCP server and
//! the GNN surrogate: it resolves kernel names to design spaces and program
//! graphs (built once per kernel, on first use), bounds-checks design-point
//! indices, and answers each micro-batch with one engine-routed
//! `predict_ordered` call — so repeated queries hit the prediction cache and
//! fresh ones amortize graph encoding across the batch, exactly like the
//! offline DSE path.
//!
//! [`ArtifactProvider`] is the hot-swap source on top: it versions
//! `.gdse` artifacts by epoch, and a reload only cuts over after the new
//! bytes pass the checksum *and* a canary prediction — anything less
//! (truncated file, bit flip, non-finite outputs) is rejected while the
//! previous model keeps serving.

use crate::artifact::{decode_predictor, decode_quant_predictor, ArtifactMeta};
use crate::inference::{Predictor, QuantPredictor};
use crate::parallel::ExecEngine;
use design_space::{DesignPoint, DesignSpace};
use gdse_serve::{BatchPredictor, ModelProvider, PredictionRow};
use hls_ir::kernels;
use proggraph::ProgramGraph;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::UNIX_EPOCH;

/// Per-kernel state the service builds lazily and reuses across requests.
struct KernelEntry {
    space: DesignSpace,
    graph: ProgramGraph,
}

/// Either flavor of the surrogate a service can route through.
enum Surrogate {
    /// The default f32 pipeline, engine-routed (prediction cache, workers).
    F32(Predictor),
    /// The int8 pipeline. Served directly — the quantized forward is itself
    /// the fast path, and keeping it out of the engine's prediction cache
    /// guarantees a `--quant` server never silently answers from f32
    /// cached entries (the two pipelines produce different bits).
    Quant(QuantPredictor),
}

/// A loaded predictor exposed as a [`BatchPredictor`] for [`gdse_serve`].
pub struct PredictService {
    surrogate: Surrogate,
    engine: ExecEngine,
    kernels: Mutex<HashMap<String, Arc<KernelEntry>>>,
}

impl PredictService {
    /// Wraps a (typically artifact-loaded) predictor and an engine.
    pub fn new(predictor: Predictor, engine: ExecEngine) -> Self {
        PredictService {
            surrogate: Surrogate::F32(predictor),
            engine,
            kernels: Mutex::new(HashMap::new()),
        }
    }

    /// Wraps an int8-quantized predictor. Requests bypass the engine's
    /// prediction cache and run straight through the quantized kernels.
    pub fn new_quant(predictor: QuantPredictor, engine: ExecEngine) -> Self {
        PredictService {
            surrogate: Surrogate::Quant(predictor),
            engine,
            kernels: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped predictor's models and normalizer (for a quantized
    /// service: the dequantized base).
    pub fn predictor(&self) -> &Predictor {
        match &self.surrogate {
            Surrogate::F32(p) => p,
            Surrogate::Quant(q) => q.base(),
        }
    }

    /// Whether requests run through the int8 pipeline.
    pub fn is_quant(&self) -> bool {
        matches!(self.surrogate, Surrogate::Quant(_))
    }

    /// Resolves `kernel`, building its design space and program graph on
    /// first use. Knows every built-in kernel plus the `toy` example.
    fn resolve(&self, kernel: &str) -> Result<Arc<KernelEntry>, String> {
        let mut cache = self.kernels.lock().expect("kernel cache lock");
        if let Some(entry) = cache.get(kernel) {
            return Ok(Arc::clone(entry));
        }
        let k = if kernel == "toy" {
            kernels::toy()
        } else {
            kernels::kernel_by_name(kernel)
                .ok_or_else(|| format!("unknown kernel `{kernel}`"))?
        };
        let space = DesignSpace::from_kernel(&k);
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let entry = Arc::new(KernelEntry { space, graph });
        cache.insert(kernel.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

impl BatchPredictor for PredictService {
    fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
        // Books replica-thread inference time under `stage.infer.busy_us`;
        // self-nesting is safe (inner engine stages book only once).
        let _infer = gdse_obs::span::stage("infer");
        let entry = self.resolve(kernel)?;
        let points: Vec<DesignPoint> = indices
            .iter()
            .map(|&i| {
                if i >= entry.space.size() {
                    Err(format!(
                        "index {i} out of range for `{kernel}` (space size {})",
                        entry.space.size()
                    ))
                } else {
                    Ok(entry.space.point_at(i))
                }
            })
            .collect::<Result<_, _>>()?;
        let preds = match &self.surrogate {
            Surrogate::F32(p) => {
                self.engine.predict_ordered(p, &entry.graph, kernel, &points)
            }
            Surrogate::Quant(q) => q.predict_batch(&entry.graph, &points),
        };
        Ok(preds
            .into_iter()
            .map(|p| PredictionRow {
                valid_prob: p.valid_prob,
                cycles: p.cycles,
                dsp: p.util.dsp,
                bram: p.util.bram,
                lut: p.util.lut,
                ff: p.util.ff,
            })
            .collect())
    }
}

/// `(mtime nanos, length)` of the artifact file — how the provider tells
/// "the file changed underneath us" apart from "same bytes as before".
type Fingerprint = (u128, u64);

fn fingerprint(path: &Path) -> Option<Fingerprint> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta.modified().ok()?.duration_since(UNIX_EPOCH).ok()?.as_nanos();
    Some((mtime, meta.len()))
}

/// A provider-loaded model of either flavor, cloneable into services.
enum LoadedModel {
    F32(Predictor),
    Quant(QuantPredictor),
}

struct ProviderState {
    model: LoadedModel,
    meta: ArtifactMeta,
    /// Fingerprint of the artifact version we last *examined* — serving
    /// or rejected. A persistently corrupt file on disk is validated
    /// once, not on every watch tick.
    seen: Option<Fingerprint>,
}

/// A [`ModelProvider`] over a `.gdse` artifact on disk: epoch 1 at open,
/// +1 per accepted reload.
///
/// A reload re-reads the file and only cuts over after **every** check
/// passes: envelope + checksum decode, and a canary prediction through a
/// freshly built service whose outputs must all be finite. Any failure
/// leaves the previous model serving (rollback is the default, not an
/// action). [`ModelProvider::poll_reload`] makes the same decision when
/// the file's mtime/length changes underneath a watching server.
pub struct ArtifactProvider {
    path: PathBuf,
    /// Engine parallelism of each backend built from this provider.
    jobs: usize,
    /// Serve through the int8 pipeline (`--quant`): quantized artifacts
    /// load directly, f32 artifacts are calibrated at load time.
    quant: bool,
    epoch: AtomicU64,
    state: Mutex<ProviderState>,
}

/// Loads and classifies the artifact at `path` under the given serving
/// mode. In f32 mode a quantized artifact is an error (the operator must
/// opt into `--quant`); in quant mode an f32 artifact is calibrated on the
/// spot and the metadata records the served flavor.
fn load_for_mode(path: &Path, quant: bool) -> Result<(LoadedModel, ArtifactMeta), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    if !quant {
        let (p, meta) =
            decode_predictor(&bytes).map_err(|e| format!("cannot load {path:?}: {e}"))?;
        return Ok((LoadedModel::F32(p), meta));
    }
    match decode_predictor(&bytes) {
        Ok((p, meta)) => {
            let qp = QuantPredictor::quantize(&p);
            Ok((LoadedModel::Quant(qp), ArtifactMeta { quant: true, ..meta }))
        }
        Err(_) => {
            let (qp, meta) = decode_quant_predictor(&bytes)
                .map_err(|e| format!("cannot load {path:?}: {e}"))?;
            Ok((LoadedModel::Quant(qp), meta))
        }
    }
}

impl ArtifactProvider {
    /// Loads the artifact at `path` and serves it as epoch 1; backends
    /// built from this provider run their engine with `jobs` workers
    /// (≤ 1 = serial).
    ///
    /// # Errors
    ///
    /// Why the artifact cannot be loaded (missing, corrupt, wrong schema,
    /// or int8-quantized — which requires [`ArtifactProvider::open_quant`]).
    pub fn open(path: &Path, jobs: usize) -> Result<Self, String> {
        Self::open_mode(path, jobs, false)
    }

    /// Like [`ArtifactProvider::open`], but serves through the int8
    /// pipeline: a version-2 quantized artifact loads directly, and a plain
    /// f32 artifact is quantized at load time.
    ///
    /// # Errors
    ///
    /// Why the artifact cannot be loaded.
    pub fn open_quant(path: &Path, jobs: usize) -> Result<Self, String> {
        Self::open_mode(path, jobs, true)
    }

    fn open_mode(path: &Path, jobs: usize, quant: bool) -> Result<Self, String> {
        let (model, meta) = load_for_mode(path, quant)?;
        Ok(ArtifactProvider {
            path: path.to_path_buf(),
            jobs,
            quant,
            epoch: AtomicU64::new(1),
            state: Mutex::new(ProviderState { model, meta, seen: fingerprint(path) }),
        })
    }

    /// Metadata of the artifact version currently serving.
    pub fn meta(&self) -> ArtifactMeta {
        self.state.lock().expect("provider lock").meta.clone()
    }

    fn engine(&self) -> ExecEngine {
        if self.jobs <= 1 {
            ExecEngine::serial()
        } else {
            ExecEngine::with_jobs(self.jobs)
        }
    }

    /// The canary gate: a candidate model must answer a real prediction
    /// with finite values before it is allowed to serve.
    fn canary(service: &PredictService, meta: &ArtifactMeta) -> Result<(), String> {
        let kernel = meta.kernels.first().cloned().unwrap_or_else(|| "toy".to_string());
        let rows = service
            .predict(&kernel, &[0])
            .map_err(|e| format!("canary prediction on `{kernel}` failed: {e}"))?;
        let row = rows.first().ok_or("canary prediction returned no rows")?;
        let finite = row.valid_prob.is_finite()
            && row.dsp.is_finite()
            && row.bram.is_finite()
            && row.lut.is_finite()
            && row.ff.is_finite();
        if !finite {
            return Err(format!("canary prediction on `{kernel}` is non-finite: {row:?}"));
        }
        Ok(())
    }
}

impl ModelProvider for ArtifactProvider {
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    fn build(&self) -> Result<(Box<dyn BatchPredictor>, u64), String> {
        let state = self.state.lock().expect("provider lock");
        let service = match &state.model {
            LoadedModel::F32(p) => PredictService::new(p.clone(), self.engine()),
            LoadedModel::Quant(q) => PredictService::new_quant(q.clone(), self.engine()),
        };
        Ok((Box::new(service), self.epoch.load(Ordering::SeqCst)))
    }

    fn reload(&self) -> Result<u64, String> {
        // Validate entirely outside the lock: replicas keep building the
        // old version while the candidate is checked.
        let fp = fingerprint(&self.path);
        let outcome: Result<(LoadedModel, ArtifactMeta), String> = (|| {
            let (model, meta) = load_for_mode(&self.path, self.quant)
                .map_err(|e| format!("artifact rejected: {e}"))?;
            let service = match &model {
                LoadedModel::F32(p) => PredictService::new(p.clone(), self.engine()),
                LoadedModel::Quant(q) => PredictService::new_quant(q.clone(), self.engine()),
            };
            Self::canary(&service, &meta)?;
            Ok((model, meta))
        })();
        let mut state = self.state.lock().expect("provider lock");
        // Either way this version has been examined; don't re-validate it
        // on every watch tick.
        state.seen = fp;
        let (model, meta) = outcome?;
        state.model = model;
        state.meta = meta;
        Ok(self.epoch.fetch_add(1, Ordering::SeqCst) + 1)
    }

    fn poll_reload(&self) -> Option<Result<u64, String>> {
        let fp = fingerprint(&self.path)?;
        {
            let state = self.state.lock().expect("provider lock");
            if state.seen == Some(fp) {
                return None;
            }
        }
        Some(self.reload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use crate::trainer::TrainConfig;
    use gdse_gnn::{ModelConfig, ModelKind};

    fn tiny_service() -> PredictService {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 20, 7);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        PredictService::new(p, ExecEngine::serial())
    }

    #[test]
    fn service_matches_direct_predict_batch() {
        let svc = tiny_service();
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let indices: Vec<u128> = (0..6).map(|i| i * 17 % space.size()).collect();
        let points: Vec<_> = indices.iter().map(|&i| space.point_at(i)).collect();

        let rows = svc.predict(k.name(), &indices).expect("serves");
        let direct = svc.predictor().predict_batch(&graph, &points);
        assert_eq!(rows.len(), direct.len());
        for (r, d) in rows.iter().zip(&direct) {
            assert_eq!(r.valid_prob.to_bits(), d.valid_prob.to_bits());
            assert_eq!(r.cycles, d.cycles);
            assert_eq!(r.dsp.to_bits(), d.util.dsp.to_bits());
            assert_eq!(r.bram.to_bits(), d.util.bram.to_bits());
        }
    }

    #[test]
    fn unknown_kernel_and_out_of_range_index_are_errors() {
        let svc = tiny_service();
        assert!(svc.predict("no-such-kernel", &[0]).is_err());
        let k = kernels::gemm_ncubed();
        let size = DesignSpace::from_kernel(&k).size();
        let err = svc.predict(k.name(), &[size]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    fn train_tiny() -> (Predictor, ArtifactMeta) {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 20, 7);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let meta = ArtifactMeta::describe(&p, &["gemm-ncubed".to_string()], 2);
        (p, meta)
    }

    #[test]
    fn artifact_provider_versions_reloads_and_rejects_corruption() {
        let dir = std::env::temp_dir().join("gnn_dse_artifact_provider_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gdse");

        let (p, meta) = train_tiny();
        p.save_artifact(&path, &meta).unwrap();
        let provider = ArtifactProvider::open(&path, 1).expect("open");
        assert_eq!(provider.epoch(), 1);
        let (backend, epoch) = provider.build().expect("build");
        assert_eq!(epoch, 1);
        let baseline = backend.predict("gemm-ncubed", &[0, 1]).expect("serves");

        // Unchanged file: the watcher sees nothing to do.
        assert!(provider.poll_reload().is_none(), "unchanged artifact must not reload");

        // A truncated artifact is rejected and the old model keeps serving.
        let good = std::fs::read(&path).unwrap();
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        let err = provider.reload().expect_err("truncated artifact must be rejected");
        assert!(err.contains("rejected") || err.contains("corrupt"), "{err}");
        assert_eq!(provider.epoch(), 1, "epoch must not advance on rejection");
        let (backend, _) = provider.build().expect("old model still builds");
        assert_eq!(backend.predict("gemm-ncubed", &[0, 1]).unwrap(), baseline);
        // The corrupt version was examined once; the watcher must not
        // hot-loop revalidating it.
        assert!(provider.poll_reload().is_none(), "already-examined corrupt file");

        // A bit-flipped artifact fails the checksum the same way.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        match provider.poll_reload() {
            Some(Err(e)) => assert!(e.contains("rejected") || e.contains("corrupt"), "{e}"),
            other => panic!("bit flip must be caught, got {other:?}"),
        }
        assert_eq!(provider.epoch(), 1);

        // The intact artifact restored: the watcher cuts over to epoch 2.
        // (The flipped and intact bytes are the same length, so give the
        // mtime clock a tick to make the fingerprint move.)
        std::thread::sleep(std::time::Duration::from_millis(20));
        std::fs::write(&path, &good).unwrap();
        match provider.poll_reload() {
            Some(Ok(2)) => {}
            other => panic!("expected cut-over to epoch 2, got {other:?}"),
        }
        assert_eq!(provider.epoch(), 2);
        let (backend, epoch) = provider.build().expect("build at epoch 2");
        assert_eq!(epoch, 2);
        assert_eq!(backend.predict("gemm-ncubed", &[0, 1]).unwrap(), baseline);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quant_service_matches_direct_quant_predict_and_books_counters() {
        use gdse_obs as obs;
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 20, 7);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        let qp = QuantPredictor::quantize(&p);
        let svc = PredictService::new_quant(qp.clone(), ExecEngine::serial());
        assert!(svc.is_quant());

        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let indices: Vec<u128> = (0..5).map(|i| i * 11 % space.size()).collect();
        let points: Vec<_> = indices.iter().map(|&i| space.point_at(i)).collect();

        obs::metrics::reset();
        let rows = svc.predict(k.name(), &indices).expect("serves");
        let direct = qp.predict_batch(&graph, &points);
        for (r, d) in rows.iter().zip(&direct) {
            assert_eq!(r.valid_prob.to_bits(), d.valid_prob.to_bits());
            assert_eq!(r.cycles, d.cycles);
        }
        let snap = obs::metrics::snapshot();
        assert!(snap.counter("infer.quant_calls").unwrap_or(0) > 0, "int8 kernel must serve");
        // The quant path must NOT populate or read the f32 prediction cache.
        obs::metrics::reset();
        let again = svc.predict(k.name(), &indices).expect("serves");
        assert_eq!(rows, again, "quantized predictions are deterministic");
        let hits = obs::metrics::snapshot().counter("exec.cache_hits").unwrap_or(0);
        assert_eq!(hits, 0, "quant serving bypasses the engine prediction cache");
    }

    #[test]
    fn provider_modes_enforce_artifact_flavor() {
        let dir = std::env::temp_dir().join("gnn_dse_quant_provider_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let (p, meta) = train_tiny();
        let qp = QuantPredictor::quantize(&p);
        let f32_path = dir.join("model.gdse");
        let quant_path = dir.join("model_q.gdse");
        p.save_artifact(&f32_path, &meta).unwrap();
        qp.save_artifact(&quant_path, &meta).unwrap();

        // A quantized artifact without --quant is an error pointing at it.
        let err = match ArtifactProvider::open(&quant_path, 1) {
            Err(e) => e,
            Ok(_) => panic!("f32 provider must refuse a quantized artifact"),
        };
        assert!(err.contains("--quant"), "{err}");

        // --quant over a quantized artifact serves it directly...
        let provider = ArtifactProvider::open_quant(&quant_path, 1).expect("open quant");
        assert!(provider.meta().quant);
        let (backend, _) = provider.build().expect("build");
        let served = backend.predict("gemm-ncubed", &[0, 1, 2]).expect("serves");

        // ...and must answer exactly like the in-memory quantized pipeline.
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let pts: Vec<_> = (0..3u128).map(|i| space.point_at(i)).collect();
        let direct = qp.predict_batch(&graph, &pts);
        for (r, d) in served.iter().zip(&direct) {
            assert_eq!(r.valid_prob.to_bits(), d.valid_prob.to_bits());
            assert_eq!(r.cycles, d.cycles);
        }

        // --quant over an f32 artifact calibrates at load time and serves
        // the same pipeline (same weights -> same calibration -> same bits).
        let provider = ArtifactProvider::open_quant(&f32_path, 1).expect("open f32 as quant");
        assert!(provider.meta().quant, "served flavor must be recorded");
        let (backend, _) = provider.build().expect("build");
        let served2 = backend.predict("gemm-ncubed", &[0, 1, 2]).expect("serves");
        assert_eq!(served, served2, "load-time calibration matches persisted calibration");

        // Reload keeps the mode: epoch advances, flavor stays quantized.
        std::thread::sleep(std::time::Duration::from_millis(20));
        qp.save_artifact(&quant_path, &meta).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_queries_are_served_from_the_prediction_cache() {
        use gdse_obs as obs;
        obs::metrics::reset();
        let svc = tiny_service();
        let k = kernels::gemm_ncubed();
        let indices: Vec<u128> = vec![1, 2, 3];
        let first = svc.predict(k.name(), &indices).unwrap();
        let before = obs::metrics::snapshot().counter("exec.cache_hits").unwrap_or(0);
        let second = svc.predict(k.name(), &indices).unwrap();
        let after = obs::metrics::snapshot().counter("exec.cache_hits").unwrap_or(0);
        assert_eq!(first, second);
        assert_eq!(after - before, 3, "second pass must be all cache hits");
    }
}
