//! The [`gdse_serve`] backend: routes service requests through the
//! [`ExecEngine`] prediction cache and [`Predictor::predict_batch`].
//!
//! [`PredictService`] is the glue between the model-agnostic TCP server and
//! the GNN surrogate: it resolves kernel names to design spaces and program
//! graphs (built once per kernel, on first use), bounds-checks design-point
//! indices, and answers each micro-batch with one engine-routed
//! `predict_ordered` call — so repeated queries hit the prediction cache and
//! fresh ones amortize graph encoding across the batch, exactly like the
//! offline DSE path.

use crate::inference::Predictor;
use crate::parallel::ExecEngine;
use design_space::{DesignPoint, DesignSpace};
use gdse_serve::{BatchPredictor, PredictionRow};
use hls_ir::kernels;
use proggraph::ProgramGraph;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-kernel state the service builds lazily and reuses across requests.
struct KernelEntry {
    space: DesignSpace,
    graph: ProgramGraph,
}

/// A loaded predictor exposed as a [`BatchPredictor`] for [`gdse_serve`].
pub struct PredictService {
    predictor: Predictor,
    engine: ExecEngine,
    kernels: Mutex<HashMap<String, Arc<KernelEntry>>>,
}

impl PredictService {
    /// Wraps a (typically artifact-loaded) predictor and an engine.
    pub fn new(predictor: Predictor, engine: ExecEngine) -> Self {
        PredictService { predictor, engine, kernels: Mutex::new(HashMap::new()) }
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &Predictor {
        &self.predictor
    }

    /// Resolves `kernel`, building its design space and program graph on
    /// first use. Knows every built-in kernel plus the `toy` example.
    fn resolve(&self, kernel: &str) -> Result<Arc<KernelEntry>, String> {
        let mut cache = self.kernels.lock().expect("kernel cache lock");
        if let Some(entry) = cache.get(kernel) {
            return Ok(Arc::clone(entry));
        }
        let k = if kernel == "toy" {
            kernels::toy()
        } else {
            kernels::kernel_by_name(kernel)
                .ok_or_else(|| format!("unknown kernel `{kernel}`"))?
        };
        let space = DesignSpace::from_kernel(&k);
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let entry = Arc::new(KernelEntry { space, graph });
        cache.insert(kernel.to_string(), Arc::clone(&entry));
        Ok(entry)
    }
}

impl BatchPredictor for PredictService {
    fn predict(&self, kernel: &str, indices: &[u128]) -> Result<Vec<PredictionRow>, String> {
        let entry = self.resolve(kernel)?;
        let points: Vec<DesignPoint> = indices
            .iter()
            .map(|&i| {
                if i >= entry.space.size() {
                    Err(format!(
                        "index {i} out of range for `{kernel}` (space size {})",
                        entry.space.size()
                    ))
                } else {
                    Ok(entry.space.point_at(i))
                }
            })
            .collect::<Result<_, _>>()?;
        let preds = self.engine.predict_ordered(&self.predictor, &entry.graph, kernel, &points);
        Ok(preds
            .into_iter()
            .map(|p| PredictionRow {
                valid_prob: p.valid_prob,
                cycles: p.cycles,
                dsp: p.util.dsp,
                bram: p.util.bram,
                lut: p.util.lut,
                ff: p.util.ff,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use crate::trainer::TrainConfig;
    use gdse_gnn::{ModelConfig, ModelKind};

    fn tiny_service() -> PredictService {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 20, 7);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(2),
        );
        PredictService::new(p, ExecEngine::serial())
    }

    #[test]
    fn service_matches_direct_predict_batch() {
        let svc = tiny_service();
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = proggraph::build_graph_bidirectional(&k, &space);
        let indices: Vec<u128> = (0..6).map(|i| i * 17 % space.size()).collect();
        let points: Vec<_> = indices.iter().map(|&i| space.point_at(i)).collect();

        let rows = svc.predict(k.name(), &indices).expect("serves");
        let direct = svc.predictor().predict_batch(&graph, &points);
        assert_eq!(rows.len(), direct.len());
        for (r, d) in rows.iter().zip(&direct) {
            assert_eq!(r.valid_prob.to_bits(), d.valid_prob.to_bits());
            assert_eq!(r.cycles, d.cycles);
            assert_eq!(r.dsp.to_bits(), d.util.dsp.to_bits());
            assert_eq!(r.bram.to_bits(), d.util.bram.to_bits());
        }
    }

    #[test]
    fn unknown_kernel_and_out_of_range_index_are_errors() {
        let svc = tiny_service();
        assert!(svc.predict("no-such-kernel", &[0]).is_err());
        let k = kernels::gemm_ncubed();
        let size = DesignSpace::from_kernel(&k).size();
        let err = svc.predict(k.name(), &[size]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn repeated_queries_are_served_from_the_prediction_cache() {
        use gdse_obs as obs;
        obs::metrics::reset();
        let svc = tiny_service();
        let k = kernels::gemm_ncubed();
        let indices: Vec<u128> = vec![1, 2, 3];
        let first = svc.predict(k.name(), &indices).unwrap();
        let before = obs::metrics::snapshot().counter("exec.cache_hits").unwrap_or(0);
        let second = svc.predict(k.name(), &indices).unwrap();
        let after = obs::metrics::snapshot().counter("exec.cache_hits").unwrap_or(0);
        assert_eq!(first, second);
        assert_eq!(after - before, 3, "second pass must be all cache hits");
    }
}
