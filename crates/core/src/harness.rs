//! Resilient evaluation harness: retry, backoff, and failure accounting
//! around any [`HlsOracle`].
//!
//! The explorers and the rounds loop do not talk to an oracle directly; they
//! go through an [`EvalBackend`]. The plain [`MerlinSimulator`] is an
//! infallible backend (what every existing call site uses), while
//! [`Harness`] wraps a fallible [`HlsOracle`] and turns its transient
//! failures into retried attempts with capped exponential backoff, and its
//! permanent failures into typed [`EvalError`]s the caller can degrade
//! gracefully on.
//!
//! Backoff is *virtual*: the harness records how long a real driver would
//! have slept (`HarnessStats::virtual_backoff_ms`) without actually
//! sleeping, keeping simulated campaigns fast and fully deterministic.

use merlin_sim::{FaultConfig, FaultyOracle, HlsOracle, HlsResult, MerlinSimulator, OracleFailure};

use design_space::{DesignPoint, DesignSpace};
use gdse_obs as obs;
use hls_ir::Kernel;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Why an evaluation could not produce a result, after the harness did all
/// it could.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalError {
    /// The oracle reported a non-retryable failure.
    Permanent {
        /// The underlying failure.
        failure: OracleFailure,
    },
    /// Every allowed attempt failed with a (retryable) transient failure.
    Exhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The failure of the final attempt.
        last: OracleFailure,
    },
}

impl EvalError {
    /// The underlying oracle failure.
    pub fn failure(&self) -> &OracleFailure {
        match self {
            EvalError::Permanent { failure } => failure,
            EvalError::Exhausted { last, .. } => last,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Permanent { failure } => {
                write!(f, "permanent oracle failure: {failure}")
            }
            EvalError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.failure())
    }
}

/// Retry discipline: how many times to re-run a failed invocation and how
/// long to (virtually) wait between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_backoff_ms: 1_000, max_backoff_ms: 60_000 }
    }
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and the default backoff curve.
    pub fn with_max_retries(max_retries: u32) -> Self {
        RetryPolicy { max_retries, ..RetryPolicy::default() }
    }

    /// Backoff before retry number `retry` (1-based): capped exponential,
    /// `base * 2^(retry-1)` clamped to `max_backoff_ms`.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        debug_assert!(retry >= 1, "backoff happens before a retry, not the first attempt");
        self.base_backoff_ms
            .saturating_mul(1u64 << (retry - 1).min(62))
            .min(self.max_backoff_ms)
    }

    /// Total attempts allowed (first try + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }
}

/// Counters the harness accumulates across a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarnessStats {
    /// Oracle invocations (including retries).
    pub attempts: u64,
    /// Evaluations that eventually produced a result.
    pub successes: u64,
    /// Transient failures that were retried.
    pub transient_failures: u64,
    /// Evaluations abandoned on a non-retryable failure.
    pub permanent_failures: u64,
    /// Evaluations abandoned after exhausting all retries.
    pub exhausted: u64,
    /// Milliseconds a real driver would have spent backing off.
    pub virtual_backoff_ms: u64,
}

impl HarnessStats {
    /// Evaluations that produced no result.
    pub fn losses(&self) -> u64 {
        self.permanent_failures + self.exhausted
    }

    /// Adds another stats block into this one — how per-worker harness
    /// accounting folds back into campaign totals after a parallel section.
    /// Every field is a sum, so merging worker partitions in any order
    /// equals evaluating the same points serially.
    pub fn merge(&mut self, other: &HarnessStats) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.transient_failures += other.transient_failures;
        self.permanent_failures += other.permanent_failures;
        self.exhausted += other.exhausted;
        self.virtual_backoff_ms += other.virtual_backoff_ms;
    }
}

/// Anything the explorers can evaluate design points against.
///
/// The two implementations are the bare [`MerlinSimulator`] (infallible,
/// zero overhead — the default everywhere) and [`Harness`] (fallible oracle
/// plus retry).
pub trait EvalBackend {
    /// Evaluates one design point, retrying/cleaning up as the backend sees
    /// fit. `Err` means the point produced *no* usable result.
    fn try_evaluate(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Result<HlsResult, EvalError>;
}

impl EvalBackend for MerlinSimulator {
    fn try_evaluate(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Result<HlsResult, EvalError> {
        Ok(self.evaluate(kernel, space, point))
    }
}

impl<T: EvalBackend + ?Sized> EvalBackend for &T {
    fn try_evaluate(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Result<HlsResult, EvalError> {
        (**self).try_evaluate(kernel, space, point)
    }
}

/// Drives an [`HlsOracle`] with bounded retries and failure accounting.
///
/// Counters sit behind a [`Mutex`], so one harness can be shared across the
/// worker pool: per-point retry decisions are independent (fault outcomes
/// are stateless per attempt) and the stats lock is touched only around
/// counter bumps, never across an oracle invocation.
#[derive(Debug)]
pub struct Harness<O> {
    oracle: O,
    policy: RetryPolicy,
    stats: Mutex<HarnessStats>,
}

impl<O: HlsOracle> Harness<O> {
    /// Wraps `oracle` under `policy`.
    pub fn new(oracle: O, policy: RetryPolicy) -> Self {
        Harness { oracle, policy, stats: Mutex::new(HarnessStats::default()) }
    }

    /// The retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> HarnessStats {
        *self.stats.lock().expect("harness stats lock")
    }

    /// Resets the counters (e.g. between rounds).
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("harness stats lock") = HarnessStats::default();
    }

    /// Runs the oracle on one point, retrying transient failures with
    /// capped exponential (virtual) backoff.
    pub fn evaluate(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Result<HlsResult, EvalError> {
        let max_attempts = self.policy.max_attempts();
        let mut attempt = 0u32;
        loop {
            self.stats.lock().expect("harness stats lock").attempts += 1;
            obs::metrics::counter_inc("oracle.attempts");
            let started = Instant::now();
            let outcome = self.oracle.run(kernel, space, point, attempt);
            obs::metrics::observe_us("oracle.eval_us", started.elapsed().as_micros() as u64);
            match outcome {
                Ok(result) => {
                    self.stats.lock().expect("harness stats lock").successes += 1;
                    obs::metrics::counter_inc("oracle.successes");
                    return Ok(result);
                }
                Err(failure) if !failure.is_retryable() => {
                    self.stats.lock().expect("harness stats lock").permanent_failures += 1;
                    obs::metrics::counter_inc("oracle.permanent_failures");
                    obs::metrics::counter_add_labeled("harness.faults", "kind", failure.kind(), 1);
                    obs::warn!(
                        "oracle.permanent_failure",
                        "evaluation abandoned: {failure}";
                        kernel = kernel.name(),
                        kind = failure.kind(),
                    );
                    return Err(EvalError::Permanent { failure });
                }
                Err(failure) => {
                    {
                        let mut stats = self.stats.lock().expect("harness stats lock");
                        stats.transient_failures += 1;
                        attempt += 1;
                        if attempt >= max_attempts {
                            stats.exhausted += 1;
                        } else {
                            stats.virtual_backoff_ms += self.policy.backoff_ms(attempt);
                        }
                    }
                    obs::metrics::counter_inc("oracle.transient_failures");
                    obs::metrics::counter_add_labeled("harness.faults", "kind", failure.kind(), 1);
                    if attempt >= max_attempts {
                        obs::metrics::counter_inc("oracle.exhausted");
                        obs::warn!(
                            "oracle.exhausted",
                            "gave up after {attempt} attempts: {failure}";
                            kernel = kernel.name(),
                            kind = failure.kind(),
                            attempts = attempt,
                        );
                        return Err(EvalError::Exhausted { attempts: attempt, last: failure });
                    }
                    let backoff_ms = self.policy.backoff_ms(attempt);
                    obs::metrics::counter_add("oracle.retries", 1);
                    obs::metrics::counter_add("oracle.virtual_backoff_ms", backoff_ms);
                    obs::debug!(
                        "oracle.retry",
                        "transient failure, retrying: {failure}";
                        kernel = kernel.name(),
                        kind = failure.kind(),
                        retry = attempt,
                        backoff_ms = backoff_ms,
                    );
                }
            }
        }
    }
}

impl<O: HlsOracle> EvalBackend for Harness<O> {
    fn try_evaluate(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Result<HlsResult, EvalError> {
        self.evaluate(kernel, space, point)
    }
}

/// Fluent construction of a [`Harness`]: retry discipline plus an optional
/// fault-injection layer, in one place.
///
/// ```
/// use gnn_dse::harness::{HarnessBuilder, RetryPolicy};
/// use merlin_sim::FaultConfig;
///
/// let harness = HarnessBuilder::new()
///     .faults(FaultConfig::uniform(0.1, 7))
///     .max_retries(5)
///     .build();
/// assert_eq!(harness.policy().max_retries, 5);
/// ```
#[derive(Debug, Clone)]
pub struct HarnessBuilder {
    policy: RetryPolicy,
    faults: FaultConfig,
}

impl Default for HarnessBuilder {
    fn default() -> Self {
        HarnessBuilder { policy: RetryPolicy::default(), faults: FaultConfig::none() }
    }
}

impl HarnessBuilder {
    /// A builder with the default retry policy and no fault injection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole retry policy.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry count, keeping the default backoff curve.
    pub fn max_retries(mut self, max_retries: u32) -> Self {
        self.policy.max_retries = max_retries;
        self
    }

    /// Injects faults per `config` between the oracle and the harness.
    pub fn faults(mut self, config: FaultConfig) -> Self {
        self.faults = config;
        self
    }

    /// Builds the standard resilient backend: the analytical simulator
    /// behind the configured fault injector behind the retrying harness.
    pub fn build(self) -> Harness<FaultyOracle<MerlinSimulator>> {
        self.build_with(MerlinSimulator::new())
    }

    /// Like [`HarnessBuilder::build`], wrapping an arbitrary `oracle`
    /// instead of the analytical simulator. A [`FaultConfig::none`] layer is
    /// pass-through, so the fault injector costs nothing when disabled.
    pub fn build_with<O: HlsOracle>(self, oracle: O) -> Harness<FaultyOracle<O>> {
        Harness::new(FaultyOracle::new(oracle, self.faults), self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use merlin_sim::{FaultConfig, FaultyOracle};

    fn setup() -> (Kernel, DesignSpace) {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        (k, space)
    }

    /// Oracle that always fails the same retryable way.
    struct AlwaysCrash;

    impl HlsOracle for AlwaysCrash {
        fn run(
            &self,
            _kernel: &Kernel,
            _space: &DesignSpace,
            _point: &DesignPoint,
            attempt: u32,
        ) -> Result<HlsResult, OracleFailure> {
            Err(OracleFailure::ToolCrash { detail: format!("attempt {attempt}") })
        }
    }

    /// Oracle that fails fatally on every invocation.
    struct BrokenInstall;

    impl HlsOracle for BrokenInstall {
        fn run(
            &self,
            _kernel: &Kernel,
            _space: &DesignSpace,
            _point: &DesignPoint,
            _attempt: u32,
        ) -> Result<HlsResult, OracleFailure> {
            Err(OracleFailure::Fatal { detail: "no toolchain".into() })
        }
    }

    #[test]
    fn gives_up_after_max_retries() {
        let (k, space) = setup();
        let h = Harness::new(AlwaysCrash, RetryPolicy::with_max_retries(2));
        let err = h.evaluate(&k, &space, &space.default_point()).unwrap_err();
        match err {
            EvalError::Exhausted { attempts, ref last } => {
                assert_eq!(attempts, 3, "1 try + 2 retries");
                assert_eq!(last.kind(), "tool-crash");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        let stats = h.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.successes, 0);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.transient_failures, 3);
    }

    #[test]
    fn fatal_failures_are_not_retried() {
        let (k, space) = setup();
        let h = Harness::new(BrokenInstall, RetryPolicy::with_max_retries(5));
        let err = h.evaluate(&k, &space, &space.default_point()).unwrap_err();
        assert!(matches!(err, EvalError::Permanent { .. }));
        assert_eq!(h.stats().attempts, 1, "fatal failure must not burn retries");
        assert_eq!(h.stats().permanent_failures, 1);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy { max_retries: 10, base_backoff_ms: 100, max_backoff_ms: 1_500 };
        assert_eq!(p.backoff_ms(1), 100);
        assert_eq!(p.backoff_ms(2), 200);
        assert_eq!(p.backoff_ms(3), 400);
        assert_eq!(p.backoff_ms(4), 800);
        assert_eq!(p.backoff_ms(5), 1_500, "capped");
        assert_eq!(p.backoff_ms(10), 1_500, "stays capped");
    }

    #[test]
    fn virtual_backoff_accumulates() {
        let (k, space) = setup();
        let policy = RetryPolicy { max_retries: 3, base_backoff_ms: 10, max_backoff_ms: 1_000 };
        let h = Harness::new(AlwaysCrash, policy);
        let _ = h.evaluate(&k, &space, &space.default_point());
        // Backoffs before retries 1..=3: 10 + 20 + 40.
        assert_eq!(h.stats().virtual_backoff_ms, 70);
    }

    #[test]
    fn retries_recover_transient_faults() {
        let (k, space) = setup();
        // At a 30% transient rate with 5 retries, nearly every point should
        // eventually evaluate; and the harness result must equal the bare
        // simulator's (faults never corrupt results, only delay them).
        let sim = MerlinSimulator::new();
        let h = Harness::new(
            FaultyOracle::new(MerlinSimulator::new(), FaultConfig::uniform(0.3, 11)),
            RetryPolicy::with_max_retries(5),
        );
        let mut evaluated = 0usize;
        for i in 0..40u64 {
            let idx = u128::from(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % space.size();
            let p = space.point_at(idx);
            if let Ok(r) = h.evaluate(&k, &space, &p) {
                evaluated += 1;
                let expect = sim.evaluate(&k, &space, &p);
                assert_eq!(r.validity, expect.validity);
                assert_eq!(r.cycles, expect.cycles);
            }
        }
        assert!(evaluated >= 38, "only {evaluated}/40 recovered at 30% transient rate");
        assert!(h.stats().transient_failures > 0, "faults should have fired at 30% rate");
    }

    #[test]
    fn stats_merge_is_field_wise_addition() {
        let a = HarnessStats {
            attempts: 5,
            successes: 3,
            transient_failures: 2,
            permanent_failures: 1,
            exhausted: 1,
            virtual_backoff_ms: 30,
        };
        let mut b = HarnessStats {
            attempts: 7,
            successes: 6,
            transient_failures: 1,
            permanent_failures: 0,
            exhausted: 0,
            virtual_backoff_ms: 10,
        };
        b.merge(&a);
        assert_eq!(b.attempts, 12);
        assert_eq!(b.successes, 9);
        assert_eq!(b.transient_failures, 3);
        assert_eq!(b.permanent_failures, 1);
        assert_eq!(b.exhausted, 1);
        assert_eq!(b.virtual_backoff_ms, 40);
        assert_eq!(b.losses(), 2);
    }

    #[test]
    fn harness_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Harness<FaultyOracle<MerlinSimulator>>>();
        assert_send_sync::<Harness<AlwaysCrash>>();

        // Concurrent evaluations through one shared harness must account
        // every attempt exactly once.
        let (k, space) = setup();
        let h = Harness::new(
            FaultyOracle::new(MerlinSimulator::new(), FaultConfig::uniform(0.3, 5)),
            RetryPolicy::with_max_retries(4),
        );
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (h, k, space) = (&h, &k, &space);
                s.spawn(move || {
                    for i in 0..10u64 {
                        let idx = u128::from((t * 10 + i).wrapping_mul(0x9E37_79B9)) % space.size();
                        let _ = h.evaluate(k, space, &space.point_at(idx));
                    }
                });
            }
        });
        let stats = h.stats();
        assert_eq!(stats.successes + stats.losses(), 40, "every point accounted once");
        assert!(stats.attempts >= 40);
    }

    #[test]
    fn builder_configures_policy_and_faults() {
        let (k, space) = setup();
        // No faults: every evaluation succeeds and matches the bare sim.
        let clean = HarnessBuilder::new().max_retries(0).build();
        let r = clean.evaluate(&k, &space, &space.default_point()).expect("no faults");
        let expect = MerlinSimulator::new().evaluate(&k, &space, &space.default_point());
        assert_eq!(r.cycles, expect.cycles);

        // Full crash rate, zero retries: the configured layers must both be
        // in effect (the fault fires, the policy refuses to retry).
        let crashy = HarnessBuilder::new()
            .faults(FaultConfig { crash_rate: 1.0, ..FaultConfig::none() })
            .retry_policy(RetryPolicy::with_max_retries(0))
            .build();
        assert!(crashy.evaluate(&k, &space, &space.default_point()).is_err());
        assert_eq!(crashy.stats().attempts, 1);
    }

    #[test]
    fn builder_wraps_arbitrary_oracles() {
        let (k, space) = setup();
        let h = HarnessBuilder::new().max_retries(1).build_with(AlwaysCrash);
        let err = h.evaluate(&k, &space, &space.default_point()).unwrap_err();
        assert!(matches!(err, EvalError::Exhausted { attempts: 2, .. }));
    }

    #[test]
    fn bare_simulator_backend_is_infallible() {
        let (k, space) = setup();
        let sim = MerlinSimulator::new();
        assert!(sim.try_evaluate(&k, &space, &space.default_point()).is_ok());
    }
}
