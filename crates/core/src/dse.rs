//! Model-driven design space exploration (§4.4).
//!
//! With millisecond inference the DSE enumerates small spaces exhaustively;
//! enormous spaces are swept in the ordered-pragma priority order (innermost
//! loops first, parallel > pipeline > tile, dependencies promoted) so the
//! most promising candidates are evaluated before the budget or time limit
//! runs out — or, with [`CandidateSampler::Gflow`], sampled from a learned
//! trajectory policy trained online on surrogate rewards.
//!
//! What "promising" means is the [`Objective`]: scalar latency (the paper's
//! contract), a weighted sum, or true Pareto exploration, each optionally
//! constrained by a per-device [`ResourceBudget`](crate::objective::ResourceBudget)
//! enforced through the validity head plus predicted utilization. In Pareto
//! mode the run additionally maintains an incremental
//! [`ParetoArchive`](crate::pareto::ParetoArchive) whose front is returned
//! in [`DseOutcome::front`].

use crate::evaluated::Evaluated;
use crate::explorer::GFlowSampler;
use crate::inference::{Prediction, Predictor};
use crate::objective::{Objective, ObjectiveKind};
use crate::parallel::ExecEngine;
use crate::pareto::{prediction_axes, strictly_dominates, ParetoArchive};
use design_space::{order::ordered_slots, rules, DesignPoint, DesignSpace};
use gdse_obs as obs;
use hls_ir::Kernel;
use proggraph::{build_graph_bidirectional, ProgramGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// How the heuristic DSE generates candidates for spaces too large to
/// enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateSampler {
    /// Priority-ordered mixed-radix sweep (§4.4 order) — the default.
    #[default]
    PrioritySweep,
    /// GFlowNet-style trajectory sampler trained online on surrogate
    /// rewards: samples diverse high-reward configurations in proportion
    /// to reward (`--explorer gflow`).
    Gflow,
}

impl std::str::FromStr for CandidateSampler {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sweep" | "priority" => Ok(Self::PrioritySweep),
            "gflow" => Ok(Self::Gflow),
            other => Err(format!("unknown explorer `{other}` (sweep|gflow)")),
        }
    }
}

/// DSE limits and constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// Utilization constraint `T_u` (eq. 7). Authoritative: the effective
    /// objective is [`DseConfig::objective`] with *this* threshold, so
    /// legacy callers that only set `util_threshold` keep their semantics.
    pub util_threshold: f64,
    /// How many top designs to return for HLS validation (§5.3: top 10).
    pub top_m: usize,
    /// Surrogate batch size.
    pub batch_size: usize,
    /// Spaces up to this size are enumerated exhaustively.
    pub exhaustive_limit: u128,
    /// Cap on surrogate inferences for huge spaces.
    pub max_inferences: usize,
    /// Wall-clock limit (the paper uses 1 hour for `mvt` and `2mm`).
    pub time_limit: Duration,
    /// What to optimize (kind + resource budget; the utilization threshold
    /// inside is overridden by [`DseConfig::util_threshold`]).
    pub objective: Objective,
    /// Candidate generation for non-exhaustive spaces.
    pub sampler: CandidateSampler,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self {
            util_threshold: 0.8,
            top_m: 10,
            batch_size: 64,
            exhaustive_limit: 100_000,
            max_inferences: 60_000,
            time_limit: Duration::from_secs(3600),
            objective: Objective::latency(),
            sampler: CandidateSampler::PrioritySweep,
        }
    }
}

impl DseConfig {
    /// A tiny configuration for tests.
    pub fn quick() -> Self {
        Self {
            exhaustive_limit: 2_000,
            max_inferences: 1_500,
            time_limit: Duration::from_secs(30),
            ..Self::default()
        }
    }

    /// The objective actually enforced: [`DseConfig::objective`] under
    /// [`DseConfig::util_threshold`].
    pub fn effective_objective(&self) -> Objective {
        self.objective.with_util_threshold(self.util_threshold)
    }
}

/// Outcome of one DSE run.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The top-M designs among usable predictions, best first — by
    /// predicted cycles under the latency and Pareto objectives, by the
    /// weighted sum under the weighted objective.
    pub top: Vec<(DesignPoint, Prediction)>,
    /// The predicted Pareto front (sorted by cycles, then resources) under
    /// [`ObjectiveKind::Pareto`]; empty for the scalar objectives.
    pub front: Vec<(DesignPoint, Prediction)>,
    /// Surrogate inferences performed.
    pub inferences: usize,
    /// Wall-clock spent.
    pub wall: Duration,
    /// Whether the whole (canonical) space was covered.
    pub exhaustive: bool,
    /// Whether `top` is the *fallback* list: the model marked nothing as
    /// usable, so the best predictions regardless of constraints are
    /// returned for validation to refute. Fallback candidates may violate
    /// a resource budget; non-fallback candidates never do.
    pub used_fallback: bool,
}

/// Runs the surrogate-driven DSE for one kernel.
pub fn run_dse(
    predictor: &Predictor,
    kernel: &Kernel,
    space: &DesignSpace,
    cfg: &DseConfig,
) -> DseOutcome {
    let graph = build_graph_bidirectional(kernel, space);
    run_dse_with_graph(predictor, kernel, space, &graph, cfg)
}

/// [`run_dse`] with a pre-built program graph (avoids rebuilding across
/// rounds). Runs serially (a single-worker engine).
pub fn run_dse_with_graph(
    predictor: &Predictor,
    kernel: &Kernel,
    space: &DesignSpace,
    graph: &ProgramGraph,
    cfg: &DseConfig,
) -> DseOutcome {
    run_dse_with_engine(predictor, kernel, space, graph, cfg, &ExecEngine::serial())
}

/// [`run_dse_with_graph`] with every surrogate batch scored through the
/// engine: misses are chunked across the worker pool and previously
/// predicted configs come from the engine's prediction cache.
///
/// Prediction is item-independent, so the outcome is identical at any
/// worker count — provided the run is not truncated by `cfg.time_limit`
/// (the one wall-clock-dependent cut; campaigns that need bit-identical
/// reruns should size `max_inferences` instead).
pub fn run_dse_with_engine(
    predictor: &Predictor,
    kernel: &Kernel,
    space: &DesignSpace,
    graph: &ProgramGraph,
    cfg: &DseConfig,
    engine: &ExecEngine,
) -> DseOutcome {
    let _stage = obs::span::stage("dse");
    let start = Instant::now();
    let objective = cfg.effective_objective();
    let pareto_mode = objective.kind == ObjectiveKind::Pareto;
    let exhaustive = space.size() <= cfg.exhaustive_limit;
    let mut top: Vec<(DesignPoint, Prediction)> = Vec::new();
    // Best-by-cycles regardless of the usability filter: returned when the
    // model (e.g. early in the rounds loop) marks nothing as usable, so the
    // tool validation step always has candidates to refute.
    let mut fallback: Vec<(DesignPoint, Prediction)> = Vec::new();
    let mut archive: ParetoArchive<(DesignPoint, Prediction)> =
        ParetoArchive::new(cfg.top_m.max(64));
    let mut inferences = 0usize;
    let mut seen: HashSet<DesignPoint> = HashSet::new();
    let mut pending: Vec<DesignPoint> = Vec::with_capacity(cfg.batch_size);

    // Rank `top` by the objective (exact cycle sort for latency/Pareto —
    // bit-identical to the pre-objective code — weighted sum otherwise) and
    // `fallback` always by predicted cycles.
    let sort_top = |v: &mut Vec<(DesignPoint, Prediction)>| match objective.kind {
        ObjectiveKind::Weighted(w) => v.sort_by(|a, b| {
            w.combine(a.1.cycles, &a.1.util)
                .total_cmp(&w.combine(b.1.cycles, &b.1.util))
                .then(a.1.cycles.cmp(&b.1.cycles))
        }),
        _ => v.sort_by_key(|(_, pr)| pr.cycles),
    };

    // Classify predicted candidates and keep both lists bounded.
    let absorb = |pairs: &mut Vec<(DesignPoint, Prediction)>,
                      top: &mut Vec<(DesignPoint, Prediction)>,
                      fallback: &mut Vec<(DesignPoint, Prediction)>,
                      archive: &mut ParetoArchive<(DesignPoint, Prediction)>| {
        for (p, pred) in pairs.drain(..) {
            if objective.feasible_prediction(&pred) {
                if pareto_mode {
                    archive.insert(prediction_axes(&pred), (p.clone(), pred));
                }
                top.push((p, pred));
            } else {
                fallback.push((p, pred));
            }
        }
        sort_top(top);
        top.truncate(cfg.top_m.max(64));
        fallback.sort_by_key(|(_, pr)| pr.cycles);
        fallback.truncate(cfg.top_m);
    };

    let flush = |pending: &mut Vec<DesignPoint>,
                     top: &mut Vec<(DesignPoint, Prediction)>,
                     fallback: &mut Vec<(DesignPoint, Prediction)>,
                     archive: &mut ParetoArchive<(DesignPoint, Prediction)>,
                     inferences: &mut usize| {
        if pending.is_empty() {
            return;
        }
        let preds = engine.predict_ordered(predictor, graph, kernel.name(), pending);
        *inferences += pending.len();
        let mut pairs: Vec<(DesignPoint, Prediction)> =
            pending.drain(..).zip(preds).collect();
        absorb(&mut pairs, top, fallback, archive);
    };

    if !exhaustive && cfg.sampler == CandidateSampler::Gflow {
        // Learned candidate generation: sample trajectory waves from a
        // tabular policy and train it on surrogate rewards. The policy
        // starts uniform and sharpens toward configurations the surrogate
        // rewards; duplicates still update the policy (the engine's
        // prediction cache makes them cheap) but only unseen canonical
        // configs count as inferences or enter the candidate lists.
        let mut policy = GFlowSampler::new(space, 0.05);
        let mut rng = StdRng::seed_from_u64(fnv1a(kernel.name()));
        let default = rules::canonicalize(kernel, space, &space.default_point());
        let baseline_pred = engine
            .predict_ordered(predictor, graph, kernel.name(), std::slice::from_ref(&default))
            .pop()
            .expect("one prediction per submitted point");
        inferences += 1;
        seen.insert(default.clone());
        let mut pairs = vec![(default, baseline_pred)];
        absorb(&mut pairs, &mut top, &mut fallback, &mut archive);
        let baseline = baseline_pred.cycles.max(1) as f64;

        let max_attempts = cfg.max_inferences.saturating_mul(4).max(64);
        let mut attempts = 0usize;
        while inferences < cfg.max_inferences
            && attempts < max_attempts
            && start.elapsed() <= cfg.time_limit
        {
            let n = cfg.batch_size.max(1).min(max_attempts - attempts);
            let trajectories: Vec<(DesignPoint, Vec<usize>)> =
                (0..n).map(|_| policy.sample(space, &mut rng)).collect();
            attempts += n;
            let wave: Vec<DesignPoint> = trajectories
                .iter()
                .map(|(p, _)| rules::canonicalize(kernel, space, p))
                .collect();
            let preds = engine.predict_ordered(predictor, graph, kernel.name(), &wave);
            let mut pairs: Vec<(DesignPoint, Prediction)> = Vec::new();
            for ((canonical, pred), (_, choices)) in
                wave.into_iter().zip(preds).zip(&trajectories)
            {
                if seen.insert(canonical.clone()) {
                    inferences += 1;
                    pairs.push((canonical, pred));
                }
                let reward = match objective.score_prediction(&pred).scalar() {
                    Some(v) => (baseline / v.max(1.0)).clamp(1e-4, 1e6),
                    None => 1e-4,
                };
                policy.update(choices, reward);
            }
            absorb(&mut pairs, &mut top, &mut fallback, &mut archive);
        }
    } else {
        let candidates = candidate_order(kernel, space, exhaustive, cfg);
        for point in candidates {
            if start.elapsed() > cfg.time_limit || inferences >= cfg.max_inferences && !exhaustive
            {
                break;
            }
            let canonical = rules::canonicalize(kernel, space, &point);
            if !seen.insert(canonical.clone()) {
                continue;
            }
            pending.push(canonical);
            if pending.len() >= cfg.batch_size {
                flush(&mut pending, &mut top, &mut fallback, &mut archive, &mut inferences);
            }
        }
        flush(&mut pending, &mut top, &mut fallback, &mut archive, &mut inferences);
    }

    let used_fallback = top.is_empty();
    if used_fallback {
        top = fallback;
    }
    top.truncate(cfg.top_m);
    let front: Vec<(DesignPoint, Prediction)> =
        archive.front().into_iter().map(|m| m.item.clone()).collect();
    let budget_violations =
        top.iter().filter(|(_, pr)| !objective.budget.admits(&pr.util)).count();
    obs::metrics::counter_add("dse.points_explored", inferences as u64);
    obs::metrics::counter_add("dse.candidates_returned", top.len() as u64);
    obs::metrics::counter_add("dse.front_points", front.len() as u64);
    obs::metrics::counter_add("dse.budget_violations", budget_violations as u64);
    obs::debug!(
        "dse.done",
        "explored {inferences} candidates for {} ({})",
        kernel.name(),
        if exhaustive { "exhaustive" } else { "heuristic" };
        kernel = kernel.name(),
        inferences = inferences,
        top = top.len(),
        front = front.len(),
        exhaustive = exhaustive,
        wall_us = start.elapsed(),
    );
    DseOutcome { top, front, inferences, wall: start.elapsed(), exhaustive, used_fallback }
}

/// FNV-1a of a kernel name: a stable per-kernel RNG seed for the learned
/// sampler (no global seed plumbing required, identical across runs).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The candidate stream: full enumeration for small spaces, priority-ordered
/// mixed-radix sweep for large ones.
fn candidate_order<'a>(
    kernel: &Kernel,
    space: &'a DesignSpace,
    exhaustive: bool,
    cfg: &DseConfig,
) -> Box<dyn Iterator<Item = DesignPoint> + 'a> {
    if exhaustive {
        return Box::new(space.iter());
    }
    // Reordered mixed-radix enumeration: the highest-priority slot varies
    // fastest, so early candidates sweep the pragmas that matter most while
    // the rest stay at their defaults.
    let order = ordered_slots(kernel, space);
    let limit = (cfg.max_inferences as u128 * 4).min(space.size());
    let default = space.default_point();
    Box::new((0..limit).map(move |i| {
        let mut point = default.clone();
        let mut rem = i;
        for &slot in &order {
            let radix = space.slots()[slot].options.len() as u128;
            point.set_value(slot, space.slots()[slot].options[(rem % radix) as usize]);
            rem /= radix;
            if rem == 0 {
                break;
            }
        }
        point
    }))
}

/// Indices of the Pareto-optimal entries, minimizing cycles and every
/// resource count jointly.
///
/// Dominance semantics (deterministic, order-independent membership):
///
/// * invalid results never make the front;
/// * a valid entry is excluded iff some valid entry **strictly dominates**
///   it — no worse on all five axes (cycles, DSP, BRAM18, LUT, FF) and
///   strictly better on at least one. Weak dominance that is not strict
///   means the two objective vectors are *identical*, which is handled by:
/// * exact ties (identical cycles and resource counts): only the
///   lowest-index entry is kept. The historical scan kept every duplicate,
///   making front size depend on arrival order; now the front is a set of
///   distinct objective vectors plus one deterministic representative each.
pub fn pareto_front(results: &[Evaluated]) -> Vec<usize> {
    let axes: Vec<Option<[f64; 5]>> =
        results.iter().map(|e| e.result.is_valid().then(|| e.axes())).collect();
    (0..results.len())
        .filter(|&i| {
            let Some(a) = axes[i] else { return false };
            !axes.iter().enumerate().any(|(j, b)| {
                let Some(b) = b else { return false };
                j != i && (strictly_dominates(b, &a) || (*b == a && j < i))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use crate::objective::ResourceBudget;
    use crate::trainer::TrainConfig;
    use gdse_gnn::{ModelConfig, ModelKind};
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    fn trained(kernel_fn: fn() -> Kernel, budget: usize) -> (Predictor, Kernel, DesignSpace) {
        let k = kernel_fn();
        let ks = vec![kernel_fn()];
        let db = generate_database(&ks, &[], budget, 23);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(5),
        );
        let space = DesignSpace::from_kernel(&k);
        (p, k, space)
    }

    fn evaluated_all(kernel: &Kernel, space: &DesignSpace) -> Vec<Evaluated> {
        let sim = MerlinSimulator::new();
        (0..space.size())
            .map(|i| {
                let pt = space.point_at(i);
                let r = sim.evaluate(kernel, space, &pt);
                Evaluated::new(pt, r, 0, &Objective::latency())
            })
            .collect()
    }

    #[test]
    fn exhaustive_dse_covers_small_space() {
        let (p, k, space) = trained(kernels::aes, 30);
        let out = run_dse(&p, &k, &space, &DseConfig::quick());
        assert!(out.exhaustive);
        assert!(out.inferences > 0);
        assert!(out.top.len() <= 10);
        assert!(out.front.is_empty(), "latency mode publishes no front");
    }

    #[test]
    fn heuristic_dse_respects_inference_cap() {
        let (p, k, space) = trained(kernels::gemm_ncubed, 40);
        let mut cfg = DseConfig::quick();
        cfg.exhaustive_limit = 10; // force the heuristic path
        cfg.max_inferences = 300;
        let out = run_dse(&p, &k, &space, &cfg);
        assert!(!out.exhaustive);
        assert!(out.inferences <= 300 + cfg.batch_size);
    }

    #[test]
    fn parallel_dse_matches_serial_dse() {
        let (p, k, space) = trained(kernels::spmv_ellpack, 40);
        let graph = build_graph_bidirectional(&k, &space);
        let cfg = DseConfig::quick();
        let serial = run_dse_with_graph(&p, &k, &space, &graph, &cfg);
        for jobs in [4, 8] {
            let engine = ExecEngine::with_jobs(jobs);
            let par = run_dse_with_engine(&p, &k, &space, &graph, &cfg, &engine);
            assert_eq!(par.inferences, serial.inferences, "jobs={jobs}");
            assert_eq!(par.exhaustive, serial.exhaustive);
            assert_eq!(par.top.len(), serial.top.len(), "jobs={jobs}");
            for ((pp, ppred), (sp, spred)) in par.top.iter().zip(&serial.top) {
                assert_eq!(pp, sp, "jobs={jobs}");
                assert_eq!(ppred.cycles, spred.cycles, "jobs={jobs}");
                assert_eq!(
                    ppred.valid_prob.to_bits(),
                    spred.valid_prob.to_bits(),
                    "jobs={jobs}: predictions must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn gflow_sampler_dse_is_jobs_invariant() {
        let (p, k, space) = trained(kernels::gemm_ncubed, 40);
        let graph = build_graph_bidirectional(&k, &space);
        let mut cfg = DseConfig::quick();
        cfg.exhaustive_limit = 10; // force the heuristic path
        cfg.max_inferences = 400;
        cfg.sampler = CandidateSampler::Gflow;
        let serial = run_dse_with_graph(&p, &k, &space, &graph, &cfg);
        assert!(!serial.exhaustive);
        assert!(serial.inferences <= cfg.max_inferences + cfg.batch_size);
        assert!(!serial.top.is_empty());
        for jobs in [2, 4] {
            let engine = ExecEngine::with_jobs(jobs);
            let par = run_dse_with_engine(&p, &k, &space, &graph, &cfg, &engine);
            assert_eq!(par.inferences, serial.inferences, "jobs={jobs}");
            assert_eq!(par.top, serial.top, "jobs={jobs}");
        }
    }

    #[test]
    fn top_designs_are_sorted_by_predicted_cycles() {
        let (p, k, space) = trained(kernels::spmv_ellpack, 40);
        let out = run_dse(&p, &k, &space, &DseConfig::quick());
        for w in out.top.windows(2) {
            assert!(w[0].1.cycles <= w[1].1.cycles);
        }
    }

    #[test]
    fn impossible_threshold_falls_back_to_best_predicted() {
        // With an unsatisfiable utilization threshold nothing is "usable",
        // but the DSE must still return ranked candidates so the validation
        // step has something to refute.
        let (p, k, space) = trained(kernels::spmv_ellpack, 30);
        let mut cfg = DseConfig::quick();
        cfg.util_threshold = -1.0;
        let out = run_dse(&p, &k, &space, &cfg);
        assert!(!out.top.is_empty(), "fallback candidates expected");
        assert!(out.used_fallback);
        for w in out.top.windows(2) {
            assert!(w[0].1.cycles <= w[1].1.cycles, "fallback is sorted too");
        }
    }

    #[test]
    fn pareto_objective_publishes_a_mutually_non_dominated_front() {
        let (p, k, space) = trained(kernels::spmv_ellpack, 40);
        let mut cfg = DseConfig::quick();
        cfg.objective = Objective::pareto();
        let out = run_dse(&p, &k, &space, &cfg);
        if out.used_fallback {
            return; // nothing usable predicted; nothing to check
        }
        assert!(!out.front.is_empty(), "usable predictions imply a front");
        for (i, (_, a)) in out.front.iter().enumerate() {
            for (j, (_, b)) in out.front.iter().enumerate() {
                if i != j {
                    assert!(
                        !strictly_dominates(&prediction_axes(b), &prediction_axes(a)),
                        "front member {i} dominated by {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn budget_constrained_dse_returns_no_violating_candidate() {
        let (p, k, space) = trained(kernels::spmv_ellpack, 40);
        let mut cfg = DseConfig::quick();
        let budget = ResourceBudget::parse("dsp=0.6,bram=0.6").unwrap();
        cfg.objective = Objective::pareto().with_budget(budget);
        let out = run_dse(&p, &k, &space, &cfg);
        if !out.used_fallback {
            for (_, pred) in &out.top {
                assert!(budget.admits(&pred.util), "top candidate violates the budget");
            }
        }
        for (_, pred) in &out.front {
            assert!(budget.admits(&pred.util), "front member violates the budget");
        }
    }

    #[test]
    fn pareto_front_filters_dominated() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let results = evaluated_all(&k, &space);
        let front = pareto_front(&results);
        assert!(!front.is_empty());
        // No front member strictly dominates another.
        for &i in &front {
            for &j in &front {
                if i != j {
                    assert!(
                        !strictly_dominates(&results[j].axes(), &results[i].axes()),
                        "front member {i} dominated by {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn pareto_front_keeps_one_deterministic_representative_per_tie() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let mut results = evaluated_all(&k, &space);
        let n = results.len();
        // Duplicate the whole set: every entry now has an exact objective
        // tie at index i + n. The front must keep only the low-index copy.
        results.extend(results.clone());
        let front = pareto_front(&results);
        assert!(!front.is_empty());
        assert!(front.iter().all(|&i| i < n), "ties resolve to the lowest index");
        // Membership equals the single-copy front.
        assert_eq!(front, pareto_front(&results[..n]));
        // And distinct objective vectors: no two front members tie exactly.
        for (a, &i) in front.iter().enumerate() {
            for &j in front.iter().skip(a + 1) {
                assert_ne!(results[i].axes(), results[j].axes());
            }
        }
    }
}
