//! Model-driven design space exploration (§4.4).
//!
//! With millisecond inference the DSE enumerates small spaces exhaustively;
//! enormous spaces are swept in the ordered-pragma priority order (innermost
//! loops first, parallel > pipeline > tile, dependencies promoted) so the
//! most promising candidates are evaluated before the budget or time limit
//! runs out.

use crate::inference::{Prediction, Predictor};
use crate::parallel::ExecEngine;
use design_space::{order::ordered_slots, rules, DesignPoint, DesignSpace};
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::HlsResult;
use proggraph::{build_graph_bidirectional, ProgramGraph};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// DSE limits and constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseConfig {
    /// Utilization constraint `T_u` (eq. 7).
    pub util_threshold: f64,
    /// How many top designs to return for HLS validation (§5.3: top 10).
    pub top_m: usize,
    /// Surrogate batch size.
    pub batch_size: usize,
    /// Spaces up to this size are enumerated exhaustively.
    pub exhaustive_limit: u128,
    /// Cap on surrogate inferences for huge spaces.
    pub max_inferences: usize,
    /// Wall-clock limit (the paper uses 1 hour for `mvt` and `2mm`).
    pub time_limit: Duration,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self {
            util_threshold: 0.8,
            top_m: 10,
            batch_size: 64,
            exhaustive_limit: 100_000,
            max_inferences: 60_000,
            time_limit: Duration::from_secs(3600),
        }
    }
}

impl DseConfig {
    /// A tiny configuration for tests.
    pub fn quick() -> Self {
        Self {
            exhaustive_limit: 2_000,
            max_inferences: 1_500,
            time_limit: Duration::from_secs(30),
            ..Self::default()
        }
    }
}

/// Outcome of one DSE run.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The top-M designs by predicted latency among usable predictions,
    /// best first.
    pub top: Vec<(DesignPoint, Prediction)>,
    /// Surrogate inferences performed.
    pub inferences: usize,
    /// Wall-clock spent.
    pub wall: Duration,
    /// Whether the whole (canonical) space was covered.
    pub exhaustive: bool,
}

/// Runs the surrogate-driven DSE for one kernel.
pub fn run_dse(
    predictor: &Predictor,
    kernel: &Kernel,
    space: &DesignSpace,
    cfg: &DseConfig,
) -> DseOutcome {
    let graph = build_graph_bidirectional(kernel, space);
    run_dse_with_graph(predictor, kernel, space, &graph, cfg)
}

/// [`run_dse`] with a pre-built program graph (avoids rebuilding across
/// rounds). Runs serially (a single-worker engine).
pub fn run_dse_with_graph(
    predictor: &Predictor,
    kernel: &Kernel,
    space: &DesignSpace,
    graph: &ProgramGraph,
    cfg: &DseConfig,
) -> DseOutcome {
    run_dse_with_engine(predictor, kernel, space, graph, cfg, &ExecEngine::serial())
}

/// [`run_dse_with_graph`] with every surrogate batch scored through the
/// engine: misses are chunked across the worker pool and previously
/// predicted configs come from the engine's prediction cache.
///
/// Prediction is item-independent, so the outcome is identical at any
/// worker count — provided the run is not truncated by `cfg.time_limit`
/// (the one wall-clock-dependent cut; campaigns that need bit-identical
/// reruns should size `max_inferences` instead).
pub fn run_dse_with_engine(
    predictor: &Predictor,
    kernel: &Kernel,
    space: &DesignSpace,
    graph: &ProgramGraph,
    cfg: &DseConfig,
    engine: &ExecEngine,
) -> DseOutcome {
    let _stage = obs::span::stage("dse");
    let start = Instant::now();
    let exhaustive = space.size() <= cfg.exhaustive_limit;
    let mut top: Vec<(DesignPoint, Prediction)> = Vec::new();
    // Best-by-cycles regardless of the usability filter: returned when the
    // model (e.g. early in the rounds loop) marks nothing as usable, so the
    // tool validation step always has candidates to refute.
    let mut fallback: Vec<(DesignPoint, Prediction)> = Vec::new();
    let mut inferences = 0usize;
    let mut seen: HashSet<DesignPoint> = HashSet::new();
    let mut pending: Vec<DesignPoint> = Vec::with_capacity(cfg.batch_size);

    let flush = |pending: &mut Vec<DesignPoint>,
                     top: &mut Vec<(DesignPoint, Prediction)>,
                     fallback: &mut Vec<(DesignPoint, Prediction)>,
                     inferences: &mut usize| {
        if pending.is_empty() {
            return;
        }
        let preds = engine.predict_ordered(predictor, graph, kernel.name(), pending);
        *inferences += pending.len();
        for (p, pred) in pending.drain(..).zip(preds) {
            if pred.usable(cfg.util_threshold) {
                top.push((p, pred));
            } else {
                fallback.push((p, pred));
            }
        }
        // Keep both candidate lists bounded.
        top.sort_by_key(|(_, pr)| pr.cycles);
        top.truncate(cfg.top_m.max(64));
        fallback.sort_by_key(|(_, pr)| pr.cycles);
        fallback.truncate(cfg.top_m);
    };

    let candidates = candidate_order(kernel, space, exhaustive, cfg);
    for point in candidates {
        if start.elapsed() > cfg.time_limit || inferences >= cfg.max_inferences && !exhaustive {
            break;
        }
        let canonical = rules::canonicalize(kernel, space, &point);
        if !seen.insert(canonical.clone()) {
            continue;
        }
        pending.push(canonical);
        if pending.len() >= cfg.batch_size {
            flush(&mut pending, &mut top, &mut fallback, &mut inferences);
        }
    }
    flush(&mut pending, &mut top, &mut fallback, &mut inferences);

    if top.is_empty() {
        top = fallback;
    }
    top.truncate(cfg.top_m);
    obs::metrics::counter_add("dse.points_explored", inferences as u64);
    obs::metrics::counter_add("dse.candidates_returned", top.len() as u64);
    obs::debug!(
        "dse.done",
        "explored {inferences} candidates for {} ({})",
        kernel.name(),
        if exhaustive { "exhaustive" } else { "heuristic" };
        kernel = kernel.name(),
        inferences = inferences,
        top = top.len(),
        exhaustive = exhaustive,
        wall_us = start.elapsed(),
    );
    DseOutcome { top, inferences, wall: start.elapsed(), exhaustive }
}

/// The candidate stream: full enumeration for small spaces, priority-ordered
/// mixed-radix sweep for large ones.
fn candidate_order<'a>(
    kernel: &Kernel,
    space: &'a DesignSpace,
    exhaustive: bool,
    cfg: &DseConfig,
) -> Box<dyn Iterator<Item = DesignPoint> + 'a> {
    if exhaustive {
        return Box::new(space.iter());
    }
    // Reordered mixed-radix enumeration: the highest-priority slot varies
    // fastest, so early candidates sweep the pragmas that matter most while
    // the rest stay at their defaults.
    let order = ordered_slots(kernel, space);
    let limit = (cfg.max_inferences as u128 * 4).min(space.size());
    let default = space.default_point();
    Box::new((0..limit).map(move |i| {
        let mut point = default.clone();
        let mut rem = i;
        for &slot in &order {
            let radix = space.slots()[slot].options.len() as u128;
            point.set_value(slot, space.slots()[slot].options[(rem % radix) as usize]);
            rem /= radix;
            if rem == 0 {
                break;
            }
        }
        point
    }))
}

/// Indices of the Pareto-optimal entries, minimizing cycles and every
/// resource count jointly.
pub fn pareto_front(results: &[(DesignPoint, HlsResult)]) -> Vec<usize> {
    let dominated = |a: &HlsResult, b: &HlsResult| {
        // b dominates a.
        let better_eq = b.cycles <= a.cycles
            && b.counts.dsp <= a.counts.dsp
            && b.counts.bram18 <= a.counts.bram18
            && b.counts.lut <= a.counts.lut
            && b.counts.ff <= a.counts.ff;
        let strictly = b.cycles < a.cycles
            || b.counts.dsp < a.counts.dsp
            || b.counts.bram18 < a.counts.bram18
            || b.counts.lut < a.counts.lut
            || b.counts.ff < a.counts.ff;
        better_eq && strictly
    };
    (0..results.len())
        .filter(|&i| {
            results[i].1.is_valid()
                && !results
                    .iter()
                    .enumerate()
                    .any(|(j, (_, rj))| j != i && rj.is_valid() && dominated(&results[i].1, rj))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use crate::trainer::TrainConfig;
    use gdse_gnn::{ModelConfig, ModelKind};
    use hls_ir::kernels;
    use merlin_sim::MerlinSimulator;

    fn trained(kernel_fn: fn() -> Kernel, budget: usize) -> (Predictor, Kernel, DesignSpace) {
        let k = kernel_fn();
        let ks = vec![kernel_fn()];
        let db = generate_database(&ks, &[], budget, 23);
        let (p, _) = Predictor::train(
            &db,
            &ks,
            ModelKind::Transformer,
            ModelConfig::small(),
            &TrainConfig::quick().with_epochs(5),
        );
        let space = DesignSpace::from_kernel(&k);
        (p, k, space)
    }

    #[test]
    fn exhaustive_dse_covers_small_space() {
        let (p, k, space) = trained(kernels::aes, 30);
        let out = run_dse(&p, &k, &space, &DseConfig::quick());
        assert!(out.exhaustive);
        assert!(out.inferences > 0);
        assert!(out.top.len() <= 10);
    }

    #[test]
    fn heuristic_dse_respects_inference_cap() {
        let (p, k, space) = trained(kernels::gemm_ncubed, 40);
        let mut cfg = DseConfig::quick();
        cfg.exhaustive_limit = 10; // force the heuristic path
        cfg.max_inferences = 300;
        let out = run_dse(&p, &k, &space, &cfg);
        assert!(!out.exhaustive);
        assert!(out.inferences <= 300 + cfg.batch_size);
    }

    #[test]
    fn parallel_dse_matches_serial_dse() {
        let (p, k, space) = trained(kernels::spmv_ellpack, 40);
        let graph = build_graph_bidirectional(&k, &space);
        let cfg = DseConfig::quick();
        let serial = run_dse_with_graph(&p, &k, &space, &graph, &cfg);
        for jobs in [4, 8] {
            let engine = ExecEngine::with_jobs(jobs);
            let par = run_dse_with_engine(&p, &k, &space, &graph, &cfg, &engine);
            assert_eq!(par.inferences, serial.inferences, "jobs={jobs}");
            assert_eq!(par.exhaustive, serial.exhaustive);
            assert_eq!(par.top.len(), serial.top.len(), "jobs={jobs}");
            for ((pp, ppred), (sp, spred)) in par.top.iter().zip(&serial.top) {
                assert_eq!(pp, sp, "jobs={jobs}");
                assert_eq!(ppred.cycles, spred.cycles, "jobs={jobs}");
                assert_eq!(
                    ppred.valid_prob.to_bits(),
                    spred.valid_prob.to_bits(),
                    "jobs={jobs}: predictions must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn top_designs_are_sorted_by_predicted_cycles() {
        let (p, k, space) = trained(kernels::spmv_ellpack, 40);
        let out = run_dse(&p, &k, &space, &DseConfig::quick());
        for w in out.top.windows(2) {
            assert!(w[0].1.cycles <= w[1].1.cycles);
        }
    }

    #[test]
    fn impossible_threshold_falls_back_to_best_predicted() {
        // With an unsatisfiable utilization threshold nothing is "usable",
        // but the DSE must still return ranked candidates so the validation
        // step has something to refute.
        let (p, k, space) = trained(kernels::spmv_ellpack, 30);
        let mut cfg = DseConfig::quick();
        cfg.util_threshold = -1.0;
        let out = run_dse(&p, &k, &space, &cfg);
        assert!(!out.top.is_empty(), "fallback candidates expected");
        for w in out.top.windows(2) {
            assert!(w[0].1.cycles <= w[1].1.cycles, "fallback is sorted too");
        }
    }

    #[test]
    fn pareto_front_filters_dominated() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let results: Vec<(DesignPoint, HlsResult)> = (0..space.size())
            .map(|i| {
                let pt = space.point_at(i);
                let r = sim.evaluate(&k, &space, &pt);
                (pt, r)
            })
            .collect();
        let front = pareto_front(&results);
        assert!(!front.is_empty());
        // No front member dominates another.
        for &i in &front {
            for &j in &front {
                if i != j {
                    let (a, b) = (&results[i].1, &results[j].1);
                    let dominates = b.cycles <= a.cycles
                        && b.counts.dsp <= a.counts.dsp
                        && b.counts.lut <= a.counts.lut
                        && (b.cycles < a.cycles || b.counts.dsp < a.counts.dsp);
                    assert!(
                        !(dominates && b.counts.bram18 <= a.counts.bram18 && b.counts.ff <= a.counts.ff),
                        "front member {i} dominated by {j}"
                    );
                }
            }
        }
    }
}
