//! Initial-database generation (§4.1 / Fig. 2): run the three explorers on
//! every training kernel with per-kernel budgets sized like Table 1.

use crate::db::Database;
use crate::explorer::{BottleneckExplorer, Budget, HybridExplorer, RandomExplorer};
use crate::harness::{EvalBackend, Harness, RetryPolicy};
use design_space::DesignSpace;
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::{FaultConfig, FaultyOracle, MerlinSimulator};

/// Per-kernel evaluation budgets of the paper's *initial* database
/// (Table 1, "Initial database # Total").
pub fn table1_budgets() -> Vec<(&'static str, usize)> {
    vec![
        ("aes", 15),
        ("atax", 605),
        ("gemm-blocked", 616),
        ("gemm-ncubed", 432),
        ("mvt", 571),
        ("spmv-crs", 98),
        ("spmv-ellpack", 114),
        ("stencil", 1066),
        ("nw", 911),
    ]
}

/// Scaled-down budgets for fast tests and examples (~15% of Table 1).
pub fn small_budgets() -> Vec<(&'static str, usize)> {
    table1_budgets()
        .into_iter()
        .map(|(k, n)| (k, (n / 7).max(12)))
        .collect()
}

/// Runs the three explorers on one kernel: 40% of the budget to the
/// bottleneck optimizer, 30% to the hybrid explorer, the rest to random
/// sampling.
pub fn explore_kernel<B: EvalBackend>(
    sim: &B,
    kernel: &Kernel,
    space: &DesignSpace,
    db: &mut Database,
    budget: usize,
    seed: u64,
) {
    let before = db.len();
    let greedy_share = (budget * 4) / 10;
    let hybrid_share = (budget * 3) / 10;
    BottleneckExplorer::new().explore(sim, kernel, space, db, Budget::evals(greedy_share));
    HybridExplorer::with_seed(seed).explore(sim, kernel, space, db, Budget::evals(hybrid_share));
    let used = db.len() - before;
    let rest = budget.saturating_sub(used);
    RandomExplorer::new(seed ^ 0x9e37_79b9).explore(sim, kernel, space, db, Budget::evals(rest));
}

/// Generates the initial database for a set of kernels.
///
/// `budgets` maps kernel names to evaluation budgets; kernels without an
/// entry get `default_budget`.
pub fn generate_database(
    kernels: &[Kernel],
    budgets: &[(&str, usize)],
    default_budget: usize,
    seed: u64,
) -> Database {
    generate_database_with(&MerlinSimulator::new(), kernels, budgets, default_budget, seed)
}

/// [`generate_database`] against an arbitrary evaluation backend (e.g. a
/// retrying [`Harness`] over a fault-injecting oracle). Points the backend
/// loses to tool failure are skipped; the rest of the campaign proceeds.
pub fn generate_database_with<B: EvalBackend>(
    eval: &B,
    kernels: &[Kernel],
    budgets: &[(&str, usize)],
    default_budget: usize,
    seed: u64,
) -> Database {
    let _stage = obs::span::stage("explore");
    let mut db = Database::new();
    for (i, k) in kernels.iter().enumerate() {
        let space = DesignSpace::from_kernel(k);
        let budget = budgets
            .iter()
            .find(|(name, _)| *name == k.name())
            .map(|&(_, b)| b)
            .unwrap_or(default_budget);
        let before = db.len();
        explore_kernel(eval, k, &space, &mut db, budget, seed.wrapping_add(i as u64));
        obs::debug!(
            "dbgen.kernel",
            "{}: {} designs recorded (budget {budget})",
            k.name(),
            db.len() - before;
            kernel = k.name(),
            budget = budget,
            recorded = db.len() - before,
        );
    }
    db
}

/// Builds the standard resilient backend: the analytical simulator behind a
/// fault injector (per `faults`) behind a retrying harness.
pub fn fault_injected_harness(
    faults: FaultConfig,
    policy: RetryPolicy,
) -> Harness<FaultyOracle<MerlinSimulator>> {
    Harness::new(FaultyOracle::new(MerlinSimulator::new(), faults), policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;

    #[test]
    fn generates_mixed_quality_database() {
        let ks = vec![kernels::gemm_ncubed(), kernels::spmv_ellpack()];
        let db = generate_database(&ks, &[("gemm-ncubed", 80), ("spmv-ellpack", 40)], 50, 7);
        let stats = db.stats();
        assert_eq!(stats.len(), 2);
        // Both valid and invalid designs should be present for gemm.
        let gemm: Vec<_> = db.of_kernel("gemm-ncubed").collect();
        assert!(gemm.iter().any(|e| e.result.is_valid()));
        assert!(gemm.len() >= 60);
        // Latency diversity: at least 10x between best and worst.
        let (lo, hi) = db.latency_range().unwrap();
        assert!(hi > 10 * lo, "database should span bad-to-good designs: {lo}..{hi}");
    }

    #[test]
    fn budgets_are_approximately_respected() {
        let ks = vec![kernels::stencil()];
        let db = generate_database(&ks, &[("stencil", 60)], 60, 1);
        let total = db.len();
        assert!(total <= 66, "close to the budget, got {total}");
        assert!(total >= 40, "should use most of the budget, got {total}");
    }

    #[test]
    fn deterministic_under_seed() {
        let ks = vec![kernels::spmv_crs()];
        let a = generate_database(&ks, &[], 30, 5);
        let b = generate_database(&ks, &[], 30, 5);
        assert_eq!(a.entries(), b.entries());
    }
}
