//! Initial-database generation (§4.1 / Fig. 2): run the three explorers on
//! every training kernel with per-kernel budgets sized like Table 1.

use crate::db::Database;
use crate::explorer::{BottleneckExplorer, Budget, Explorer, HybridExplorer, RandomExplorer};
use crate::harness::{EvalBackend, Harness, RetryPolicy};
use crate::parallel::ExecEngine;
use design_space::DesignSpace;
use gdse_obs as obs;
use hls_ir::Kernel;
use merlin_sim::{FaultConfig, FaultyOracle, MerlinSimulator};

/// Per-kernel evaluation budgets of the paper's *initial* database
/// (Table 1, "Initial database # Total").
pub fn table1_budgets() -> Vec<(&'static str, usize)> {
    vec![
        ("aes", 15),
        ("atax", 605),
        ("gemm-blocked", 616),
        ("gemm-ncubed", 432),
        ("mvt", 571),
        ("spmv-crs", 98),
        ("spmv-ellpack", 114),
        ("stencil", 1066),
        ("nw", 911),
    ]
}

/// Scaled-down budgets for fast tests and examples (~15% of Table 1).
pub fn small_budgets() -> Vec<(&'static str, usize)> {
    table1_budgets()
        .into_iter()
        .map(|(k, n)| (k, (n / 7).max(12)))
        .collect()
}

/// Runs the three explorers on one kernel: 40% of the budget to the
/// bottleneck optimizer, 30% to the hybrid explorer, the rest to random
/// sampling.
pub fn explore_kernel<B: EvalBackend + Sync>(
    sim: &B,
    kernel: &Kernel,
    space: &DesignSpace,
    db: &mut Database,
    budget: usize,
    seed: u64,
) {
    explore_kernel_with(&ExecEngine::serial(), sim, kernel, space, db, budget, seed);
}

/// [`explore_kernel`] with every explorer's candidate frontiers scored
/// through the engine's worker pool (batched, cached evaluation).
pub fn explore_kernel_with<B: EvalBackend + Sync>(
    engine: &ExecEngine,
    eval: &B,
    kernel: &Kernel,
    space: &DesignSpace,
    db: &mut Database,
    budget: usize,
    seed: u64,
) {
    let before = db.len();
    let greedy_share = (budget * 4) / 10;
    let hybrid_share = (budget * 3) / 10;
    let greedy = BottleneckExplorer::new();
    greedy.explore_scored_with(
        engine,
        eval,
        kernel,
        space,
        db,
        Budget::evals(greedy_share),
        &greedy.objective(),
    );
    let hybrid = HybridExplorer::with_seed(seed);
    hybrid.explore_scored_with(
        engine,
        eval,
        kernel,
        space,
        db,
        Budget::evals(hybrid_share),
        &hybrid.objective(),
    );
    let used = db.len() - before;
    let rest = budget.saturating_sub(used);
    let random = RandomExplorer::new(seed ^ 0x9e37_79b9);
    random.explore_scored_with(
        engine,
        eval,
        kernel,
        space,
        db,
        Budget::evals(rest),
        &random.objective(),
    );
}

/// Generates the initial database for a set of kernels.
///
/// `budgets` maps kernel names to evaluation budgets; kernels without an
/// entry get `default_budget`.
pub fn generate_database(
    kernels: &[Kernel],
    budgets: &[(&str, usize)],
    default_budget: usize,
    seed: u64,
) -> Database {
    generate_database_with(&MerlinSimulator::new(), kernels, budgets, default_budget, seed)
}

/// [`generate_database`] against an arbitrary evaluation backend (e.g. a
/// retrying [`Harness`] over a fault-injecting oracle). Points the backend
/// loses to tool failure are skipped; the rest of the campaign proceeds.
pub fn generate_database_with<B: EvalBackend + Sync>(
    eval: &B,
    kernels: &[Kernel],
    budgets: &[(&str, usize)],
    default_budget: usize,
    seed: u64,
) -> Database {
    let _stage = obs::span::stage("explore");
    let mut db = Database::new();
    for (i, k) in kernels.iter().enumerate() {
        let space = DesignSpace::from_kernel(k);
        let budget = budgets
            .iter()
            .find(|(name, _)| *name == k.name())
            .map(|&(_, b)| b)
            .unwrap_or(default_budget);
        let before = db.len();
        explore_kernel(eval, k, &space, &mut db, budget, seed.wrapping_add(i as u64));
        obs::debug!(
            "dbgen.kernel",
            "{}: {} designs recorded (budget {budget})",
            k.name(),
            db.len() - before;
            kernel = k.name(),
            budget = budget,
            recorded = db.len() - before,
        );
    }
    db
}

/// [`generate_database_with`] across the engine's worker pool: kernels fan
/// out over the pool (one private database per kernel, merged back in
/// kernel order), and within each kernel the explorers batch their
/// candidate frontiers through the same pool.
///
/// Because each kernel's exploration is independent — keys in the shared
/// database are namespaced by kernel name, and the serial generator
/// processes kernels one after another — the merged database is identical
/// to the serial one at any worker count.
pub fn generate_database_par<B: EvalBackend + Sync>(
    engine: &ExecEngine,
    eval: &B,
    kernels: &[Kernel],
    budgets: &[(&str, usize)],
    default_budget: usize,
    seed: u64,
) -> Database {
    let _stage = obs::span::stage("explore");
    let per_kernel = engine.pool().map(kernels, |i, k| {
        let space = DesignSpace::from_kernel(k);
        let budget = budgets
            .iter()
            .find(|(name, _)| *name == k.name())
            .map(|&(_, b)| b)
            .unwrap_or(default_budget);
        let mut db = Database::new();
        explore_kernel_with(engine, eval, k, &space, &mut db, budget, seed.wrapping_add(i as u64));
        (db, budget)
    });

    let mut db = Database::new();
    for (k, (kernel_db, budget)) in kernels.iter().zip(per_kernel) {
        let added = db.merge(&kernel_db);
        obs::debug!(
            "dbgen.kernel",
            "{}: {} designs recorded (budget {budget})",
            k.name(),
            added;
            kernel = k.name(),
            budget = budget,
            recorded = added,
        );
    }
    db
}

/// Builds the standard resilient backend: the analytical simulator behind a
/// fault injector (per `faults`) behind a retrying harness.
pub fn fault_injected_harness(
    faults: FaultConfig,
    policy: RetryPolicy,
) -> Harness<FaultyOracle<MerlinSimulator>> {
    Harness::new(FaultyOracle::new(MerlinSimulator::new(), faults), policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;

    #[test]
    fn generates_mixed_quality_database() {
        let ks = vec![kernels::gemm_ncubed(), kernels::spmv_ellpack()];
        let db = generate_database(&ks, &[("gemm-ncubed", 80), ("spmv-ellpack", 40)], 50, 7);
        let stats = db.stats();
        assert_eq!(stats.len(), 2);
        // Both valid and invalid designs should be present for gemm.
        let gemm: Vec<_> = db.of_kernel("gemm-ncubed").collect();
        assert!(gemm.iter().any(|e| e.result.is_valid()));
        assert!(gemm.len() >= 60);
        // Latency diversity: at least 10x between best and worst.
        let (lo, hi) = db.latency_range().unwrap();
        assert!(hi > 10 * lo, "database should span bad-to-good designs: {lo}..{hi}");
    }

    #[test]
    fn budgets_are_approximately_respected() {
        let ks = vec![kernels::stencil()];
        let db = generate_database(&ks, &[("stencil", 60)], 60, 1);
        let total = db.len();
        assert!(total <= 66, "close to the budget, got {total}");
        assert!(total >= 40, "should use most of the budget, got {total}");
    }

    #[test]
    fn deterministic_under_seed() {
        let ks = vec![kernels::spmv_crs()];
        let a = generate_database(&ks, &[], 30, 5);
        let b = generate_database(&ks, &[], 30, 5);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn parallel_generation_matches_serial_generation() {
        let ks = vec![kernels::gemm_ncubed(), kernels::spmv_ellpack(), kernels::atax()];
        let serial = generate_database(&ks, &[], 30, 5);
        for jobs in [1, 4] {
            let engine = ExecEngine::with_jobs(jobs);
            let par =
                generate_database_par(&engine, &MerlinSimulator::new(), &ks, &[], 30, 5);
            assert_eq!(par.entries(), serial.entries(), "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_generation_is_jobs_invariant_under_faults() {
        let ks = vec![kernels::spmv_crs(), kernels::stencil()];
        let faults = FaultConfig::uniform(0.25, 99);
        let policy = RetryPolicy::with_max_retries(3);
        let mut reference = None;
        for jobs in [1, 8] {
            let engine = ExecEngine::with_jobs(jobs);
            let h = fault_injected_harness(faults, policy);
            let db = generate_database_par(&engine, &h, &ks, &[], 25, 3);
            match &reference {
                None => reference = Some(db),
                Some(r) => assert_eq!(db.entries(), r.entries(), "jobs={jobs}"),
            }
        }
    }
}
