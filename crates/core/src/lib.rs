//! # gnn-dse
//!
//! The GNN-DSE framework (DAC 2022): a graph-neural-network surrogate of the
//! HLS toolchain driving design-space exploration for FPGA accelerators.
//!
//! The crate ties the substrates together (Fig. 1a):
//!
//! * [`dbgen`] / [`explorer`] — build a [`db::Database`] of evaluated
//!   designs with the five explorers (bottleneck, hybrid, random, annealing,
//!   and the GFlowNet-style trajectory sampler), all parameterized by an
//!   [`objective::Objective`];
//! * [`objective`] / [`pareto`] — what "better" means: scalar latency,
//!   weighted-sum, or true multi-objective Pareto search with per-device
//!   resource budgets, plus the incremental [`pareto::ParetoArchive`];
//! * [`dataset`] — pre-process targets (§5.2.1: eq. 11 latency transform,
//!   utilization fractions, BRAM split) into a trainable [`dataset::Dataset`];
//! * [`trainer`] — train/evaluate the Table 2 models (RMSE, accuracy, F1,
//!   k-fold cross-validation);
//! * [`inference`] — the millisecond [`inference::Predictor`] (classifier +
//!   regressor + BRAM model);
//! * [`dse`] — exhaustive or priority-ordered surrogate-driven search with
//!   the eq. 7 utilization constraint and Pareto utilities;
//! * [`rounds`] — the iterative DSE/database-augmentation loop of Fig. 7.
//!
//! ## Quickstart
//!
//! ```
//! use gnn_dse::{dbgen, dse, inference::Predictor, trainer::TrainConfig};
//! use gdse_gnn::{ModelConfig, ModelKind};
//! use design_space::DesignSpace;
//! use hls_ir::kernels;
//!
//! // 1. Build a small database for one kernel.
//! let ks = vec![kernels::spmv_ellpack()];
//! let db = dbgen::generate_database(&ks, &[], 30, 7);
//!
//! // 2. Train the surrogate.
//! let (predictor, _) = Predictor::train(
//!     &db, &ks, ModelKind::Transformer, ModelConfig::small(),
//!     &TrainConfig::quick().with_epochs(3),
//! );
//!
//! // 3. Explore.
//! let space = DesignSpace::from_kernel(&ks[0]);
//! let out = dse::run_dse(&predictor, &ks[0], &space, &dse::DseConfig::quick());
//! println!("explored {} candidates", out.inferences);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod daemon;
pub mod dataset;
pub mod db;
pub mod dbgen;
pub mod dse;
pub mod error;
pub mod evaluated;
pub mod explorer;
pub mod harness;
pub mod inference;
pub mod learn;
pub mod objective;
pub mod parallel;
pub mod pareto;
pub mod persist;
pub mod report;
pub mod rounds;
pub mod serving;
pub mod trainer;

pub use artifact::{decode_predictor, encode_predictor, ArtifactMeta, META_SCHEMA_VERSION};
pub use daemon::{run_daemon, Daemon, DaemonConfig, DaemonReport, DaemonStatus};
pub use dataset::{Dataset, Normalizer};
pub use db::{Database, DbEntry, DbError};
pub use dse::{pareto_front, run_dse, run_dse_with_engine, CandidateSampler, DseConfig, DseOutcome};
pub use error::Error;
pub use evaluated::Evaluated;
pub use explorer::{Budget, Explorer, GFlowExplorer};
pub use harness::{EvalBackend, EvalError, Harness, HarnessBuilder, HarnessStats, RetryPolicy};
pub use inference::{Prediction, Predictor, QuantPredictor};
pub use learn::{ReplayBuffer, ReplayStats};
pub use objective::{Objective, ObjectiveKind, ObjectiveWeights, ResourceBudget, Score};
pub use pareto::{hypervolume, ParetoArchive};
pub use parallel::{ExecEngine, ExecEngineBuilder};
pub use report::{build_run_report, write_run_report};
pub use rounds::{run_rounds, run_rounds_with_engine, CampaignDriver, RoundReport, RoundsConfig};
pub use serving::{ArtifactProvider, PredictService};
pub use trainer::{ClassificationMetrics, RegressionMetrics, TrainConfig};
