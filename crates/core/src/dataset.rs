//! Dataset construction and target pre-processing (§5.2.1).
//!
//! Utilizations are already fractions of the available resources; the
//! latency is transformed with eq. 11,
//! `T_latency = log2(NormalizationFactor / latency)`, so low-latency
//! (high-performance) designs map to *large* targets and dominate the loss.
//! BRAM correlates weakly with the other objectives, so it is predicted by
//! a separate model.

use crate::db::Database;
use design_space::{DesignPoint, DesignSpace};
use gdse_gnn::{GraphBatch, GraphInput};
use gdse_tensor::Matrix;
use hls_ir::Kernel;
use proggraph::{build_graph_bidirectional, ProgramGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Regression target names of the main model, in head order.
pub const MAIN_TARGETS: [&str; 4] = ["latency", "dsp", "lut", "ff"];
/// Target of the separate BRAM model.
pub const BRAM_TARGET: [&str; 1] = ["bram"];
/// Head of the validity classifier.
pub const CLASS_TARGET: [&str; 1] = ["valid"];

/// The latency normalization of eq. 11.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    norm_factor: f64,
}

impl Normalizer {
    /// Builds a normalizer whose factor is the largest valid latency of the
    /// database (so the slowest design maps to `T = 0`).
    pub fn from_database(db: &Database) -> Self {
        let max = db.latency_range().map(|(_, hi)| hi).unwrap_or(1).max(1);
        Self { norm_factor: max as f64 }
    }

    /// A normalizer with an explicit factor.
    pub fn with_factor(norm_factor: f64) -> Self {
        Self { norm_factor }
    }

    /// The normalization factor.
    pub fn factor(&self) -> f64 {
        self.norm_factor
    }

    /// `T_latency = log2(factor / latency)` (eq. 11).
    pub fn transform(&self, cycles: u64) -> f64 {
        (self.norm_factor / cycles.max(1) as f64).log2()
    }

    /// Inverse of [`Normalizer::transform`].
    pub fn inverse(&self, t: f64) -> u64 {
        (self.norm_factor / 2f64.powf(t)).round().max(1.0) as u64
    }
}

/// One training sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Kernel name.
    pub kernel: String,
    /// Design configuration.
    pub point: DesignPoint,
    /// Synthesized successfully.
    pub valid: bool,
    /// `[T_latency, dsp, lut, ff]` (meaningful only when valid).
    pub main_targets: [f32; 4],
    /// BRAM utilization (meaningful only when valid).
    pub bram: f32,
}

/// A dataset: samples plus the per-kernel program graphs they lower onto.
#[derive(Debug, Clone)]
pub struct Dataset {
    graphs: HashMap<String, ProgramGraph>,
    samples: Vec<Sample>,
    normalizer: Normalizer,
}

impl Dataset {
    /// Builds a dataset from a database and the kernels it references,
    /// deriving the latency normalizer from the database itself.
    ///
    /// # Panics
    ///
    /// Panics if the database references a kernel not in `kernels`.
    pub fn from_database(db: &Database, kernels: &[Kernel]) -> Self {
        Self::from_database_with_normalizer(db, kernels, Normalizer::from_database(db))
    }

    /// Builds a dataset with an explicit latency normalizer — required when
    /// fine-tuning an existing model, whose targets must stay on the scale
    /// it was originally trained with.
    ///
    /// # Panics
    ///
    /// Panics if the database references a kernel not in `kernels`.
    pub fn from_database_with_normalizer(
        db: &Database,
        kernels: &[Kernel],
        normalizer: Normalizer,
    ) -> Self {
        let mut graphs = HashMap::new();
        for k in kernels {
            let space = DesignSpace::from_kernel(k);
            graphs.insert(k.name().to_string(), build_graph_bidirectional(k, &space));
        }
        let samples = db
            .entries()
            .iter()
            .map(|e| {
                assert!(graphs.contains_key(&e.kernel), "unknown kernel {}", e.kernel);
                Sample {
                    kernel: e.kernel.clone(),
                    point: e.point.clone(),
                    valid: e.result.is_valid(),
                    main_targets: [
                        normalizer.transform(e.result.cycles) as f32,
                        e.result.util.dsp as f32,
                        e.result.util.lut as f32,
                        e.result.util.ff as f32,
                    ],
                    bram: e.result.util.bram as f32,
                }
            })
            .collect();
        Self { graphs, samples, normalizer }
    }

    /// The latency normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Indices of valid samples (regression trains only on these).
    pub fn valid_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.samples[i].valid).collect()
    }

    /// The program graph of a kernel.
    pub fn graph(&self, kernel: &str) -> &ProgramGraph {
        &self.graphs[kernel]
    }

    /// Lowers the given samples into one batch.
    pub fn batch(&self, idxs: &[usize]) -> GraphBatch {
        let inputs: Vec<(GraphInput, &DesignPoint)> = idxs
            .iter()
            .map(|&i| {
                let s = &self.samples[i];
                (GraphInput::from_graph(&self.graphs[&s.kernel], Some(&s.point)), &s.point)
            })
            .collect();
        let refs: Vec<(&GraphInput, &DesignPoint)> =
            inputs.iter().map(|(gi, p)| (gi, *p)).collect();
        GraphBatch::new(&refs)
    }

    /// Target column `[B, 1]` for one head name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown head name.
    pub fn targets(&self, idxs: &[usize], head: &str) -> Matrix {
        let col: Vec<f32> = idxs
            .iter()
            .map(|&i| {
                let s = &self.samples[i];
                match head {
                    "latency" => s.main_targets[0],
                    "dsp" => s.main_targets[1],
                    "lut" => s.main_targets[2],
                    "ff" => s.main_targets[3],
                    "bram" => s.bram,
                    "valid" => {
                        if s.valid {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    other => panic!("unknown target head `{other}`"),
                }
            })
            .collect();
        Matrix::col_vector(&col)
    }

    /// Deterministic shuffled train/test split (§5.1: 80/20).
    pub fn split(&self, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        split_indices(self.len(), train_frac, seed)
    }

    /// Deterministic k-fold cross-validation splits (§5.1: 3-fold).
    pub fn kfold(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut idxs: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idxs.shuffle(&mut rng);
        let fold_size = self.len().div_ceil(k);
        (0..k)
            .map(|f| {
                let lo = f * fold_size;
                let hi = ((f + 1) * fold_size).min(self.len());
                let test: Vec<usize> = idxs[lo..hi].to_vec();
                let train: Vec<usize> =
                    idxs[..lo].iter().chain(&idxs[hi..]).copied().collect();
                (train, test)
            })
            .collect()
    }
}

/// Shuffled index split shared by dataset and tests.
pub fn split_indices(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idxs: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idxs.shuffle(&mut rng);
    let cut = ((n as f64) * train_frac).round() as usize;
    let (train, test) = idxs.split_at(cut.min(n));
    (train.to_vec(), test.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate_database;
    use hls_ir::kernels;

    fn tiny_dataset() -> Dataset {
        let ks = vec![kernels::gemm_ncubed(), kernels::spmv_ellpack()];
        let db = generate_database(&ks, &[], 30, 11);
        Dataset::from_database(&db, &ks)
    }

    #[test]
    fn normalizer_round_trip() {
        let n = Normalizer::with_factor(1_000_000.0);
        for cycles in [660u64, 12_345, 999_999] {
            let t = n.transform(cycles);
            let back = n.inverse(t);
            let err = (back as i64 - cycles as i64).unsigned_abs();
            assert!(err <= 1, "{cycles} -> {t} -> {back}");
        }
    }

    #[test]
    fn slowest_valid_design_maps_to_zero() {
        let ks = vec![kernels::gemm_ncubed()];
        let db = generate_database(&ks, &[], 25, 3);
        let norm = Normalizer::from_database(&db);
        let (_, hi) = db.latency_range().unwrap();
        assert!(norm.transform(hi).abs() < 1e-9);
        // Faster designs get larger targets.
        let (lo, _) = db.latency_range().unwrap();
        assert!(norm.transform(lo) >= 0.0);
    }

    #[test]
    fn dataset_targets_align_with_samples() {
        let ds = tiny_dataset();
        assert!(!ds.is_empty());
        let idxs: Vec<usize> = (0..ds.len().min(5)).collect();
        let lat = ds.targets(&idxs, "latency");
        assert_eq!(lat.shape(), (idxs.len(), 1));
        let valid = ds.targets(&idxs, "valid");
        for (row, &i) in idxs.iter().enumerate() {
            assert_eq!(valid.get(row, 0) == 1.0, ds.samples()[i].valid);
        }
    }

    #[test]
    fn batch_covers_requested_samples() {
        let ds = tiny_dataset();
        let idxs = vec![0, ds.len() - 1];
        let batch = ds.batch(&idxs);
        assert_eq!(batch.num_graphs, 2);
        assert_eq!(batch.pragma_x.rows(), 2);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let ds = tiny_dataset();
        let (train, test) = ds.split(0.8, 42);
        assert_eq!(train.len() + test.len(), ds.len());
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.len());
    }

    #[test]
    fn kfold_partitions_test_sets() {
        let ds = tiny_dataset();
        let folds = ds.kfold(3, 7);
        assert_eq!(folds.len(), 3);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), ds.len(), "every sample appears in exactly one test fold");
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), ds.len());
        }
    }

    #[test]
    #[should_panic(expected = "unknown target head")]
    fn unknown_head_panics() {
        let ds = tiny_dataset();
        let _ = ds.targets(&[0], "nope");
    }
}
