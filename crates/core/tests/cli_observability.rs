//! The `gnndse` binary end-to-end: `rounds --metrics-out` must leave a
//! parseable `run_report.json` with non-zero stage timings, and `--log-json`
//! must capture the run as JSONL.

use gdse_obs::RunReport;
use gnn_dse::dbgen;
use hls_ir::kernels;
use std::process::Command;

#[test]
fn rounds_cli_writes_a_valid_run_report_and_jsonl_log() {
    let dir = std::env::temp_dir().join("gnn_dse_cli_obs_it");
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("db.json");
    let out_path = dir.join("db_out.json");
    let report_path = dir.join("run_report.json");
    let log_path = dir.join("log.jsonl");

    // A one-kernel database keeps the CLI run to a few seconds.
    let ks = vec![kernels::spmv_ellpack()];
    let db = dbgen::generate_database(&ks, &[("spmv-ellpack", 30)], 30, 5);
    db.save(&db_path).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_gnndse"))
        .args([
            "rounds",
            db_path.to_str().unwrap(),
            "--rounds",
            "1",
            "--out",
            out_path.to_str().unwrap(),
            "--metrics-out",
            report_path.to_str().unwrap(),
            "--log-json",
            log_path.to_str().unwrap(),
            "--log-level",
            "debug",
        ])
        .output()
        .expect("gnndse binary runs");
    assert!(
        output.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    // The report parses, carries the command, and times the pipeline stages.
    let report =
        RunReport::from_json(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.command, "rounds");
    assert!(report.total_wall_us > 0);
    for stage in ["io", "setup", "train", "dse", "validate"] {
        assert!(report.stage_us(stage) > 0, "stage `{stage}` untimed: {:?}", report.stages);
    }
    assert!(report.stages_total_us() <= report.total_wall_us);

    // The JSONL log contains the per-round record with its structured fields.
    let log = std::fs::read_to_string(&log_path).unwrap();
    assert!(!log.is_empty(), "--log-json must capture records");
    for line in log.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("each line is one JSON object");
        let map = v.as_map().expect("records are objects");
        assert!(map.iter().any(|(k, _)| k == "event"), "record has an event: {line}");
    }
    assert!(log.contains("\"event\":\"rounds.round\""), "round record missing:\n{log}");
    assert!(log.contains("\"event\":\"rounds.done\""), "done record missing:\n{log}");

    for f in [&db_path, &out_path, &report_path, &log_path] {
        std::fs::remove_file(f).ok();
    }
}
