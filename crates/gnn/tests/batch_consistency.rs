//! Batching must be semantically transparent: a design's prediction inside
//! a batch equals its prediction alone (rows of different graphs never
//! interact through any op).

use design_space::DesignSpace;
use gdse_gnn::{GraphBatch, GraphInput, ModelConfig, ModelKind, PredictionModel};
use hls_ir::kernels;
use proggraph::build_graph_bidirectional;

#[test]
fn batched_forward_equals_single_forward_for_all_kinds() {
    let k = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&k);
    let graph = build_graph_bidirectional(&k, &space);
    let points: Vec<_> = (0..4).map(|i| space.point_at(i * 97 % space.size())).collect();
    let inputs: Vec<GraphInput> = points
        .iter()
        .map(|p| GraphInput::from_graph(&graph, Some(p)))
        .collect();

    for kind in ModelKind::ALL {
        let model = PredictionModel::new(kind, ModelConfig::small(), &["latency", "dsp"]);
        let refs: Vec<(&GraphInput, &design_space::DesignPoint)> =
            inputs.iter().zip(&points).collect();
        let batch = GraphBatch::new(&refs);
        let batched = model.forward(&batch);
        for (i, (input, point)) in inputs.iter().zip(&points).enumerate() {
            let single = model.forward_single(input, point);
            assert_eq!(
                single.values(),
                batched.values_of(i),
                "{kind:?}: sample {i} differs between batch and single"
            );
        }
    }
}

#[test]
fn mixed_kernel_batches_are_supported() {
    // Graphs of different kernels (different sizes) share one batch.
    let ka = kernels::aes();
    let kb = kernels::stencil();
    let sa = DesignSpace::from_kernel(&ka);
    let sb = DesignSpace::from_kernel(&kb);
    let ga = build_graph_bidirectional(&ka, &sa);
    let gb = build_graph_bidirectional(&kb, &sb);
    let pa = sa.default_point();
    let pb = sb.default_point();
    let ia = GraphInput::from_graph(&ga, Some(&pa));
    let ib = GraphInput::from_graph(&gb, Some(&pb));

    let model = PredictionModel::new(ModelKind::Full, ModelConfig::small(), &["latency"]);
    let batch = GraphBatch::new(&[(&ia, &pa), (&ib, &pb)]);
    let out = model.forward(&batch);
    let single_a = model.forward_single(&ia, &pa).values();
    let single_b = model.forward_single(&ib, &pb).values();
    assert_eq!(out.values_of(0), single_a);
    assert_eq!(out.values_of(1), single_b);
    assert_ne!(single_a, single_b, "different programs get different embeddings");
}

#[test]
fn attention_is_normalized_per_graph_in_batches() {
    let k = kernels::spmv_ellpack();
    let space = DesignSpace::from_kernel(&k);
    let graph = build_graph_bidirectional(&k, &space);
    let p0 = space.default_point();
    let p1 = space.point_at(space.size() - 1);
    let i0 = GraphInput::from_graph(&graph, Some(&p0));
    let i1 = GraphInput::from_graph(&graph, Some(&p1));
    let model = PredictionModel::new(ModelKind::Full, ModelConfig::small(), &["latency"]);
    let batch = GraphBatch::new(&[(&i0, &p0), (&i1, &p1)]);
    let out = model.forward(&batch);
    let att = out.graph.value(out.attention.expect("M7 exposes attention"));
    let n = graph.num_nodes();
    let s0: f32 = (0..n).map(|r| att.get(r, 0)).sum();
    let s1: f32 = (n..2 * n).map(|r| att.get(r, 0)).sum();
    assert!((s0 - 1.0).abs() < 1e-4, "graph 0 attention sums to {s0}");
    assert!((s1 - 1.0).abs() < 1e-4, "graph 1 attention sums to {s1}");
}
