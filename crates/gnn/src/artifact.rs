//! Versioned, zero-dependency binary artifact format for trained models.
//!
//! A trained [`PredictionModel`] is the expensive output of the pipeline;
//! this module makes it a durable, reusable artifact instead of a
//! train-once-in-RAM object. The format is deliberately boring:
//!
//! ```text
//! "GDSE" magic (4 bytes)
//! format version   u32 LE
//! meta JSON        string        (training metadata, schema-versioned)
//! section count    u32 LE
//! section          string name + u32 length + payload bytes   (repeated)
//! checksum         u64 LE        (FNV-1a 64 of every byte before it)
//! ```
//!
//! where `string` is a `u32` byte length followed by UTF-8 bytes. Model
//! sections (produced by [`encode_model`]) store the architecture
//! descriptor — kind, [`ModelConfig`], head names — followed by every
//! parameter of the [`ParamStore`] as raw little-endian `f32` bits keyed by
//! name and shape. Decoding rebuilds the architecture with
//! [`PredictionModel::new`] (parameter registration order is deterministic)
//! and overwrites the freshly initialized weights in place, so a loaded
//! model is **byte-identical** to the one that was saved: no float/text
//! round trip is involved.
//!
//! Everything here is `std`-only; corruption is detected by the trailing
//! checksum and reported through the typed [`ArtifactError`].

use crate::model::{ModelConfig, ModelKind, PredictionModel};
use gdse_tensor::{Matrix, QuantMatrix, QuantParamSet};

/// File magic: the first four bytes of every artifact.
pub const MAGIC: [u8; 4] = *b"GDSE";

/// The original envelope version: f32-only section payloads.
pub const FORMAT_V1: u32 = 1;

/// Envelope version 2: identical wire layout, but sections may carry
/// int8-quantized model payloads ([`encode_model_quant`]). The version bump
/// exists purely so builds that predate quantization refuse such files with
/// a typed [`ArtifactError::UnsupportedVersion`] instead of misreading them.
pub const FORMAT_V2: u32 = 2;

/// Newest on-disk format version this build can read and write.
pub const FORMAT_VERSION: u32 = FORMAT_V2;

/// Typed decode/validation failures of the artifact format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The byte stream ended before a field could be read.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// The file does not start with the `GDSE` magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum recomputed over the content.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// Structurally invalid content (bad tag, shape mismatch, bad UTF-8...).
    Corrupt(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Truncated { needed, available } => write!(
                f,
                "artifact truncated: needed {needed} more byte(s), {available} left"
            ),
            ArtifactError::BadMagic => write!(f, "not a GDSE model artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found } => write!(
                f,
                "artifact format version {found} unsupported (this build reads 1..={FORMAT_VERSION})"
            ),
            ArtifactError::ChecksumMismatch { expected, found } => write!(
                f,
                "artifact checksum mismatch: content hashes to {expected:#018x}, file says {found:#018x}"
            ),
            ArtifactError::Corrupt(msg) => write!(f, "artifact corrupt: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit hash — the artifact checksum. Not cryptographic; it guards
/// against truncation and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over an artifact byte stream with typed underrun errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(ArtifactError::Truncated { needed: n, available });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, ArtifactError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Corrupt("string field is not UTF-8".into()))
    }

    fn rest(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A decoded artifact envelope: training metadata plus named payload
/// sections (model weights, normalizer, ...). The envelope is agnostic to
/// what the sections contain; `gnn-dse` layers predictor semantics on top.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Envelope version this artifact is (or will be) encoded as. `new`
    /// artifacts stay [`FORMAT_V1`] so plain-f32 files remain readable by
    /// older builds; writers that add quantized sections must bump to
    /// [`FORMAT_V2`] via [`Artifact::with_version`].
    pub version: u32,
    /// Training metadata as a JSON document (schema version, kernel set,
    /// epoch count, seed). Kept as text so the envelope stays zero-dependency.
    pub meta_json: String,
    /// Named payload sections, in file order.
    pub sections: Vec<(String, Vec<u8>)>,
}

impl Artifact {
    /// An empty artifact with the given metadata document, encoded as
    /// [`FORMAT_V1`] (readable by every build).
    pub fn new(meta_json: impl Into<String>) -> Self {
        Artifact { version: FORMAT_V1, meta_json: meta_json.into(), sections: Vec::new() }
    }

    /// Replaces the envelope version.
    ///
    /// # Panics
    ///
    /// Panics if `version` is not one this build can write (1..=[`FORMAT_VERSION`]).
    pub fn with_version(mut self, version: u32) -> Self {
        assert!(
            (FORMAT_V1..=FORMAT_VERSION).contains(&version),
            "cannot write envelope version {version}"
        );
        self.version = version;
        self
    }

    /// Appends a named payload section.
    pub fn push_section(&mut self, name: impl Into<String>, payload: Vec<u8>) {
        self.sections.push((name.into(), payload));
    }

    /// The payload of the first section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, p)| p.as_slice())
    }

    /// Serializes the artifact: magic, version, metadata, sections, and the
    /// trailing FNV-1a checksum over everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, self.version);
        put_str(&mut out, &self.meta_json);
        put_u32(&mut out, self.sections.len() as u32);
        for (name, payload) in &self.sections {
            put_str(&mut out, name);
            put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(payload);
        }
        let sum = fnv1a64(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Parses and validates an artifact byte stream.
    ///
    /// Validation order: magic, then declared version, then the trailing
    /// checksum over the whole content, then structure — so a wrong-format
    /// file reports [`ArtifactError::BadMagic`], an incompatible one
    /// [`ArtifactError::UnsupportedVersion`], and a bit-flipped one
    /// [`ArtifactError::ChecksumMismatch`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ArtifactError`] encountered.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u32()?;
        if !(FORMAT_V1..=FORMAT_VERSION).contains(&version) {
            return Err(ArtifactError::UnsupportedVersion { found: version });
        }
        if bytes.len() < 8 + 8 {
            return Err(ArtifactError::Truncated { needed: 8, available: bytes.len() - 8 });
        }
        let content = &bytes[..bytes.len() - 8];
        let found = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        let expected = fnv1a64(content);
        if found != expected {
            return Err(ArtifactError::ChecksumMismatch { expected, found });
        }

        let mut r = Reader::new(content);
        r.take(8)?; // magic + version, already validated
        let meta_json = r.str()?;
        let n_sections = r.u32()? as usize;
        let mut sections = Vec::with_capacity(n_sections.min(64));
        for _ in 0..n_sections {
            let name = r.str()?;
            let len = r.u32()? as usize;
            let payload = r.take(len)?.to_vec();
            sections.push((name, payload));
        }
        if r.rest() != 0 {
            return Err(ArtifactError::Corrupt(format!(
                "{} trailing byte(s) after the last section",
                r.rest()
            )));
        }
        Ok(Artifact { version, meta_json, sections })
    }
}

fn kind_tag(kind: ModelKind) -> u8 {
    ModelKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("every ModelKind is in ModelKind::ALL") as u8
}

fn kind_from_tag(tag: u8) -> Result<ModelKind, ArtifactError> {
    ModelKind::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| ArtifactError::Corrupt(format!("unknown model kind tag {tag}")))
}

/// Serializes one [`PredictionModel`] as a section payload: architecture
/// descriptor (kind tag, config, head names) followed by every parameter as
/// name, shape, and raw little-endian `f32` data in registration order.
pub fn encode_model(model: &PredictionModel) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(kind_tag(model.kind()));
    let cfg = model.config();
    put_u32(&mut out, cfg.hidden as u32);
    put_u32(&mut out, cfg.gnn_layers as u32);
    put_u32(&mut out, cfg.mlp_layers as u32);
    put_u64(&mut out, cfg.seed);
    put_u32(&mut out, model.head_names().len() as u32);
    for name in model.head_names() {
        put_str(&mut out, name);
    }
    let store = model.store();
    put_u32(&mut out, store.len() as u32);
    for id in store.ids() {
        let m = store.value(id);
        put_str(&mut out, store.name(id));
        let (rows, cols) = m.shape();
        put_u32(&mut out, rows as u32);
        put_u32(&mut out, cols as u32);
        for &w in m.as_slice() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out
}

/// Rebuilds a [`PredictionModel`] from an [`encode_model`] payload.
///
/// The architecture is re-created with [`PredictionModel::new`] (which
/// registers parameters in a deterministic order) and every parameter is
/// overwritten with the stored bits after a name/shape cross-check, so the
/// result is bit-for-bit the model that was encoded.
///
/// # Errors
///
/// Returns [`ArtifactError::Truncated`] on underrun and
/// [`ArtifactError::Corrupt`] when the stored parameter list does not match
/// the rebuilt architecture.
pub fn decode_model(payload: &[u8]) -> Result<PredictionModel, ArtifactError> {
    let mut r = Reader::new(payload);
    let kind = kind_from_tag(r.u8()?)?;
    let config = ModelConfig {
        hidden: r.u32()? as usize,
        gnn_layers: r.u32()? as usize,
        mlp_layers: r.u32()? as usize,
        seed: r.u64()?,
    };
    let n_heads = r.u32()? as usize;
    if n_heads == 0 || n_heads > 64 {
        return Err(ArtifactError::Corrupt(format!("implausible head count {n_heads}")));
    }
    let mut head_names = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        head_names.push(r.str()?);
    }
    let head_refs: Vec<&str> = head_names.iter().map(String::as_str).collect();
    let mut model = PredictionModel::new(kind, config, &head_refs);

    let n_params = r.u32()? as usize;
    if n_params != model.store().len() {
        return Err(ArtifactError::Corrupt(format!(
            "artifact stores {} parameter(s) but the architecture has {}",
            n_params,
            model.store().len()
        )));
    }
    let ids: Vec<_> = model.store().ids().collect();
    for id in ids {
        let name = r.str()?;
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        {
            let store = model.store();
            if store.name(id) != name {
                return Err(ArtifactError::Corrupt(format!(
                    "parameter order mismatch: expected `{}`, found `{name}`",
                    store.name(id)
                )));
            }
            if store.value(id).shape() != (rows, cols) {
                return Err(ArtifactError::Corrupt(format!(
                    "parameter `{name}` has shape {:?} but the artifact stores ({rows}, {cols})",
                    store.value(id).shape()
                )));
            }
        }
        let raw = r.take(rows * cols * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        *model.store_mut().value_mut(id) = Matrix::from_vec(rows, cols, data);
    }
    if r.rest() != 0 {
        return Err(ArtifactError::Corrupt(format!(
            "{} trailing byte(s) after the last parameter",
            r.rest()
        )));
    }
    Ok(model)
}

/// Per-parameter payload tags of the quantized model codec.
const PARAM_F32: u8 = 0;
const PARAM_I8: u8 = 1;

/// Serializes a [`PredictionModel`] together with its calibrated
/// [`QuantParamSet`] as a **version-2** section payload.
///
/// Layout matches [`encode_model`] — architecture descriptor, then every
/// parameter in registration order — except each parameter carries a tag
/// byte after its shape: [`PARAM_F32`] (`0`) followed by raw little-endian
/// `f32` bits for uncalibrated parameters (biases), or [`PARAM_I8`] (`1`)
/// followed by the `f32` scale and `rows*cols` raw `i8` bytes for quantized
/// weights. Quantized weights are ~4x smaller on disk than their f32 form.
///
/// Sections produced by this function must live in a [`FORMAT_V2`] envelope
/// (see [`Artifact::with_version`]) so pre-quantization builds reject the
/// file instead of misparsing it.
pub fn encode_model_quant(model: &PredictionModel, quant: &QuantParamSet) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(kind_tag(model.kind()));
    let cfg = model.config();
    put_u32(&mut out, cfg.hidden as u32);
    put_u32(&mut out, cfg.gnn_layers as u32);
    put_u32(&mut out, cfg.mlp_layers as u32);
    put_u64(&mut out, cfg.seed);
    put_u32(&mut out, model.head_names().len() as u32);
    for name in model.head_names() {
        put_str(&mut out, name);
    }
    let store = model.store();
    put_u32(&mut out, store.len() as u32);
    for id in store.ids() {
        let m = store.value(id);
        put_str(&mut out, store.name(id));
        let (rows, cols) = m.shape();
        put_u32(&mut out, rows as u32);
        put_u32(&mut out, cols as u32);
        match quant.get(id) {
            Some(q) => {
                out.push(PARAM_I8);
                out.extend_from_slice(&q.scale().to_le_bytes());
                out.extend(q.data().iter().map(|&v| v as u8));
            }
            None => {
                out.push(PARAM_F32);
                for &w in m.as_slice() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Rebuilds a model and its [`QuantParamSet`] from an
/// [`encode_model_quant`] payload.
///
/// The rebuilt [`PredictionModel`]'s f32 store holds the *dequantized*
/// weights for int8 parameters (the exact f32 originals are not stored),
/// so its plain `forward` approximates the source model while
/// `forward_quant` with the returned set reproduces the quantized pipeline
/// bit-for-bit.
///
/// # Errors
///
/// Returns [`ArtifactError::Truncated`] on underrun and
/// [`ArtifactError::Corrupt`] on architecture mismatch or an unknown
/// parameter tag.
pub fn decode_model_quant(
    payload: &[u8],
) -> Result<(PredictionModel, QuantParamSet), ArtifactError> {
    let mut r = Reader::new(payload);
    let kind = kind_from_tag(r.u8()?)?;
    let config = ModelConfig {
        hidden: r.u32()? as usize,
        gnn_layers: r.u32()? as usize,
        mlp_layers: r.u32()? as usize,
        seed: r.u64()?,
    };
    let n_heads = r.u32()? as usize;
    if n_heads == 0 || n_heads > 64 {
        return Err(ArtifactError::Corrupt(format!("implausible head count {n_heads}")));
    }
    let mut head_names = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        head_names.push(r.str()?);
    }
    let head_refs: Vec<&str> = head_names.iter().map(String::as_str).collect();
    let mut model = PredictionModel::new(kind, config, &head_refs);

    let n_params = r.u32()? as usize;
    if n_params != model.store().len() {
        return Err(ArtifactError::Corrupt(format!(
            "artifact stores {} parameter(s) but the architecture has {}",
            n_params,
            model.store().len()
        )));
    }
    let mut quant = QuantParamSet::new();
    let ids: Vec<_> = model.store().ids().collect();
    for id in ids {
        let name = r.str()?;
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        {
            let store = model.store();
            if store.name(id) != name {
                return Err(ArtifactError::Corrupt(format!(
                    "parameter order mismatch: expected `{}`, found `{name}`",
                    store.name(id)
                )));
            }
            if store.value(id).shape() != (rows, cols) {
                return Err(ArtifactError::Corrupt(format!(
                    "parameter `{name}` has shape {:?} but the artifact stores ({rows}, {cols})",
                    store.value(id).shape()
                )));
            }
        }
        match r.u8()? {
            PARAM_F32 => {
                let raw = r.take(rows * cols * 4)?;
                let data: Vec<f32> = raw
                    .chunks_exact(4)
                    .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                    .collect();
                *model.store_mut().value_mut(id) = Matrix::from_vec(rows, cols, data);
            }
            PARAM_I8 => {
                let sb = r.take(4)?;
                let scale = f32::from_le_bytes([sb[0], sb[1], sb[2], sb[3]]);
                if !(scale.is_finite() && scale > 0.0) {
                    return Err(ArtifactError::Corrupt(format!(
                        "parameter `{name}` has non-finite or non-positive scale {scale}"
                    )));
                }
                let raw = r.take(rows * cols)?;
                let data: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
                let q = QuantMatrix::from_parts(rows, cols, scale, data);
                *model.store_mut().value_mut(id) = q.dequantize();
                quant.insert(id, q);
            }
            tag => {
                return Err(ArtifactError::Corrupt(format!(
                    "parameter `{name}` has unknown tag {tag}"
                )));
            }
        }
    }
    if r.rest() != 0 {
        return Err(ArtifactError::Corrupt(format!(
            "{} trailing byte(s) after the last parameter",
            r.rest()
        )));
    }
    Ok((model, quant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::GraphInput;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use proggraph::build_graph_bidirectional;

    fn sample_model(kind: ModelKind) -> PredictionModel {
        PredictionModel::new(kind, ModelConfig::small(), &["latency", "dsp"])
    }

    #[test]
    fn model_round_trip_is_bit_identical() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let p = space.default_point();
        let input = GraphInput::from_graph(&graph, Some(&p));

        for kind in ModelKind::ALL {
            let model = sample_model(kind);
            let back = decode_model(&encode_model(&model)).expect("decodes");
            assert_eq!(back.kind(), model.kind());
            assert_eq!(back.head_names(), model.head_names());
            let a = model.forward_single(&input, &p).values();
            let b = back.forward_single(&input, &p).values();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn envelope_round_trips() {
        let mut art = Artifact::new("{\"schema\":1}");
        art.push_section("weights", vec![1, 2, 3]);
        art.push_section("extra", vec![]);
        let back = Artifact::from_bytes(&art.to_bytes()).expect("parses");
        assert_eq!(back, art);
        assert_eq!(back.section("weights"), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.section("missing"), None);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = Artifact::new("{}").to_bytes();
        bytes[0] = b'X';
        assert_eq!(Artifact::from_bytes(&bytes), Err(ArtifactError::BadMagic));
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = Artifact::new("{}").to_bytes();
        bytes[4] = 99; // version field, checked before the checksum
        assert_eq!(
            Artifact::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn plain_artifacts_stay_version_1_on_the_wire() {
        // Back-compat: f32-only artifacts must keep encoding as v1 so
        // pre-quantization builds can still read them.
        let bytes = Artifact::new("{}").to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), FORMAT_V1);
    }

    #[test]
    fn v2_envelope_round_trips_and_v1_readers_would_reject_it() {
        let mut art = Artifact::new("{\"quant\":true}").with_version(FORMAT_V2);
        art.push_section("model_q", vec![9, 9, 9]);
        let bytes = art.to_bytes();
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), FORMAT_V2);
        let back = Artifact::from_bytes(&bytes).expect("this build reads v2");
        assert_eq!(back, art);
        // A version-1-only reader checks `version != 1` — replicate that
        // check to pin the rejection contract for old builds.
        let found = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        assert_ne!(found, FORMAT_V1, "old readers must see an unknown version");
    }

    #[test]
    #[should_panic(expected = "cannot write envelope version")]
    fn writing_a_future_version_is_rejected() {
        let _ = Artifact::new("{}").with_version(FORMAT_VERSION + 1);
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let mut art = Artifact::new("{\"schema\":1}");
        art.push_section("weights", vec![7; 100]);
        let mut bytes = art.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match Artifact::from_bytes(&bytes) {
            Err(ArtifactError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut art = Artifact::new("{\"schema\":1}");
        art.push_section("weights", vec![7; 100]);
        let bytes = art.to_bytes();
        for cut in [0, 3, 7, 10, bytes.len() - 1] {
            match Artifact::from_bytes(&bytes[..cut]) {
                Err(ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }) => {}
                other => panic!("cut at {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn model_payload_shape_mismatch_is_corrupt() {
        let model = sample_model(ModelKind::MlpPragma);
        let mut payload = encode_model(&model);
        // Grow the declared hidden width: the rebuilt architecture no longer
        // matches the stored parameter shapes.
        payload[1..5].copy_from_slice(&64u32.to_le_bytes());
        match decode_model(&payload) {
            Err(ArtifactError::Corrupt(_) | ArtifactError::Truncated { .. }) => {}
            other => panic!("expected corrupt payload, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_tag_is_corrupt() {
        let model = sample_model(ModelKind::Gcn);
        let mut payload = encode_model(&model);
        payload[0] = 200;
        assert!(matches!(decode_model(&payload), Err(ArtifactError::Corrupt(_))));
    }

    #[test]
    fn quant_model_round_trip_reproduces_quant_forward_bitwise() {
        use std::sync::Arc;
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let p = space.default_point();
        let input = GraphInput::from_graph(&graph, Some(&p));
        let batch = crate::input::GraphBatch::single(&input, &p);

        let model = sample_model(ModelKind::Full);
        let qs = model.quantize();
        let payload = encode_model_quant(&model, &qs);
        let f32_payload = encode_model(&model);
        assert!(
            payload.len() < f32_payload.len() * 2 / 3,
            "quant payload {} not meaningfully smaller than f32 {}",
            payload.len(),
            f32_payload.len()
        );

        let (back, qs_back) = decode_model_quant(&payload).expect("decodes");
        assert_eq!(back.kind(), model.kind());
        assert_eq!(qs_back.len(), qs.len());
        let a = model.forward_quant(&batch, &Arc::new(qs)).values();
        let b = back.forward_quant(&batch, &Arc::new(qs_back)).values();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits(), "quant pipeline must round-trip exactly");
        }
    }

    #[test]
    fn quant_payload_unknown_tag_is_corrupt() {
        let model = sample_model(ModelKind::MlpPragma);
        let qs = model.quantize();
        let mut payload = encode_model_quant(&model, &qs);
        // The first parameter's tag byte sits right after the architecture
        // header + its name/shape; find it by decoding until it breaks.
        // Simpler: flip every byte that equals a valid tag until decode
        // reports an unknown-tag corruption.
        let mut seen_unknown = false;
        for i in 0..payload.len() {
            if payload[i] == PARAM_I8 {
                let orig = payload[i];
                payload[i] = 7;
                if let Err(ArtifactError::Corrupt(msg)) = decode_model_quant(&payload) {
                    if msg.contains("unknown tag") {
                        seen_unknown = true;
                        payload[i] = orig;
                        break;
                    }
                }
                payload[i] = orig;
            }
        }
        assert!(seen_unknown, "corrupting a tag byte must surface a typed error");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Reference values of the canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
