//! # gdse-gnn
//!
//! Graph neural network layers and the M1-M7 predictive models of GNN-DSE
//! (DAC 2022), built on [`gdse_tensor`]'s tape autodiff.
//!
//! The full model (M7) is a stack of [`layers::transformer::TransformerConv`]
//! layers with ELU activations, a Jumping-Knowledge max combination, a
//! node-attention graph readout, and per-objective MLP prediction heads —
//! exactly the architecture of Fig. 4.
//!
//! ## Quickstart
//!
//! ```
//! use design_space::DesignSpace;
//! use gdse_gnn::{GraphInput, ModelConfig, ModelKind, PredictionModel};
//! use hls_ir::kernels;
//! use proggraph::build_graph_bidirectional;
//!
//! let kernel = kernels::gemm_ncubed();
//! let space = DesignSpace::from_kernel(&kernel);
//! let graph = build_graph_bidirectional(&kernel, &space);
//! let point = space.default_point();
//! let input = GraphInput::from_graph(&graph, Some(&point));
//!
//! let model = PredictionModel::new(ModelKind::Full, ModelConfig::small(), &["latency"]);
//! let out = model.forward_single(&input, &point);
//! assert!(out.values()[0].is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
mod encoder;
mod input;
pub mod layers;
mod model;

pub use artifact::{Artifact, ArtifactError};
pub use encoder::{ConvKind, EncoderOutput, GnnEncoder};
pub use input::{GraphBatch, GraphInput};
pub use model::{
    encode_pragmas, ModelConfig, ModelKind, ModelOutput, PredictionModel, MAX_SLOTS, SLOT_FEATS,
};
