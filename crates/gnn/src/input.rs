//! Model inputs: program graphs lowered to feature matrices + edge lists,
//! single or batched as a disjoint union.

use design_space::DesignPoint;
use gdse_tensor::Matrix;
use proggraph::{edge_features, node_features, ProgramGraph};

/// One graph lowered to the tensors a GNN consumes.
///
/// Built once per (kernel, design point); the node features of different
/// design points of the same kernel differ only in the pragma rows.
#[derive(Debug, Clone)]
pub struct GraphInput {
    /// Node features `[N, NODE_FEATS]`.
    pub x: Matrix,
    /// Edge features `[E, EDGE_FEATS]`.
    pub edge_attr: Matrix,
    /// Edge sources.
    pub src: Vec<usize>,
    /// Edge destinations.
    pub dst: Vec<usize>,
    /// Indices of pragma nodes (for attention inspection).
    pub pragma_nodes: Vec<usize>,
}

impl GraphInput {
    /// Lowers a program graph (optionally filled with a design point).
    pub fn from_graph(graph: &ProgramGraph, point: Option<&DesignPoint>) -> Self {
        Self {
            x: node_features(graph, point),
            edge_attr: edge_features(graph),
            src: graph.edge_sources(),
            dst: graph.edge_destinations(),
            pragma_nodes: graph.pragma_nodes().iter().map(|&(i, _)| i).collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }
}

/// A mini-batch: the disjoint union of several lowered graphs.
///
/// Batching turns many small matmuls into a few big ones — the difference
/// between hours and minutes for CPU training — while segment-aware pooling
/// keeps every graph's readout separate.
#[derive(Debug, Clone)]
pub struct GraphBatch {
    /// Stacked node features `[N_total, NODE_FEATS]`.
    pub x: Matrix,
    /// Stacked edge features `[E_total, EDGE_FEATS]`.
    pub edge_attr: Matrix,
    /// Global edge sources.
    pub src: Vec<usize>,
    /// Global edge destinations.
    pub dst: Vec<usize>,
    /// Graph id of each node.
    pub node_graph: Vec<usize>,
    /// Number of graphs in the batch.
    pub num_graphs: usize,
    /// Per-sample pragma encodings `[B, MAX_SLOTS * SLOT_FEATS]` (M1 input).
    pub pragma_x: Matrix,
}

impl GraphBatch {
    /// Builds a batch from `(lowered graph, design point)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn new(items: &[(&GraphInput, &DesignPoint)]) -> Self {
        assert!(!items.is_empty(), "empty batch");
        let mut node_offset = 0usize;
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut node_graph = Vec::new();
        let mut xs: Vec<&Matrix> = Vec::with_capacity(items.len());
        let mut es: Vec<&Matrix> = Vec::with_capacity(items.len());
        let mut pragma_rows: Vec<Matrix> = Vec::with_capacity(items.len());
        for (gi, (input, point)) in items.iter().enumerate() {
            xs.push(&input.x);
            es.push(&input.edge_attr);
            src.extend(input.src.iter().map(|&s| s + node_offset));
            dst.extend(input.dst.iter().map(|&d| d + node_offset));
            node_graph.extend(std::iter::repeat_n(gi, input.num_nodes()));
            node_offset += input.num_nodes();
            pragma_rows.push(crate::model::encode_pragmas(point));
        }
        let pragma_refs: Vec<&Matrix> = pragma_rows.iter().collect();
        Self {
            x: Matrix::vcat(&xs),
            edge_attr: Matrix::vcat(&es),
            src,
            dst,
            node_graph,
            num_graphs: items.len(),
            pragma_x: Matrix::vcat(&pragma_refs),
        }
    }

    /// Batch of one sample.
    pub fn single(input: &GraphInput, point: &DesignPoint) -> Self {
        Self::new(&[(input, point)])
    }

    /// Total number of nodes across the batch.
    pub fn num_nodes(&self) -> usize {
        self.x.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use proggraph::build_graph_bidirectional;

    #[test]
    fn lowering_shapes_are_consistent() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let g = build_graph_bidirectional(&k, &space);
        let input = GraphInput::from_graph(&g, Some(&space.default_point()));
        assert_eq!(input.num_nodes(), g.num_nodes());
        assert_eq!(input.num_edges(), g.num_edges());
        assert_eq!(input.edge_attr.rows(), input.num_edges());
        assert_eq!(input.pragma_nodes.len(), space.num_slots());
    }

    #[test]
    fn batch_offsets_edges_and_segments() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let g = build_graph_bidirectional(&k, &space);
        let p0 = space.default_point();
        let p1 = space.point_at(space.size() - 1);
        let i0 = GraphInput::from_graph(&g, Some(&p0));
        let i1 = GraphInput::from_graph(&g, Some(&p1));
        let batch = GraphBatch::new(&[(&i0, &p0), (&i1, &p1)]);
        let n = g.num_nodes();
        assert_eq!(batch.num_nodes(), 2 * n);
        assert_eq!(batch.num_graphs, 2);
        assert_eq!(batch.node_graph[0], 0);
        assert_eq!(batch.node_graph[2 * n - 1], 1);
        // Edges of the second graph point into the second node block.
        assert!(batch.src[g.num_edges()..].iter().all(|&s| s >= n));
        assert_eq!(batch.pragma_x.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = GraphBatch::new(&[]);
    }
}
