//! Graph Convolutional Network layer (eq. 1 of the paper; Kipf & Welling).

use gdse_tensor::{Graph, Init, Matrix, NodeId, ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// GCN convolution: `h' = sigma(W * sum_j 1/sqrt(d_i d_j) h_j)` over the
/// neighborhood including a self-loop.
///
/// Edge features are ignored — one of the drawbacks motivating
/// TransformerConv in §4.3.1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcnConv {
    w: ParamId,
    b: ParamId,
}

impl GcnConv {
    /// Registers a GCN layer mapping `in_dim -> out_dim`.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: store.add(format!("{name}.weight"), in_dim, out_dim, Init::XavierUniform),
            b: store.add(format!("{name}.bias"), 1, out_dim, Init::Zeros),
        }
    }

    /// Forward pass over an edge list (activation applied by the caller).
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        src: &[usize],
        dst: &[usize],
    ) -> NodeId {
        let n = g.value(x).rows();
        // Self-loops.
        let mut s: Vec<usize> = src.to_vec();
        let mut d: Vec<usize> = dst.to_vec();
        s.extend(0..n);
        d.extend(0..n);

        // Symmetric normalization from in-degrees (with self-loops).
        let mut deg = vec![0.0f32; n];
        for &i in &d {
            deg[i] += 1.0;
        }
        let coeffs: Vec<f32> = s
            .iter()
            .zip(&d)
            .map(|(&si, &di)| 1.0 / (deg[si] * deg[di]).sqrt())
            .collect();
        let coeff_col = g.input(Matrix::col_vector(&coeffs));

        let msgs = g.gather_rows(x, &s);
        let weighted = g.mul_col_broadcast(msgs, coeff_col);
        let agg = g.scatter_add_rows(weighted, &d, n);
        let wv = g.param(store, self.w);
        let bv = g.param(store, self.b);
        let lin = g.matmul(agg, wv);
        g.add_bias(lin, bv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_finite() {
        let mut store = ParamStore::new(1);
        let conv = GcnConv::new(&mut store, "gcn0", 4, 8);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.1));
        let y = conv.forward(&mut g, &store, x, &[0, 1], &[1, 2]);
        assert_eq!(g.value(y).shape(), (3, 8));
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn isolated_node_still_gets_self_message() {
        let mut store = ParamStore::new(1);
        let conv = GcnConv::new(&mut store, "gcn0", 2, 2);
        let mut g = Graph::new();
        // Node 2 has no edges; with self-loops its output is W x_2 (+b).
        let x = g.input(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[5.0, -3.0]]));
        let y = conv.forward(&mut g, &store, x, &[0], &[1]);
        let row2 = g.value(y).row(2).to_vec();
        assert!(row2.iter().any(|&v| v != 0.0), "self-loop must propagate node 2");
    }

    #[test]
    fn messages_flow_along_edges() {
        let mut store = ParamStore::new(2);
        let conv = GcnConv::new(&mut store, "gcn0", 2, 2);
        // Two graphs identical except node 0's features; node 1 receives
        // from node 0, so its output must differ.
        let make = |v: f32| {
            let mut g = Graph::new();
            let x = g.input(Matrix::from_rows(&[&[v, v], &[1.0, 1.0]]));
            let y = conv.forward(&mut g, &store, x, &[0], &[1]);
            g.value(y).row(1).to_vec()
        };
        assert_ne!(make(0.0), make(9.0));
    }
}
