//! TransformerConv layer (eq. 8 of the paper; Shi et al. 2021) with edge
//! embeddings and a gated residual connection.

use gdse_tensor::{Graph, Init, Matrix, NodeId, ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// Transformer-style graph convolution:
///
/// `alpha_ij = softmax((W1 h_i)^T (W2 h_j + W3 e_ij) / sqrt(D))`
///
/// with messages `W2 h_j + W3 e_ij` aggregated by attention, and a gated
/// residual `out = beta * (W_r h_i) + (1 - beta) * aggregated` where
/// `beta = sigmoid(W_g [aggr || root || aggr - root])` — the mechanism the
/// paper credits with preventing over-smoothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerConv {
    w_query: ParamId,
    w_key: ParamId,
    w_value: ParamId,
    w_edge: ParamId,
    w_root: ParamId,
    w_gate: ParamId,
    b: ParamId,
    out_dim: usize,
}

impl TransformerConv {
    /// Registers a TransformerConv layer mapping `in_dim -> out_dim` with
    /// `edge_dim`-dimensional edge features.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        edge_dim: usize,
    ) -> Self {
        Self {
            w_query: store.add(format!("{name}.lin_query"), in_dim, out_dim, Init::XavierUniform),
            w_key: store.add(format!("{name}.lin_key"), in_dim, out_dim, Init::XavierUniform),
            w_value: store.add(format!("{name}.lin_value"), in_dim, out_dim, Init::XavierUniform),
            w_edge: store.add(format!("{name}.lin_edge"), edge_dim, out_dim, Init::XavierUniform),
            w_root: store.add(format!("{name}.lin_skip"), in_dim, out_dim, Init::XavierUniform),
            w_gate: store.add(format!("{name}.lin_beta"), 3 * out_dim, 1, Init::XavierUniform),
            b: store.add(format!("{name}.bias"), 1, out_dim, Init::Zeros),
            out_dim,
        }
    }

    /// Forward pass with edge attributes (activation applied by the caller).
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        edge_attr: NodeId,
        src: &[usize],
        dst: &[usize],
    ) -> NodeId {
        let n = g.value(x).rows();
        let wq = g.param(store, self.w_query);
        let wk = g.param(store, self.w_key);
        let wv = g.param(store, self.w_value);
        let we = g.param(store, self.w_edge);
        let wr = g.param(store, self.w_root);

        let q = g.matmul(x, wq); // [N, D]
        let k = g.matmul(x, wk); // [N, D]
        let v = g.matmul(x, wv); // [N, D]
        let e = g.matmul(edge_attr, we); // [E, D]

        let q_e = g.gather_rows(q, dst); // query of the receiving node
        let k_src = g.gather_rows(k, src);
        let k_e = g.add(k_src, e); // W2 h_j + W3 e_ij

        let dots = g.row_dot(q_e, k_e); // [E, 1]
        let scaled = g.scale(dots, 1.0 / (self.out_dim as f32).sqrt());
        let alpha = g.segment_softmax(scaled, dst);

        let v_src = g.gather_rows(v, src);
        let msg = g.add(v_src, e); // value also carries the edge embedding
        let weighted = g.mul_col_broadcast(msg, alpha);
        let aggr = g.scatter_add_rows(weighted, dst, n);

        // Gated residual.
        let root = g.matmul(x, wr);
        let diff = g.sub(aggr, root);
        let gate_in = g.concat_cols(&[aggr, root, diff]);
        let wg = g.param(store, self.w_gate);
        let beta_logit = g.matmul(gate_in, wg); // [N, 1]
        let beta = g.sigmoid(beta_logit);
        let gated_root = g.mul_col_broadcast(root, beta);
        let ones = g.input(Matrix::filled(n, 1, 1.0));
        let inv_beta = g.sub(ones, beta);
        let gated_aggr = g.mul_col_broadcast(aggr, inv_beta);
        let out = g.add(gated_root, gated_aggr);
        let bv = g.param(store, self.b);
        g.add_bias(out, bv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_forward(edge_val: f32, store_seed: u64) -> Vec<f32> {
        let mut store = ParamStore::new(store_seed);
        let conv = TransformerConv::new(&mut store, "t0", 4, 8, 3);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(3, 4, |i, j| ((i + 2 * j) % 3) as f32 * 0.4));
        let e = g.input(Matrix::from_fn(2, 3, |_, j| edge_val * (j as f32 + 1.0)));
        let y = conv.forward(&mut g, &store, x, e, &[0, 1], &[2, 2]);
        g.value(y).row(2).to_vec()
    }

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new(7);
        let conv = TransformerConv::new(&mut store, "t0", 4, 8, 3);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(5, 4, |i, j| (i * j) as f32 * 0.1));
        let e = g.input(Matrix::zeros(4, 3));
        let y = conv.forward(&mut g, &store, x, e, &[0, 1, 2, 3], &[1, 2, 3, 4]);
        assert_eq!(g.value(y).shape(), (5, 8));
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn edge_features_influence_output() {
        // Unlike GCN/GAT, edge embeddings must matter (the paper's reason
        // for choosing TransformerConv).
        assert_ne!(toy_forward(0.0, 7), toy_forward(2.0, 7));
    }

    #[test]
    fn nodes_without_incoming_edges_keep_root_path() {
        let mut store = ParamStore::new(8);
        let conv = TransformerConv::new(&mut store, "t0", 2, 4, 2);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, -1.0], &[0.3, 0.7]]));
        let e = g.input(Matrix::from_rows(&[&[1.0, 0.0]]));
        // Only node 1 receives a message; node 0 must still produce output
        // through the gated residual (root) path.
        let y = conv.forward(&mut g, &store, x, e, &[0], &[1]);
        assert!(g.value(y).row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut store = ParamStore::new(9);
        let conv = TransformerConv::new(&mut store, "t0", 3, 4, 2);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(4, 3, |i, j| (i as f32 * 0.3) - (j as f32 * 0.2)));
        let e = g.input(Matrix::from_fn(4, 2, |i, _| i as f32 * 0.5));
        // Destinations with several in-edges, so the attention softmax is
        // non-degenerate and the query weights receive gradient.
        let y = conv.forward(&mut g, &store, x, e, &[0, 1, 2, 0], &[3, 3, 3, 2]);
        let s = g.sum_rows(y);
        let loss = g.mse_loss(s, Matrix::filled(1, 4, 1.0));
        let mut grads = store.zero_grads();
        g.backward(loss, &mut grads);
        for id in store.ids() {
            assert!(
                grads.grad(id).frobenius_norm() > 0.0,
                "no gradient for {}",
                store.name(id)
            );
        }
    }
}
