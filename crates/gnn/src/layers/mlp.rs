//! Multi-layer perceptron.

use gdse_tensor::{Activation, Graph, Init, NodeId, ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// A stack of linear layers with ReLU between them (none after the last).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
}

impl Mlp {
    /// Registers an MLP with the given layer widths, e.g. `[64, 32, 1]` for
    /// a two-layer head.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(store: &mut ParamStore, name: &str, dims: &[usize]) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output dims");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            weights.push(store.add(format!("{name}.w{i}"), w[0], w[1], Init::XavierUniform));
            biases.push(store.add(format!("{name}.b{i}"), 1, w[1], Init::Zeros));
        }
        Self { weights, biases }
    }

    /// Applies the MLP row-wise to `x: [N, dims[0]]`.
    ///
    /// Each layer is one fused [`Graph::linear`] call (`act(x*W + b)`), which
    /// is bit-identical to the `matmul` / `add_bias` / `relu` chain it
    /// replaces but materializes no intermediate tensors.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let mut h = x;
        let last = self.weights.len() - 1;
        for (i, (&w, &b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let wv = g.param(store, w);
            let bv = g.param(store, b);
            let act = if i < last { Activation::Relu } else { Activation::None };
            h = g.linear(h, wv, bv, act);
        }
        h
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdse_tensor::{Adam, Matrix};

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new(0);
        let mlp = Mlp::new(&mut store, "head", &[8, 16, 1]);
        assert_eq!(mlp.num_layers(), 2);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(5, 8));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (5, 1));
    }

    #[test]
    fn mlp_learns_xor_like_function() {
        let mut store = ParamStore::new(3);
        let mlp = Mlp::new(&mut store, "m", &[2, 16, 1]);
        let mut adam = Adam::new(0.02);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let t = Matrix::col_vector(&[0.0, 1.0, 1.0, 0.0]);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = mlp.forward(&mut g, &store, xv);
            let loss = g.mse_loss(y, t.clone());
            final_loss = g.value(loss).scalar();
            let mut grads = store.zero_grads();
            g.backward(loss, &mut grads);
            adam.step(&mut store, &grads);
        }
        assert!(final_loss < 0.05, "XOR not learned: loss {final_loss}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn single_dim_rejected() {
        let mut store = ParamStore::new(0);
        let _ = Mlp::new(&mut store, "bad", &[4]);
    }
}
