//! Graph-level readout: sum pooling and the node-attention pooling of
//! eq. 10, both over batched (disjoint-union) graphs.

use crate::layers::mlp::Mlp;
use gdse_tensor::{Graph, NodeId, ParamStore};
use serde::{Deserialize, Serialize};

/// Sum of node embeddings per graph: `[N_total, D] -> [B, D]` where
/// `node_graph[i]` is the graph each node belongs to.
pub fn sum_pool(
    g: &mut Graph,
    node_embs: NodeId,
    node_graph: &[usize],
    num_graphs: usize,
) -> NodeId {
    g.scatter_add_rows(node_embs, node_graph, num_graphs)
}

/// Node-attention pooling (eq. 10):
/// `h_G = sum_i softmax(MLP1(h_i)) * MLP2(h_i)`, with the softmax taken
/// within each graph of the batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttentionPool {
    score_mlp: Mlp,
    value_mlp: Mlp,
}

/// Result of attention pooling: per-graph embeddings plus the per-node
/// attention scores (used for Fig. 5).
#[derive(Debug, Clone, Copy)]
pub struct PooledGraph {
    /// Graph-level embeddings `[B, D]`.
    pub graph_emb: NodeId,
    /// Per-node attention `[N_total, 1]`, summing to 1 within each graph.
    pub attention: NodeId,
}

impl AttentionPool {
    /// Registers an attention pool over `dim`-dimensional node embeddings.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        Self {
            score_mlp: Mlp::new(store, &format!("{name}.score"), &[dim, dim / 2, 1]),
            value_mlp: Mlp::new(store, &format!("{name}.value"), &[dim, dim]),
        }
    }

    /// Pools node embeddings `[N_total, D]` into per-graph embeddings
    /// `[B, D]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        node_embs: NodeId,
        node_graph: &[usize],
        num_graphs: usize,
    ) -> PooledGraph {
        let scores = self.score_mlp.forward(g, store, node_embs); // [N, 1]
        let attention = g.segment_softmax(scores, node_graph);
        let values = self.value_mlp.forward(g, store, node_embs); // [N, D]
        let weighted = g.mul_col_broadcast(values, attention);
        let graph_emb = g.scatter_add_rows(weighted, node_graph, num_graphs);
        PooledGraph { graph_emb, attention }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdse_tensor::Matrix;

    #[test]
    fn attention_sums_to_one_per_graph() {
        let mut store = ParamStore::new(11);
        let pool = AttentionPool::new(&mut store, "pool", 8);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(6, 8, |i, j| ((i * j) % 4) as f32 * 0.25));
        let seg = [0, 0, 0, 1, 1, 1];
        let out = pool.forward(&mut g, &store, x, &seg, 2);
        assert_eq!(g.value(out.graph_emb).shape(), (2, 8));
        let att = g.value(out.attention);
        let s0: f32 = (0..3).map(|i| att.get(i, 0)).sum();
        let s1: f32 = (3..6).map(|i| att.get(i, 0)).sum();
        assert!((s0 - 1.0).abs() < 1e-5);
        assert!((s1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sum_pool_segments_rows() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[10.0, 20.0]]));
        let s = sum_pool(&mut g, x, &[0, 0, 1], 2);
        assert_eq!(g.value(s), &Matrix::from_rows(&[&[4.0, 6.0], &[10.0, 20.0]]));
    }

    #[test]
    fn attention_pooling_differs_from_sum() {
        let mut store = ParamStore::new(12);
        let pool = AttentionPool::new(&mut store, "pool", 4);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(3, 4, |i, j| (i + j) as f32));
        let seg = [0, 0, 0];
        let att = pool.forward(&mut g, &store, x, &seg, 1);
        let sum = sum_pool(&mut g, x, &seg, 1);
        assert_ne!(g.value(att.graph_emb), g.value(sum));
    }
}
