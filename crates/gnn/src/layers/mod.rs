//! Neural building blocks: graph convolutions, MLP, pooling.

pub mod gat;
pub mod gcn;
pub mod mlp;
pub mod pool;
pub mod transformer;
