//! Graph Attention Network layer (eqs. 2-3 of the paper; Veličković et al.).

use gdse_tensor::{Graph, Init, NodeId, ParamId, ParamStore};
use serde::{Deserialize, Serialize};

/// Negative slope of the LeakyReLU in the attention logits (GAT default).
const LEAKY_SLOPE: f32 = 0.2;

/// GAT convolution: attention coefficients
/// `alpha_ij = softmax_j(LeakyReLU(a^T [W h_i || W h_j]))` weight the
/// aggregation of transformed neighbors.
///
/// The concatenated form `a^T [W h_i || W h_j]` is computed as
/// `a1^T W h_i + a2^T W h_j` with `a = [a1; a2]`, like PyTorch Geometric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GatConv {
    w: ParamId,
    a_dst: ParamId,
    a_src: ParamId,
    b: ParamId,
}

impl GatConv {
    /// Registers a single-head GAT layer mapping `in_dim -> out_dim`.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: store.add(format!("{name}.weight"), in_dim, out_dim, Init::XavierUniform),
            a_dst: store.add(format!("{name}.att_dst"), out_dim, 1, Init::XavierUniform),
            a_src: store.add(format!("{name}.att_src"), out_dim, 1, Init::XavierUniform),
            b: store.add(format!("{name}.bias"), 1, out_dim, Init::Zeros),
        }
    }

    /// Forward pass over an edge list (activation applied by the caller).
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: NodeId,
        src: &[usize],
        dst: &[usize],
    ) -> NodeId {
        let n = g.value(x).rows();
        // Self-loops so every node attends to itself (N(i) ∪ {i}).
        let mut s: Vec<usize> = src.to_vec();
        let mut d: Vec<usize> = dst.to_vec();
        s.extend(0..n);
        d.extend(0..n);

        let wv = g.param(store, self.w);
        let h = g.matmul(x, wv); // [N, out]
        let a_dst = g.param(store, self.a_dst);
        let a_src = g.param(store, self.a_src);
        let score_dst = g.matmul(h, a_dst); // [N, 1]
        let score_src = g.matmul(h, a_src); // [N, 1]

        let e_dst = g.gather_rows(score_dst, &d);
        let e_src = g.gather_rows(score_src, &s);
        let logits = g.add(e_dst, e_src);
        let logits = g.leaky_relu(logits, LEAKY_SLOPE);
        let alpha = g.segment_softmax(logits, &d); // normalized over incoming edges

        let msgs = g.gather_rows(h, &s);
        let weighted = g.mul_col_broadcast(msgs, alpha);
        let agg = g.scatter_add_rows(weighted, &d, n);
        let bv = g.param(store, self.b);
        g.add_bias(agg, bv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdse_tensor::Matrix;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new(4);
        let conv = GatConv::new(&mut store, "gat0", 6, 8);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(4, 6, |i, j| ((i * 7 + j) % 5) as f32 * 0.2));
        let y = conv.forward(&mut g, &store, x, &[0, 1, 2], &[1, 2, 3]);
        assert_eq!(g.value(y).shape(), (4, 8));
        assert!(!g.value(y).has_non_finite());
    }

    #[test]
    fn attention_weights_depend_on_features() {
        let mut store = ParamStore::new(5);
        let conv = GatConv::new(&mut store, "gat0", 2, 4);
        // Node 2 aggregates from nodes 0 and 1; changing node 1's features
        // changes both the message and the attention split.
        let out = |v: f32| {
            let mut g = Graph::new();
            let x = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[v, -v], &[0.5, 0.5]]));
            let y = conv.forward(&mut g, &store, x, &[0, 1], &[2, 2]);
            g.value(y).row(2).to_vec()
        };
        assert_ne!(out(0.1), out(3.0));
    }

    #[test]
    fn gradient_flows_to_attention_params() {
        let mut store = ParamStore::new(6);
        let conv = GatConv::new(&mut store, "gat0", 3, 3);
        let mut g = Graph::new();
        let x = g.input(Matrix::from_fn(3, 3, |i, j| (i as f32 - j as f32) * 0.3));
        let y = conv.forward(&mut g, &store, x, &[0, 1], &[2, 2]);
        let s = g.sum_rows(y);
        let loss = g.mse_loss(s, Matrix::zeros(1, 3));
        let mut grads = store.zero_grads();
        g.backward(loss, &mut grads);
        let att_grad_norm = grads.grad(conv.a_src).frobenius_norm()
            + grads.grad(conv.a_dst).frobenius_norm();
        assert!(att_grad_norm > 0.0, "attention parameters must receive gradient");
    }
}
