//! The predictive models of Table 2 (M1-M7) and their forward passes.

use crate::encoder::{ConvKind, EncoderOutput, GnnEncoder};
use crate::input::{GraphBatch, GraphInput};
use crate::layers::mlp::Mlp;
use design_space::{DesignPoint, PragmaValue};
use gdse_tensor::{Graph, Matrix, NodeId, ParamStore, QuantMatrix, QuantParamSet};
use proggraph::NODE_FEATS;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Model variants evaluated in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// M1: MLP on pragma settings only (Kwon et al. style).
    MlpPragma,
    /// M2: MLP on pragma settings + program-context node features (no
    /// message passing).
    MlpContext,
    /// M3: GCN encoder, sum readout.
    Gcn,
    /// M4: GAT encoder, sum readout.
    Gat,
    /// M5: TransformerConv encoder, sum readout.
    Transformer,
    /// M6: TransformerConv + Jumping Knowledge, sum readout.
    TransformerJkn,
    /// M7: the full GNN-DSE model — TransformerConv + JKN + node attention.
    Full,
}

impl ModelKind {
    /// All variants in Table 2 order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::MlpPragma,
        ModelKind::MlpContext,
        ModelKind::Gcn,
        ModelKind::Gat,
        ModelKind::Transformer,
        ModelKind::TransformerJkn,
        ModelKind::Full,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::MlpPragma => "M1 MLP-pragma",
            ModelKind::MlpContext => "M2 MLP-pragma-program context",
            ModelKind::Gcn => "M3 GNN-DSE-GCN",
            ModelKind::Gat => "M4 GNN-DSE-GAT",
            ModelKind::Transformer => "M5 GNN-DSE-TransformerConv",
            ModelKind::TransformerJkn => "M6 GNN-DSE-TransformerConv+JKN",
            ModelKind::Full => "M7 GNN-DSE (full)",
        }
    }
}

/// Hyperparameters of a prediction model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// GNN hidden width (paper: 64).
    pub hidden: usize,
    /// Number of GNN layers (paper: 6).
    pub gnn_layers: usize,
    /// Number of MLP prediction layers (paper: 4).
    pub mlp_layers: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl ModelConfig {
    /// The paper's configuration (§5.1): 6 GNN layers, 64 features, 4 MLP
    /// prediction layers.
    pub fn paper() -> Self {
        Self { hidden: 64, gnn_layers: 6, mlp_layers: 4, seed: 42 }
    }

    /// A small configuration for fast tests and examples.
    pub fn small() -> Self {
        Self { hidden: 16, gnn_layers: 3, mlp_layers: 2, seed: 42 }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn head_dims(&self) -> Vec<usize> {
        // Halving pyramid: hidden -> hidden/2 -> ... -> 1.
        let mut dims = vec![self.hidden];
        let mut d = self.hidden;
        for _ in 1..self.mlp_layers {
            d = (d / 2).max(2);
            dims.push(d);
        }
        dims.push(1);
        dims
    }
}

/// Maximum pragma slots the M1 encoding supports (2mm has 14).
pub const MAX_SLOTS: usize = 16;
/// Per-slot width of the M1 pragma encoding.
pub const SLOT_FEATS: usize = 2;

/// Encodes a design point as a fixed-width vector for the MLP-pragma
/// baseline (M1, Kwon et al. style): *only the pragma settings*, per slot
/// `[setting, ln(factor)]` where `setting` is the pipeline ordinal (0/0.5/1)
/// or the normalized factor. No pragma-kind or program information is
/// included — that is exactly the limitation §5.2.2 attributes to this
/// baseline.
pub fn encode_pragmas(point: &DesignPoint) -> Matrix {
    let mut m = Matrix::zeros(1, MAX_SLOTS * SLOT_FEATS);
    for (i, &v) in point.values().iter().take(MAX_SLOTS).enumerate() {
        let row = m.row_mut(0);
        let o = i * SLOT_FEATS;
        match v {
            PragmaValue::Pipeline(opt) => {
                row[o] = match opt {
                    design_space::PipelineOpt::Off => 0.0,
                    design_space::PipelineOpt::Coarse => 0.5,
                    design_space::PipelineOpt::Fine => 1.0,
                };
                row[o + 1] = 0.0;
            }
            PragmaValue::Tile(f) | PragmaValue::Parallel(f) => {
                row[o] = f as f32 / 64.0;
                row[o + 1] = (f as f32).ln_1p();
            }
        }
    }
    m
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Body {
    /// M1: pragma vector -> MLP trunk.
    PragmaMlp(Mlp),
    /// M2: per-node MLP -> sum pool (+ pragma vector concatenated).
    ContextMlp { node_mlp: Mlp },
    /// M3-M7: GNN encoder.
    Gnn(GnnEncoder),
}

/// One forward pass's output handles.
#[derive(Debug)]
pub struct ModelOutput {
    /// The tape; keep it to run `backward`.
    pub graph: Graph,
    /// One `[B, 1]` prediction per head, in head order.
    pub outputs: Vec<NodeId>,
    /// Per-graph embeddings `[B, D]` (for t-SNE, Fig. 6).
    pub graph_emb: NodeId,
    /// Node attention scores (M7 only; Fig. 5).
    pub attention: Option<NodeId>,
}

impl ModelOutput {
    /// Predicted scalars of a single-sample batch, in head order.
    ///
    /// # Panics
    ///
    /// Panics if the batch had more than one graph.
    pub fn values(&self) -> Vec<f32> {
        self.outputs.iter().map(|&o| self.graph.value(o).scalar()).collect()
    }

    /// Predictions for sample `i` of the batch, in head order.
    pub fn values_of(&self, i: usize) -> Vec<f32> {
        self.outputs.iter().map(|&o| self.graph.value(o).get(i, 0)).collect()
    }
}

/// A Table-2 prediction model: a body (MLP baseline or GNN encoder) plus one
/// MLP head per target.
///
/// The model owns its [`ParamStore`]; training code accesses it through
/// [`PredictionModel::store`] / [`PredictionModel::store_mut`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionModel {
    kind: ModelKind,
    config: ModelConfig,
    head_names: Vec<String>,
    body: Body,
    heads: Vec<Mlp>,
    store: ParamStore,
}

impl PredictionModel {
    /// Builds a model of the given kind with one head per target name
    /// (e.g. `["latency", "dsp", "lut", "ff"]`, `["bram"]`, or `["valid"]`).
    pub fn new(kind: ModelKind, config: ModelConfig, head_names: &[&str]) -> Self {
        assert!(!head_names.is_empty(), "a model needs at least one head");
        let mut store = ParamStore::new(config.seed);
        let hidden = config.hidden;
        let body = match kind {
            ModelKind::MlpPragma => Body::PragmaMlp(Mlp::new(
                &mut store,
                "trunk",
                &[MAX_SLOTS * SLOT_FEATS, hidden * 2, hidden],
            )),
            ModelKind::MlpContext => Body::ContextMlp {
                node_mlp: Mlp::new(&mut store, "node_mlp", &[NODE_FEATS, hidden * 2, hidden]),
            },
            ModelKind::Gcn => Body::Gnn(GnnEncoder::new(
                &mut store,
                ConvKind::Gcn,
                NODE_FEATS,
                hidden,
                config.gnn_layers,
                false,
                false,
            )),
            ModelKind::Gat => Body::Gnn(GnnEncoder::new(
                &mut store,
                ConvKind::Gat,
                NODE_FEATS,
                hidden,
                config.gnn_layers,
                false,
                false,
            )),
            ModelKind::Transformer => Body::Gnn(GnnEncoder::new(
                &mut store,
                ConvKind::Transformer,
                NODE_FEATS,
                hidden,
                config.gnn_layers,
                false,
                false,
            )),
            ModelKind::TransformerJkn => Body::Gnn(GnnEncoder::new(
                &mut store,
                ConvKind::Transformer,
                NODE_FEATS,
                hidden,
                config.gnn_layers,
                true,
                false,
            )),
            ModelKind::Full => Body::Gnn(GnnEncoder::new(
                &mut store,
                ConvKind::Transformer,
                NODE_FEATS,
                hidden,
                config.gnn_layers,
                true,
                true,
            )),
        };
        let dims = config.head_dims();
        let heads = head_names
            .iter()
            .map(|n| Mlp::new(&mut store, &format!("head.{n}"), &dims))
            .collect();
        Self {
            kind,
            config,
            head_names: head_names.iter().map(|s| s.to_string()).collect(),
            body,
            heads,
            store,
        }
    }

    /// The model variant.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The hyperparameters.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Head (target) names, in output order.
    pub fn head_names(&self) -> &[String] {
        &self.head_names
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to the parameter store (for optimizers).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Re-creates the model's weights from scratch with a new seed, keeping
    /// the architecture. Used by the trainer's stall-recovery: some
    /// initializations of deep attention stacks start in a collapsed basin.
    pub fn reinitialize(&mut self, seed: u64) {
        let heads: Vec<&str> = self.head_names.iter().map(String::as_str).collect();
        *self = PredictionModel::new(self.kind, self.config.clone().with_seed(seed), &heads);
    }

    /// Runs a forward pass on a batch of designs (M1 reads only the pragma
    /// encodings; M2-M7 read the graphs).
    pub fn forward(&self, batch: &GraphBatch) -> ModelOutput {
        self.forward_on(Graph::new(), batch)
    }

    /// Calibrates an int8 [`QuantParamSet`] from the current weights.
    ///
    /// Every weight matrix (`rows >= 2`) gets per-tensor symmetric int8
    /// quantization; biases and any other `[1, F]` parameters stay f32 —
    /// they are tiny, and keeping them exact costs nothing while removing a
    /// quantization error term from every layer.
    pub fn quantize(&self) -> QuantParamSet {
        let mut qs = QuantParamSet::new();
        for id in self.store.ids() {
            let v = self.store.value(id);
            if v.rows() >= 2 {
                qs.insert(id, QuantMatrix::quantize(v));
            }
        }
        qs
    }

    /// Forward pass routing every calibrated weight through the int8
    /// kernel. The returned tape is **forward-only**: quantized ops record
    /// no gradient function, so `backward` on it stops at every such op.
    /// Use [`quantize`](Self::quantize) to build the set once and share it
    /// across calls.
    pub fn forward_quant(&self, batch: &GraphBatch, quant: &Arc<QuantParamSet>) -> ModelOutput {
        self.forward_on(Graph::with_quant(Arc::clone(quant)), batch)
    }

    fn forward_on(&self, mut g: Graph, batch: &GraphBatch) -> ModelOutput {
        let started = std::time::Instant::now();
        let (graph_emb, attention) = match &self.body {
            Body::PragmaMlp(trunk) => {
                let x = g.input(batch.pragma_x.clone());
                let h = trunk.forward(&mut g, &self.store, x);
                let h = g.relu(h);
                (h, None)
            }
            Body::ContextMlp { node_mlp } => {
                let x = g.input(batch.x.clone());
                let h = node_mlp.forward(&mut g, &self.store, x);
                let h = g.relu(h);
                let pooled = crate::layers::pool::sum_pool(
                    &mut g,
                    h,
                    &batch.node_graph,
                    batch.num_graphs,
                );
                (pooled, None)
            }
            Body::Gnn(enc) => {
                let EncoderOutput { graph_emb, attention, .. } =
                    enc.forward(&mut g, &self.store, batch);
                (graph_emb, attention)
            }
        };
        let outputs = self
            .heads
            .iter()
            .map(|head| head.forward(&mut g, &self.store, graph_emb))
            .collect();
        gdse_obs::metrics::counter_inc("gnn.forwards");
        gdse_obs::metrics::observe_us(
            "gnn.forward_us",
            started.elapsed().as_micros() as u64,
        );
        ModelOutput { graph: g, outputs, graph_emb, attention }
    }

    /// Convenience forward pass on a single design.
    pub fn forward_single(&self, input: &GraphInput, point: &DesignPoint) -> ModelOutput {
        self.forward(&GraphBatch::single(input, point))
    }

    /// Forward passes over `items` in fixed-size chunks, returning one
    /// [`ModelOutput`] per chunk, in input order.
    ///
    /// This is the batch-inference entry point for large candidate
    /// frontiers: chunking bounds the tensor workspace of a single forward
    /// pass, and because the pass is item-independent (each row of the
    /// batch only reads its own features), any chunk size produces the
    /// same per-item outputs as one monolithic batch — callers may pick
    /// the chunk to match their parallelism or memory budget.
    pub fn forward_chunked(
        &self,
        items: &[(&GraphInput, &DesignPoint)],
        chunk: usize,
    ) -> Vec<ModelOutput> {
        let chunk = chunk.max(1);
        items.chunks(chunk).map(|c| self.forward(&GraphBatch::new(c))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use proggraph::build_graph_bidirectional;

    fn sample() -> (GraphInput, DesignPoint, DesignPoint) {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let p0 = space.default_point();
        let p1 = space.point_at(space.size() - 1);
        // Lowered with p0's pragma fill; M1 ignores it anyway.
        (GraphInput::from_graph(&graph, Some(&p0)), p0, p1)
    }

    #[test]
    fn every_kind_produces_all_heads() {
        let (input, p0, _) = sample();
        for kind in ModelKind::ALL {
            let model = PredictionModel::new(kind, ModelConfig::small(), &["latency", "dsp"]);
            let out = model.forward_single(&input, &p0);
            assert_eq!(out.values().len(), 2, "{kind:?}");
            assert!(out.values().iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn m1_depends_on_point_not_graph() {
        let (input, p0, p1) = sample();
        let model = PredictionModel::new(ModelKind::MlpPragma, ModelConfig::small(), &["latency"]);
        let a = model.forward_single(&input, &p0).values();
        let b = model.forward_single(&input, &p1).values();
        assert_ne!(a, b, "different pragma settings must change M1's output");
    }

    #[test]
    fn full_model_exposes_attention() {
        let (input, p0, _) = sample();
        let model = PredictionModel::new(ModelKind::Full, ModelConfig::small(), &["latency"]);
        let out = model.forward_single(&input, &p0);
        assert!(out.attention.is_some());
        let others = PredictionModel::new(ModelKind::Transformer, ModelConfig::small(), &["latency"]);
        assert!(others.forward_single(&input, &p0).attention.is_none());
    }

    #[test]
    fn pragma_encoding_shapes() {
        let (_, p0, p1) = sample();
        let a = encode_pragmas(&p0);
        assert_eq!(a.shape(), (1, MAX_SLOTS * SLOT_FEATS));
        assert_ne!(a, encode_pragmas(&p1));
    }

    #[test]
    fn paper_config_matches_section_5_1() {
        let c = ModelConfig::paper();
        assert_eq!(c.hidden, 64);
        assert_eq!(c.gnn_layers, 6);
        assert_eq!(c.mlp_layers, 4);
    }

    #[test]
    fn head_dims_end_at_one() {
        let c = ModelConfig::paper();
        let dims = c.head_dims();
        assert_eq!(dims[0], 64);
        assert_eq!(*dims.last().unwrap(), 1);
        assert_eq!(dims.len(), c.mlp_layers + 1);
    }

    #[test]
    fn chunked_forward_matches_one_monolithic_batch() {
        let (input, p0, p1) = sample();
        let model = PredictionModel::new(ModelKind::Transformer, ModelConfig::small(), &["latency"]);
        let items: Vec<(&GraphInput, &DesignPoint)> =
            vec![(&input, &p0), (&input, &p1), (&input, &p0), (&input, &p1), (&input, &p0)];

        let mono = model.forward(&GraphBatch::new(&items));
        for chunk in [1, 2, 5, 16] {
            let outs = model.forward_chunked(&items, chunk);
            assert_eq!(outs.len(), items.len().div_ceil(chunk.max(1)), "chunk={chunk}");
            let mut i = 0;
            for out in &outs {
                let rows = out.graph.value(out.outputs[0]).shape().0;
                for r in 0..rows {
                    let got = out.graph.value(out.outputs[0]).get(r, 0);
                    let want = mono.graph.value(mono.outputs[0]).get(i, 0);
                    assert_eq!(got.to_bits(), want.to_bits(), "chunk={chunk} item={i}");
                    i += 1;
                }
            }
            assert_eq!(i, items.len(), "chunk={chunk} covers every item");
        }
    }

    #[test]
    fn quantize_covers_weights_and_skips_biases() {
        let model = PredictionModel::new(ModelKind::Full, ModelConfig::small(), &["latency"]);
        let qs = model.quantize();
        assert!(!qs.is_empty());
        for id in model.store().ids() {
            let v = model.store().value(id);
            if v.rows() >= 2 {
                assert!(qs.get(id).is_some(), "weight {} not calibrated", model.store().name(id));
            } else {
                assert!(qs.get(id).is_none(), "bias {} must stay f32", model.store().name(id));
            }
        }
    }

    #[test]
    fn quantized_forward_tracks_f32_on_every_kind() {
        let (input, p0, _) = sample();
        for kind in ModelKind::ALL {
            let model = PredictionModel::new(kind, ModelConfig::small(), &["latency", "dsp"]);
            let qs = Arc::new(model.quantize());
            let batch = GraphBatch::single(&input, &p0);
            let f = model.forward(&batch).values();
            let q = model.forward_quant(&batch, &qs).values();
            assert_eq!(f.len(), q.len(), "{kind:?}");
            for (a, b) in f.iter().zip(&q) {
                assert!(b.is_finite(), "{kind:?}");
                assert!(
                    (a - b).abs() < 0.25 * (1.0 + a.abs()),
                    "{kind:?}: f32 {a} vs quant {b} drift too large"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_prediction() {
        let (input, p0, _) = sample();
        let m1 = PredictionModel::new(ModelKind::Gcn, ModelConfig::small(), &["latency"]);
        let m2 = PredictionModel::new(ModelKind::Gcn, ModelConfig::small(), &["latency"]);
        assert_eq!(m1.forward_single(&input, &p0).values(), m2.forward_single(&input, &p0).values());
    }
}
