//! The GNN encoder of §4.3.1: stacked graph convolutions, optional Jumping
//! Knowledge combination, and a graph-level readout.

use crate::input::GraphBatch;
use crate::layers::gat::GatConv;
use crate::layers::gcn::GcnConv;
use crate::layers::pool::{sum_pool, AttentionPool};
use crate::layers::transformer::TransformerConv;
use gdse_tensor::{Graph, NodeId, ParamStore};
use proggraph::EDGE_FEATS;
use serde::{Deserialize, Serialize};

/// Which graph convolution the encoder stacks (Table 2: M3 / M4 / M5-M7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvKind {
    /// GCN (eq. 1).
    Gcn,
    /// GAT (eqs. 2-3).
    Gat,
    /// TransformerConv with edge embeddings (eq. 8).
    Transformer,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Conv {
    Gcn(GcnConv),
    Gat(GatConv),
    Transformer(TransformerConv),
}

/// Graph-level readout choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Readout {
    Sum,
    Attention(AttentionPool),
}

/// Output handles of one encoder forward pass.
#[derive(Debug, Clone, Copy)]
pub struct EncoderOutput {
    /// Per-graph embeddings `[B, D]`.
    pub graph_emb: NodeId,
    /// Final node embeddings `[N_total, D]` (post-JKN if enabled).
    pub node_embs: NodeId,
    /// Node attention scores `[N_total, 1]` when attention pooling is
    /// active (normalized within each graph).
    pub attention: Option<NodeId>,
}

/// The GNN encoder: `layers` stacked convolutions with ELU activations,
/// optional JKN max-combination (eq. 9), and sum or attention readout
/// (eq. 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnEncoder {
    convs: Vec<Conv>,
    use_jkn: bool,
    readout: Readout,
    hidden: usize,
}

impl GnnEncoder {
    /// Registers an encoder with `layers` convolutions of width `hidden`,
    /// reading `in_dim`-dimensional node features.
    pub fn new(
        store: &mut ParamStore,
        kind: ConvKind,
        in_dim: usize,
        hidden: usize,
        layers: usize,
        use_jkn: bool,
        attention_pool: bool,
    ) -> Self {
        assert!(layers >= 1, "encoder needs at least one layer");
        let mut convs = Vec::with_capacity(layers);
        for i in 0..layers {
            let d_in = if i == 0 { in_dim } else { hidden };
            let name = format!("conv{i}");
            convs.push(match kind {
                ConvKind::Gcn => Conv::Gcn(GcnConv::new(store, &name, d_in, hidden)),
                ConvKind::Gat => Conv::Gat(GatConv::new(store, &name, d_in, hidden)),
                ConvKind::Transformer => Conv::Transformer(TransformerConv::new(
                    store, &name, d_in, hidden, EDGE_FEATS,
                )),
            });
        }
        let readout = if attention_pool {
            Readout::Attention(AttentionPool::new(store, "pool", hidden))
        } else {
            Readout::Sum
        };
        Self { convs, use_jkn, readout, hidden }
    }

    /// Hidden width `D`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the encoder on a batch of lowered graphs.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, input: &GraphBatch) -> EncoderOutput {
        let x0 = g.input(input.x.clone());
        let edge_attr = g.input(input.edge_attr.clone());
        let mut h = x0;
        let mut per_layer = Vec::with_capacity(self.convs.len());
        for conv in &self.convs {
            let lin = match conv {
                Conv::Gcn(c) => c.forward(g, store, h, &input.src, &input.dst),
                Conv::Gat(c) => c.forward(g, store, h, &input.src, &input.dst),
                Conv::Transformer(c) => {
                    c.forward(g, store, h, edge_attr, &input.src, &input.dst)
                }
            };
            let act = g.elu(lin, 1.0);
            // LayerNorm keeps deep attention stacks from diverging (the
            // standard Transformer recipe; without it some seeds collapse).
            h = g.layer_norm(act, 1e-5);
            per_layer.push(h);
        }
        let node_embs = if self.use_jkn && per_layer.len() > 1 {
            g.max_stack(&per_layer)
        } else {
            h
        };
        match &self.readout {
            Readout::Sum => EncoderOutput {
                graph_emb: sum_pool(g, node_embs, &input.node_graph, input.num_graphs),
                node_embs,
                attention: None,
            },
            Readout::Attention(pool) => {
                let pooled =
                    pool.forward(g, store, node_embs, &input.node_graph, input.num_graphs);
                EncoderOutput {
                    graph_emb: pooled.graph_emb,
                    node_embs,
                    attention: Some(pooled.attention),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::DesignSpace;
    use hls_ir::kernels;
    use proggraph::{build_graph_bidirectional, NODE_FEATS};

    use crate::input::GraphInput;

    fn input() -> GraphBatch {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let graph = build_graph_bidirectional(&k, &space);
        let p = space.default_point();
        let gi = GraphInput::from_graph(&graph, Some(&p));
        GraphBatch::single(&gi, &p)
    }

    #[test]
    fn all_conv_kinds_produce_graph_embedding() {
        let inp = input();
        for kind in [ConvKind::Gcn, ConvKind::Gat, ConvKind::Transformer] {
            let mut store = ParamStore::new(21);
            let enc = GnnEncoder::new(&mut store, kind, NODE_FEATS, 16, 2, false, false);
            let mut g = Graph::new();
            let out = enc.forward(&mut g, &store, &inp);
            assert_eq!(g.value(out.graph_emb).shape(), (1, 16), "{kind:?}");
            assert!(!g.value(out.graph_emb).has_non_finite(), "{kind:?}");
        }
    }

    #[test]
    fn jkn_changes_node_embeddings() {
        let inp = input();
        let mut store = ParamStore::new(22);
        let enc_jkn = GnnEncoder::new(&mut store, ConvKind::Transformer, NODE_FEATS, 8, 3, true, false);
        let mut store2 = ParamStore::new(22);
        let enc_plain =
            GnnEncoder::new(&mut store2, ConvKind::Transformer, NODE_FEATS, 8, 3, false, false);
        let mut g1 = Graph::new();
        let o1 = enc_jkn.forward(&mut g1, &store, &inp);
        let mut g2 = Graph::new();
        let o2 = enc_plain.forward(&mut g2, &store2, &inp);
        // Same weights (same seed), different combination rule.
        assert_ne!(g1.value(o1.graph_emb), g2.value(o2.graph_emb));
    }

    #[test]
    fn attention_pool_exposes_scores() {
        let inp = input();
        let mut store = ParamStore::new(23);
        let enc = GnnEncoder::new(&mut store, ConvKind::Transformer, NODE_FEATS, 8, 2, true, true);
        let mut g = Graph::new();
        let out = enc.forward(&mut g, &store, &inp);
        let att = out.attention.expect("attention scores");
        assert_eq!(g.value(att).shape(), (inp.num_nodes(), 1));
        assert!((g.value(att).sum() - 1.0).abs() < 1e-4);
    }
}
