//! Integration tests of the cost model's qualitative behaviours — the
//! mechanisms the GNN surrogate is expected to learn from the database.

use design_space::{DesignPoint, DesignSpace, PipelineOpt, PragmaValue};
use hls_ir::{kernels, Kernel, PragmaKind};
use merlin_sim::{MerlinSimulator, Validity};

fn with(
    kernel: &Kernel,
    space: &DesignSpace,
    settings: &[(&str, PragmaKind, PragmaValue)],
) -> DesignPoint {
    let mut p = space.default_point();
    for &(label, kind, value) in settings {
        let id = kernel.loop_by_label(label).unwrap();
        let slot = space
            .slot_index(id, kind)
            .unwrap_or_else(|| panic!("{label} has no {kind:?} slot"));
        p.set_value(slot, value);
    }
    p
}

#[test]
fn coarse_pipeline_overlaps_sibling_loops() {
    // atax L1 contains two sequential inner loops (L2, L3): cg on L1 should
    // overlap them and roughly halve the nest's latency.
    let k = kernels::atax();
    let space = DesignSpace::from_kernel(&k);
    let sim = MerlinSimulator::new();
    let base = sim.evaluate(&k, &space, &space.default_point()).cycles;
    let p = with(&k, &space, &[(
        "L1",
        PragmaKind::Pipeline,
        PragmaValue::Pipeline(PipelineOpt::Coarse),
    )]);
    let cg = sim.evaluate(&k, &space, &p).cycles;
    let ratio = base as f64 / cg as f64;
    assert!(
        ratio > 1.3 && ratio < 3.0,
        "cg should overlap the two stages (~2x): got {ratio:.2}x"
    );
}

#[test]
fn deeper_parallelism_eventually_stops_helping() {
    // gemm L2 (the reduction loop): speedup from parallel should be
    // noticeably sublinear at the high end (memory ports / reduction tree).
    let k = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&k);
    let sim = MerlinSimulator::new();
    let cycles = |f: u32| {
        let p = with(&k, &space, &[("L2", PragmaKind::Parallel, PragmaValue::Parallel(f))]);
        sim.evaluate(&k, &space, &p).cycles as f64
    };
    let s8 = cycles(1) / cycles(8);
    let s64 = cycles(1) / cycles(64);
    assert!(s8 > 4.0, "8x unroll should give >4x: {s8:.1}");
    assert!(s64 < 8.0 * s8, "64x unroll must be sublinear vs 8x: {s64:.1} vs {s8:.1}");
}

#[test]
fn aes_rounds_loop_cannot_be_pipelined_away() {
    // The AES rounds loop carries the state; pipelining it cannot approach
    // the per-round latency bound.
    let k = kernels::aes();
    let space = DesignSpace::from_kernel(&k);
    let sim = MerlinSimulator::new();
    let base = sim.evaluate(&k, &space, &space.default_point()).cycles;
    let p = with(&k, &space, &[(
        "L0",
        PragmaKind::Pipeline,
        PragmaValue::Pipeline(PipelineOpt::Coarse),
    )]);
    let piped = sim.evaluate(&k, &space, &p).cycles;
    assert!(
        piped as f64 > base as f64 * 0.5,
        "serial rounds loop should see <2x from pipelining: {piped} vs {base}"
    );
}

#[test]
fn every_kernel_has_a_design_beating_default_by_10x() {
    // The optimization headroom the whole paper is about: for each kernel
    // there must exist a configuration much faster than no-pragmas
    // (found here by a short greedy probe over single-pragma options).
    let sim = MerlinSimulator::new();
    for k in kernels::all_kernels() {
        if k.name() == "aes" || k.name() == "nw" {
            // Fully serial kernels have bounded headroom; skip.
            continue;
        }
        let space = DesignSpace::from_kernel(&k);
        let base = sim.evaluate(&k, &space, &space.default_point()).cycles;
        let mut best = base;
        let mut current = space.default_point();
        for pass in 0..2 {
            let _ = pass;
            for si in 0..space.num_slots() {
                let mut best_here = current.clone();
                for &opt in &space.slots()[si].options {
                    let cand = current.with_value(si, opt);
                    let r = sim.evaluate(&k, &space, &cand);
                    if r.is_valid() && r.util.fits(0.8) && r.cycles < best {
                        best = r.cycles;
                        best_here = cand;
                    }
                }
                current = best_here;
            }
        }
        assert!(
            best * 10 <= base,
            "{}: expected >10x headroom, best {} vs base {}",
            k.name(),
            best,
            base
        );
    }
}

#[test]
fn utilization_is_monotone_in_parallel_factor() {
    let k = kernels::mvt();
    let space = DesignSpace::from_kernel(&k);
    let sim = MerlinSimulator::new();
    let mut last = 0.0f64;
    for f in [1u32, 2, 5, 10, 25] {
        let p = with(&k, &space, &[("L1", PragmaKind::Parallel, PragmaValue::Parallel(f))]);
        let r = sim.evaluate(&k, &space, &p);
        assert!(r.is_valid(), "factor {f}");
        assert!(r.util.dsp >= last, "DSP util must not shrink with unroll");
        last = r.util.dsp;
    }
}

#[test]
fn synth_time_grows_with_complexity() {
    let k = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&k);
    let sim = MerlinSimulator::new();
    let small = sim.evaluate(&k, &space, &space.default_point()).synth_minutes;
    let p = with(&k, &space, &[("L1", PragmaKind::Parallel, PragmaValue::Parallel(16))]);
    let big = sim.evaluate(&k, &space, &p).synth_minutes;
    assert!(big > small, "16x replication must synthesize slower: {big} vs {small}");
}

#[test]
fn invalid_kinds_are_distinguished() {
    let sim = MerlinSimulator::new();
    // MerlinError: fg over a data-dependent bound (spmv-crs L0).
    let k = kernels::spmv_crs();
    let space = DesignSpace::from_kernel(&k);
    let p = with(&k, &space, &[(
        "L0",
        PragmaKind::Pipeline,
        PragmaValue::Pipeline(PipelineOpt::Fine),
    )]);
    assert_eq!(sim.evaluate(&k, &space, &p).validity, Validity::MerlinError);

    // Timeout: replicate everything in gemm.
    let k = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&k);
    let p = with(
        &k,
        &space,
        &[
            ("L0", PragmaKind::Parallel, PragmaValue::Parallel(64)),
            ("L1", PragmaKind::Parallel, PragmaValue::Parallel(64)),
            ("L2", PragmaKind::Parallel, PragmaValue::Parallel(64)),
        ],
    );
    assert!(matches!(
        sim.evaluate(&k, &space, &p).validity,
        Validity::Timeout | Validity::Refused
    ));
}

#[test]
fn spmv_formats_behave_differently_under_fg() {
    // The same "fg the row loop" decision is a MerlinError on CRS (variable
    // inner bound) but legal on ELLPACK (padded, static bound) — a
    // program-semantics distinction only context-aware models can learn.
    let sim = MerlinSimulator::new();

    let crs = kernels::spmv_crs();
    let crs_space = DesignSpace::from_kernel(&crs);
    let p = with(&crs, &crs_space, &[(
        "L0",
        PragmaKind::Pipeline,
        PragmaValue::Pipeline(PipelineOpt::Fine),
    )]);
    assert!(!sim.evaluate(&crs, &crs_space, &p).is_valid());

    let ell = kernels::spmv_ellpack();
    let ell_space = DesignSpace::from_kernel(&ell);
    let q = with(&ell, &ell_space, &[(
        "L0",
        PragmaKind::Pipeline,
        PragmaValue::Pipeline(PipelineOpt::Fine),
    )]);
    assert!(sim.evaluate(&ell, &ell_space, &q).is_valid());
}

#[test]
fn smaller_fpga_rejects_designs_that_fit_the_big_one() {
    use merlin_sim::Fpga;
    let k = kernels::gemm_ncubed();
    let space = DesignSpace::from_kernel(&k);
    let big = MerlinSimulator::new();
    let small = MerlinSimulator::with_fpga(Fpga::zu7ev());
    let p = with(
        &k,
        &space,
        &[
            ("L1", PragmaKind::Parallel, PragmaValue::Parallel(16)),
            ("L2", PragmaKind::Parallel, PragmaValue::Parallel(64)),
        ],
    );
    let rb = big.evaluate(&k, &space, &p);
    let rs = small.evaluate(&k, &space, &p);
    assert!(rb.is_valid() && rs.is_valid(), "synthesis succeeds on both");
    assert!(rb.util.fits(0.8), "fits the VCU1525");
    assert!(!rs.util.fits(0.8), "does not fit the edge device");
    assert_eq!(rb.cycles, rs.cycles, "latency is target-independent");
}
