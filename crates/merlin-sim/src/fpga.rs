//! FPGA resource targets.

use serde::{Deserialize, Serialize};

/// Available resources of a target FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fpga {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP48 slices.
    pub dsp: u64,
    /// 18Kb block-RAM units.
    pub bram18: u64,
}

impl Fpga {
    /// Xilinx Virtex UltraScale+ VCU1525 (XCVU9P) — the paper's target
    /// board (§5.1).
    pub fn vcu1525() -> Self {
        Self { lut: 1_182_240, ff: 2_364_480, dsp: 6_840, bram18: 4_320 }
    }

    /// Xilinx Alveo U250 (XCU250) — a larger data-center card, useful for
    /// studying how the utilization constraint shifts the Pareto frontier.
    pub fn u250() -> Self {
        Self { lut: 1_728_000, ff: 3_456_000, dsp: 12_288, bram18: 5_376 }
    }

    /// A small edge-class device (Zynq UltraScale+ ZU7EV ballpark) where
    /// many of the paper's mid-size designs no longer fit.
    pub fn zu7ev() -> Self {
        Self { lut: 230_400, ff: 460_800, dsp: 1_728, bram18: 624 }
    }

    /// Total BRAM capacity in bits.
    pub fn bram_bits(&self) -> u64 {
        self.bram18 * 18 * 1024
    }
}

impl Default for Fpga {
    fn default() -> Self {
        Self::vcu1525()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcu1525_resources() {
        let f = Fpga::vcu1525();
        assert_eq!(f.dsp, 6840);
        assert_eq!(f.bram18, 4320);
        assert!(f.bram_bits() > 75_000_000);
    }

    #[test]
    fn default_is_vcu1525() {
        assert_eq!(Fpga::default(), Fpga::vcu1525());
    }

    #[test]
    fn targets_are_ordered_by_size() {
        assert!(Fpga::zu7ev().dsp < Fpga::vcu1525().dsp);
        assert!(Fpga::vcu1525().dsp < Fpga::u250().dsp);
        assert!(Fpga::zu7ev().bram_bits() < Fpga::u250().bram_bits());
    }
}
