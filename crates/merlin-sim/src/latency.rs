//! The cycle-count model.
//!
//! A recursive walk over the (call-inlined) execution tree. Each loop's
//! latency follows its pragma configuration:
//!
//! * `pipeline fg` — sub-loops fully unrolled, the loop runs at an initiation
//!   interval II = max(memory-port II, recurrence II); latency is
//!   `II * (trips - 1) + depth`.
//! * `pipeline cg` — sub-stages overlap; latency is
//!   `max_stage * (trips - 1) + sum(stages)`.
//! * `off` — sequential: `trips * body + overhead`.
//!
//! `parallel` divides the sequential trip count when legal (reductions get a
//! combining-tree epilogue; true loop-carried dependences get *no* speedup),
//! and memory behaviour follows the [`crate::memory::MemoryPlan`]: on-chip
//! accesses are cheap and banked, DDR accesses burst only when unit-stride,
//! and tiled caches insert per-tile burst transfers.

use crate::cost::{expand_ops, mem};
use crate::memory::{MemoryPlan, Placement};
use crate::settings::loop_setting;
use design_space::{DesignPoint, DesignSpace, PipelineOpt};
use hls_ir::{
    AccessPattern, ArrayAccess, ArrayId, BodyItem, Kernel, Loop, ScalarType, Statement,
};
use std::collections::HashMap;

/// Loop-entry/exit control overhead in cycles.
const LOOP_OVERHEAD: u64 = 2;
/// Amortized cost of a unit-stride DDR access outside a pipeline.
const DDR_SEQ_LAT: u64 = 4;

/// How one array access behaves under the memory plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AccClass {
    OnChip,
    DdrSeq,
    DdrRand,
}

/// Per-loop entry of a design's synthesis report — what Vitis HLS's loop
/// table shows: applied pragmas, achieved II, and the loop's contribution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LoopReport {
    /// Loop label.
    pub label: String,
    /// Trip count.
    pub trip_count: u64,
    /// Applied parallel factor.
    pub parallel: u32,
    /// Applied tile factor.
    pub tile: u32,
    /// Applied pipeline mode (`off`/`cg`/`fg`).
    pub pipeline: String,
    /// Achieved initiation interval (1 for non-pipelined loops' bodies).
    pub ii: u64,
    /// Cycles for one execution of this loop (including sub-loops).
    pub cycles: u64,
}

struct LatCtx<'a> {
    kernel: &'a Kernel,
    space: &'a DesignSpace,
    point: &'a DesignPoint,
    plan: &'a MemoryPlan,
    /// (label, |stride| == 1 possible) stack of enclosing loop labels.
    labels: Vec<String>,
    /// Per-loop report rows collected during the walk.
    reports: Vec<LoopReport>,
}

impl LatCtx<'_> {
    fn classify(&self, access: &ArrayAccess) -> AccClass {
        let on_chip = !matches!(self.plan.plan(access.array).placement, Placement::Ddr);
        if on_chip {
            return AccClass::OnChip;
        }
        let seq = match &access.pattern {
            AccessPattern::Affine { .. } => self
                .labels
                .iter()
                .any(|l| access.pattern.stride_of(l).unwrap_or(0).abs() == 1),
            AccessPattern::Uniform => true,
            AccessPattern::Indirect => false,
        };
        if seq {
            AccClass::DdrSeq
        } else {
            AccClass::DdrRand
        }
    }

    fn elem_bits(&self, id: ArrayId) -> u64 {
        u64::from(self.kernel.array(id).elem().bit_width())
    }

    fn float_ty(&self, stmt: &Statement) -> ScalarType {
        stmt.accesses()
            .iter()
            .map(|a| self.kernel.array(a.array).elem())
            .filter(|t| t.is_float())
            .max_by_key(|t| t.bit_width())
            .unwrap_or(ScalarType::F32)
    }
}

/// Latency of one statement executed sequentially (not inside a pipeline).
fn stmt_seq_cycles(ctx: &LatCtx<'_>, stmt: &Statement) -> u64 {
    let ty = ctx.float_ty(stmt);
    let cp = expand_ops(stmt.ops(), ty, 1).critical_path;
    let mut max_mem = 0u64;
    let mut count = 0u64;
    for a in stmt.accesses() {
        let lat = match ctx.classify(a) {
            AccClass::OnChip => mem::ON_CHIP_LAT,
            AccClass::DdrSeq => DDR_SEQ_LAT,
            AccClass::DdrRand => mem::RANDOM_LAT,
        };
        max_mem = max_mem.max(lat);
        count += 1;
    }
    cp + max_mem + count.saturating_sub(1)
}

/// Statistics of a fully unrolled (fg-pipelined) loop body.
#[derive(Debug, Default)]
struct UnrolledStats {
    /// Per-(array, class) access counts per II-iteration.
    accesses: HashMap<(ArrayId, AccClass), u64>,
    /// Critical path of the unrolled body.
    depth: u64,
    /// A statement carries a true (non-reduction) dependence on the fg loop.
    serial_on_root: bool,
    /// A statement carries a reduction on the fg loop.
    reduction_on_root: bool,
    /// Chain latency to use as recurrence II when `serial_on_root`.
    chain: u64,
}

fn unrolled_stats(
    ctx: &mut LatCtx<'_>,
    items: &[BodyItem],
    copies: u64,
    root_label: &str,
    stats: &mut UnrolledStats,
) {
    for item in items {
        match item {
            BodyItem::Stmt(stmt) => {
                let ty = ctx.float_ty(stmt);
                let cp = expand_ops(stmt.ops(), ty, 1).critical_path;
                let mut stmt_depth = cp;
                for a in stmt.accesses() {
                    let class = ctx.classify(a);
                    *stats.accesses.entry((a.array, class)).or_insert(0) += copies;
                    let lat = match class {
                        AccClass::OnChip => mem::ON_CHIP_LAT,
                        AccClass::DdrSeq => 1,
                        AccClass::DdrRand => mem::RANDOM_LAT,
                    };
                    stmt_depth = stmt_depth.max(cp + lat);
                }
                stats.depth = stats.depth.max(stmt_depth);
                if stmt.carries_on(root_label) {
                    if stmt.is_reduction() {
                        stats.reduction_on_root = true;
                    } else {
                        stats.serial_on_root = true;
                    }
                    stats.chain = stats.chain.max(stmt_depth);
                }
            }
            BodyItem::Call(callee) => {
                if let Some(f) = ctx.kernel.function(callee) {
                    let body: Vec<BodyItem> = f.body().to_vec();
                    unrolled_stats(ctx, &body, copies, root_label, stats);
                }
            }
            BodyItem::Loop(l) => {
                ctx.labels.push(l.label().to_string());
                let mut sub = UnrolledStats::default();
                unrolled_stats(ctx, l.body(), copies * l.trip_count(), l.label(), &mut sub);
                // Merge access counts.
                for (k, v) in sub.accesses {
                    *stats.accesses.entry(k).or_insert(0) += v;
                }
                // The unrolled inner loop contributes depth: a true carried
                // chain serializes its (former) iterations; a reduction
                // costs a combining tree; otherwise it is flat.
                let sub_depth = if sub.serial_on_root {
                    sub.chain.saturating_mul(l.trip_count())
                } else if sub.reduction_on_root {
                    sub.depth + 4 * ilog2_ceil(l.trip_count())
                } else {
                    sub.depth
                };
                stats.depth = stats.depth.max(sub_depth);
                // Carried deps on the *root* label detected inside sub-loops.
                if sub_carries(l, root_label, false) {
                    stats.serial_on_root = true;
                    stats.chain = stats.chain.max(sub_depth.max(1));
                }
                if sub_carries(l, root_label, true) {
                    stats.reduction_on_root = true;
                }
                ctx.labels.pop();
            }
        }
    }
}

/// Whether a body item's subtree carries a true (non-reduction) dependence
/// on `label`, following calls.
fn item_carries(kernel: &Kernel, item: &BodyItem, label: &str) -> bool {
    match item {
        BodyItem::Stmt(s) => s.carries_on(label) && !s.is_reduction(),
        BodyItem::Loop(l) => sub_carries(l, label, false),
        BodyItem::Call(callee) => kernel
            .function(callee)
            .map(|f| f.body().iter().any(|i| item_carries(kernel, i, label)))
            .unwrap_or(false),
    }
}

/// Whether any statement under `l` carries on `label` (reduction or not).
fn sub_carries(l: &Loop, label: &str, reduction: bool) -> bool {
    fn walk(items: &[BodyItem], label: &str, reduction: bool) -> bool {
        items.iter().any(|i| match i {
            BodyItem::Stmt(s) => s.carries_on(label) && s.is_reduction() == reduction,
            BodyItem::Loop(l) => walk(l.body(), label, reduction),
            BodyItem::Call(_) => false,
        })
    }
    walk(l.body(), label, reduction)
}

fn ilog2_ceil(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros() as u64
    }
}

/// Memory-port initiation interval of an fg pipeline with the given
/// per-iteration access profile.
fn memory_ii(ctx: &LatCtx<'_>, stats: &UnrolledStats) -> u64 {
    let mut ii = 1u64;
    for (&(array, class), &cnt) in &stats.accesses {
        let this = match class {
            AccClass::OnChip => {
                let banks = ctx.plan.plan(array).banks.max(1);
                let indirect_penalty = 1; // banked unless gather; gathers have banks 1 anyway
                cnt.div_ceil(mem::PORTS_PER_BANK * banks) * indirect_penalty
            }
            AccClass::DdrSeq => {
                let bits = cnt * ctx.elem_bits(array);
                bits.div_ceil(mem::BUS_BITS)
            }
            AccClass::DdrRand => cnt.saturating_mul(mem::RANDOM_LAT),
        };
        ii = ii.max(this);
    }
    ii
}

/// Carried-dependence class of a loop w.r.t. its own label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CarryKind {
    None,
    Reduction,
    Serial,
}

fn carry_kind(l: &Loop) -> CarryKind {
    if sub_carries(l, l.label(), false) {
        CarryKind::Serial
    } else if sub_carries(l, l.label(), true) {
        CarryKind::Reduction
    } else {
        CarryKind::None
    }
}

fn eval_loop(ctx: &mut LatCtx<'_>, l: &Loop) -> u64 {
    let id = ctx.kernel.loop_by_label(l.label()).expect("indexed loop");
    let set = loop_setting(ctx.space, ctx.point, id);
    let p = u64::from(set.parallel).min(l.trip_count()).max(1);
    let carry = carry_kind(l);
    // Effective sequential trips: a true carried dependence defeats
    // parallelization entirely.
    let eff_trips = match carry {
        CarryKind::Serial => l.trip_count(),
        _ => l.trip_count().div_ceil(p),
    };
    let reduction_epilogue = if p > 1 && carry == CarryKind::Reduction {
        4 * ilog2_ceil(p)
    } else {
        0
    };

    ctx.labels.push(l.label().to_string());
    let mut achieved_ii = 1u64;
    let cycles = match set.pipeline {
        PipelineOpt::Fine => {
            let mut stats = UnrolledStats::default();
            // Body with all sub-loops unrolled; `p` replicas of the body run
            // per II-iteration.
            let body: Vec<BodyItem> = l.body().to_vec();
            unrolled_stats(ctx, &body, p, l.label(), &mut stats);
            let mut ii = memory_ii(ctx, &stats);
            if stats.serial_on_root {
                ii = ii.max(stats.chain.max(1));
            }
            achieved_ii = ii;
            let depth = stats.depth + LOOP_OVERHEAD;
            ii * eff_trips.saturating_sub(1) + depth + reduction_epilogue
        }
        PipelineOpt::Coarse => {
            let stages = eval_stages(ctx, l.body());
            let total: u64 = stages.iter().sum();
            // Stage-level II: stages overlap across iterations, but every
            // stage whose subtree carries a true dependence on this loop must
            // finish before the next iteration's copy starts — a dependence
            // chain *through several stages* serializes their sum, while a
            // dependence confined to one stage only pins the II to that
            // stage's latency.
            let carried_sum: u64 = l
                .body()
                .iter()
                .zip(&stages)
                .filter(|(item, _)| item_carries(ctx.kernel, item, l.label()))
                .map(|(_, &c)| c)
                .sum();
            let max_stage = stages.iter().copied().max().unwrap_or(1);
            let ii = max_stage.max(carried_sum).max(1);
            achieved_ii = ii;
            ii * eff_trips.saturating_sub(1) + total + LOOP_OVERHEAD + reduction_epilogue
        }
        PipelineOpt::Off => {
            let stages = eval_stages(ctx, l.body());
            let body: u64 = stages.iter().sum();
            eff_trips * (body + 1) + LOOP_OVERHEAD + reduction_epilogue
        }
    };
    ctx.labels.pop();

    // Per-tile burst transfers for arrays tile-cached at this loop.
    let mut tile_cycles = 0u64;
    for ap in ctx.plan.plans() {
        if let Placement::TiledCache { tile_loop, per_tile_transfer, num_tiles } = ap.placement {
            if tile_loop == id {
                tile_cycles += per_tile_transfer * num_tiles;
            }
        }
    }
    // Burst setup for DDR streams entered at this loop level.
    let ddr_setup = if l
        .statements()
        .any(|s| s.accesses().iter().any(|a| ctx.classify(a) != AccClass::OnChip))
    {
        mem::BURST_SETUP
    } else {
        0
    };
    let total = cycles + tile_cycles + ddr_setup;
    ctx.reports.push(LoopReport {
        label: l.label().to_string(),
        trip_count: l.trip_count(),
        parallel: set.parallel,
        tile: set.tile,
        pipeline: set.pipeline.as_str().to_string(),
        ii: achieved_ii,
        cycles: total,
    });
    total
}

/// Cycles of each body item, in order (the `cg` pipeline stages).
fn eval_stages(ctx: &mut LatCtx<'_>, items: &[BodyItem]) -> Vec<u64> {
    let mut stages = Vec::new();
    for item in items {
        match item {
            BodyItem::Stmt(s) => stages.push(stmt_seq_cycles(ctx, s)),
            BodyItem::Loop(l) => stages.push(eval_loop(ctx, l)),
            BodyItem::Call(callee) => {
                if let Some(f) = ctx.kernel.function(callee) {
                    let body: Vec<BodyItem> = f.body().to_vec();
                    stages.push(eval_stages(ctx, &body).iter().sum());
                }
            }
        }
    }
    stages
}

/// Total kernel latency in cycles (before tool-noise jitter).
pub fn kernel_cycles(
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    plan: &MemoryPlan,
) -> u64 {
    kernel_cycles_with_report(kernel, space, point, plan).0
}

/// Total kernel latency plus the per-loop report rows, in loop-completion
/// order (innermost loops first).
pub fn kernel_cycles_with_report(
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    plan: &MemoryPlan,
) -> (u64, Vec<LoopReport>) {
    let mut ctx =
        LatCtx { kernel, space, point, plan, labels: Vec::new(), reports: Vec::new() };
    let body: u64 = eval_stages(&mut ctx, kernel.top_function().body()).iter().sum();
    // One-time burst transfers for fully cached interface arrays.
    let transfers: u64 = plan
        .plans()
        .iter()
        .map(|ap| match ap.placement {
            Placement::Cached { transfer_cycles } => transfer_cycles,
            _ => 0,
        })
        .sum();
    (body + transfers + 10, ctx.reports) // +10: kernel invocation overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::plan_memory;
    use design_space::PragmaValue;
    use hls_ir::{kernels, PragmaKind};

    fn cycles_of(kernel: &Kernel, point: &DesignPoint) -> u64 {
        let space = DesignSpace::from_kernel(kernel);
        let plan = plan_memory(kernel, &space, point);
        kernel_cycles(kernel, &space, point, &plan)
    }

    #[test]
    fn default_gemm_latency_scales_with_iterations() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let c = cycles_of(&k, &space.default_point());
        // 64^3 iterations of a ~10-cycle body: must be in the millions.
        assert!(c > 1_000_000, "got {c}");
        assert!(c < 100_000_000, "got {c}");
    }

    #[test]
    fn parallel_reduces_latency() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let base = cycles_of(&k, &space.default_point());
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l1, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(8));
        let par = cycles_of(&k, &p);
        assert!(par < base, "parallel must speed up: {par} !< {base}");
        assert!(par * 4 < base, "8x unroll should give >4x: {par} vs {base}");
    }

    #[test]
    fn fine_pipeline_beats_sequential() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let base = cycles_of(&k, &space.default_point());
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        let piped = cycles_of(&k, &p);
        assert!(piped * 10 < base, "fg pipeline unrolls the dot loop: {piped} vs {base}");
    }

    #[test]
    fn serial_loop_gets_no_parallel_speedup() {
        let k = kernels::nw();
        let space = DesignSpace::from_kernel(&k);
        let base = cycles_of(&k, &space.default_point());
        // L2 carries a true dependence; parallelizing it should not help.
        let l2 = k.loop_by_label("L2").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l2, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(64));
        let par = cycles_of(&k, &p);
        assert!(par as f64 > base as f64 * 0.9, "no real speedup expected: {par} vs {base}");
    }

    #[test]
    fn reduction_parallel_is_legal_and_fast() {
        let k = kernels::gesummv();
        let space = DesignSpace::from_kernel(&k);
        let base = cycles_of(&k, &space.default_point());
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l1, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(50));
        let par = cycles_of(&k, &p);
        assert!((par as f64) < base as f64 / 8.0, "reduction tree should scale: {par} vs {base}");
    }

    #[test]
    fn coarse_pipeline_overlaps_stages() {
        let k = kernels::atax();
        let space = DesignSpace::from_kernel(&k);
        let base = cycles_of(&k, &space.default_point());
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Coarse),
        );
        let cg = cycles_of(&k, &p);
        assert!(cg < base, "cg should overlap the two inner loops: {cg} vs {base}");
    }

    #[test]
    fn latency_is_deterministic() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let p = space.point_at(space.size() / 2);
        assert_eq!(cycles_of(&k, &p), cycles_of(&k, &p));
    }
}
