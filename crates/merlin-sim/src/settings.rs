//! Per-loop effective pragma settings for one design point.

use design_space::{DesignPoint, DesignSpace, PipelineOpt, PragmaValue};
use hls_ir::{Kernel, LoopId};

/// The pragma configuration applied to one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSetting {
    /// Unroll factor (1 = none).
    pub parallel: u32,
    /// Tile factor (1 = none).
    pub tile: u32,
    /// Pipeline mode.
    pub pipeline: PipelineOpt,
}

impl Default for LoopSetting {
    fn default() -> Self {
        Self { parallel: 1, tile: 1, pipeline: PipelineOpt::Off }
    }
}

/// Reads the setting of `loop_id` out of a design point (neutral values for
/// kinds the loop has no slot for).
pub fn loop_setting(space: &DesignSpace, point: &DesignPoint, loop_id: LoopId) -> LoopSetting {
    let mut s = LoopSetting::default();
    for si in space.slots_of_loop(loop_id) {
        match point.value(si) {
            PragmaValue::Parallel(f) => s.parallel = f,
            PragmaValue::Tile(f) => s.tile = f,
            PragmaValue::Pipeline(o) => s.pipeline = o,
        }
    }
    s
}

/// Product of parallel factors along a root-to-leaf loop path, maximized
/// over all paths — the "nest parallelism" the tool refuses when excessive.
pub fn max_nest_parallel(kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> u64 {
    fn walk(
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
        id: LoopId,
        acc: u64,
    ) -> u64 {
        let s = loop_setting(space, point, id);
        let acc = acc * u64::from(s.parallel);
        let info = kernel.loop_info(id);
        if info.children.is_empty() {
            acc
        } else {
            info.children
                .iter()
                .map(|&c| walk(kernel, space, point, c, acc))
                .max()
                .unwrap_or(acc)
        }
    }
    kernel
        .loops()
        .iter()
        .filter(|l| l.parent.is_none())
        .map(|l| walk(kernel, space, point, l.id, 1))
        .max()
        .unwrap_or(1)
}

/// Whether `loop_id`'s subtree (within its function) contains a loop with a
/// data-dependent bound — which makes fine-grained pipelining (full unroll
/// of sub-loops) impossible for Merlin.
pub fn subtree_has_variable_bound(kernel: &Kernel, loop_id: LoopId) -> bool {
    kernel
        .loop_info(loop_id)
        .children
        .iter()
        .any(|&c| kernel.loop_info(c).variable_bound || subtree_has_variable_bound(kernel, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::{kernels, PragmaKind};

    #[test]
    fn default_point_has_neutral_settings() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let p = space.default_point();
        for info in k.loops() {
            assert_eq!(loop_setting(&space, &p, info.id), LoopSetting::default());
        }
    }

    #[test]
    fn settings_read_back() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l0, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(8));
        p.set_value(space.slot_index(l0, PragmaKind::Tile).unwrap(), PragmaValue::Tile(4));
        let s = loop_setting(&space, &p, l0);
        assert_eq!(s.parallel, 8);
        assert_eq!(s.tile, 4);
        assert_eq!(s.pipeline, PipelineOpt::Off);
    }

    #[test]
    fn nest_parallel_multiplies_down_the_nest() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let mut p = space.default_point();
        for label in ["L0", "L1", "L2"] {
            let id = k.loop_by_label(label).unwrap();
            p.set_value(
                space.slot_index(id, PragmaKind::Parallel).unwrap(),
                PragmaValue::Parallel(4),
            );
        }
        assert_eq!(max_nest_parallel(&k, &space, &p), 64);
    }

    #[test]
    fn variable_bound_detected_in_subtree() {
        let k = kernels::spmv_crs();
        let l0 = k.loop_by_label("L0").unwrap();
        let l1 = k.loop_by_label("L1").unwrap();
        assert!(subtree_has_variable_bound(&k, l0));
        assert!(!subtree_has_variable_bound(&k, l1));
    }
}
