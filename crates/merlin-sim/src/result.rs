//! Evaluation results: validity, latency, resources, modelled tool runtime.

use crate::fpga::Fpga;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a configuration failed to synthesize (the classification targets of
/// §4.3.2: timeouts, refused parallelization, infeasible combinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Validity {
    /// Synthesis succeeded.
    Valid,
    /// Synthesis would not finish within the 4-hour budget.
    Timeout,
    /// The tool refused the configuration (e.g. excessive parallel or
    /// partition factors).
    Refused,
    /// Merlin could not apply a transformation (e.g. fine-grained pipelining
    /// over a data-dependent sub-loop bound).
    MerlinError,
}

impl Validity {
    /// `true` only for [`Validity::Valid`].
    pub fn is_valid(self) -> bool {
        self == Validity::Valid
    }
}

impl fmt::Display for Validity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Validity::Valid => "valid",
            Validity::Timeout => "timeout",
            Validity::Refused => "refused",
            Validity::MerlinError => "merlin-error",
        };
        f.write_str(s)
    }
}

/// Absolute resource counts of a synthesized design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceCounts {
    /// DSP slices.
    pub dsp: u64,
    /// 18Kb BRAM units.
    pub bram18: u64,
    /// LUTs.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
}

impl ResourceCounts {
    /// Componentwise accumulation.
    pub fn add(&mut self, other: &ResourceCounts) {
        self.dsp += other.dsp;
        self.bram18 += other.bram18;
        self.lut += other.lut;
        self.ff += other.ff;
    }

    /// Utilization fractions against an FPGA's available resources.
    pub fn utilization(&self, fpga: &Fpga) -> Utilization {
        Utilization {
            dsp: self.dsp as f64 / fpga.dsp as f64,
            bram: self.bram18 as f64 / fpga.bram18 as f64,
            lut: self.lut as f64 / fpga.lut as f64,
            ff: self.ff as f64 / fpga.ff as f64,
        }
    }
}

/// Resource utilization as a fraction of the target FPGA (may exceed 1.0 for
/// designs that do not fit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// DSP fraction.
    pub dsp: f64,
    /// BRAM fraction.
    pub bram: f64,
    /// LUT fraction.
    pub lut: f64,
    /// FF fraction.
    pub ff: f64,
}

impl Utilization {
    /// The largest of the four fractions.
    pub fn max_fraction(&self) -> f64 {
        self.dsp.max(self.bram).max(self.lut).max(self.ff)
    }

    /// Whether every fraction is below `threshold` (the DSE constraint of
    /// eq. 7).
    pub fn fits(&self, threshold: f64) -> bool {
        self.max_fraction() < threshold
    }
}

/// Full result of evaluating one design point with the simulated toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HlsResult {
    /// Synthesis outcome.
    pub validity: Validity,
    /// Execution latency in cycles (meaningful only when valid).
    pub cycles: u64,
    /// Absolute resource counts.
    pub counts: ResourceCounts,
    /// Utilization fractions.
    pub util: Utilization,
    /// Modelled toolchain wall-clock in minutes (what AutoDSE would pay to
    /// evaluate this point with the real HLS tool).
    pub synth_minutes: f64,
}

impl HlsResult {
    /// Shorthand for `self.validity.is_valid()`.
    pub fn is_valid(&self) -> bool {
        self.validity.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_display() {
        assert_eq!(Validity::Valid.to_string(), "valid");
        assert_eq!(Validity::Timeout.to_string(), "timeout");
        assert!(Validity::Valid.is_valid());
        assert!(!Validity::Refused.is_valid());
    }

    #[test]
    fn utilization_math() {
        let c = ResourceCounts { dsp: 684, bram18: 432, lut: 118_224, ff: 236_448 };
        let u = c.utilization(&Fpga::vcu1525());
        assert!((u.dsp - 0.1).abs() < 1e-9);
        assert!((u.bram - 0.1).abs() < 1e-9);
        assert!(u.fits(0.8));
        assert!((u.max_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn oversubscribed_does_not_fit() {
        let c = ResourceCounts { dsp: 20_000, ..ResourceCounts::default() };
        let u = c.utilization(&Fpga::vcu1525());
        assert!(!u.fits(0.8));
        assert!(u.max_fraction() > 1.0);
    }

    #[test]
    fn counts_accumulate() {
        let mut a = ResourceCounts { dsp: 1, bram18: 2, lut: 3, ff: 4 };
        a.add(&ResourceCounts { dsp: 10, bram18: 20, lut: 30, ff: 40 });
        assert_eq!(a, ResourceCounts { dsp: 11, bram18: 22, lut: 33, ff: 44 });
    }
}
