//! # merlin-sim
//!
//! A deterministic analytical model of the Merlin Compiler + Xilinx HLS
//! toolchain — the ground-truth oracle `H(P(theta))` of the GNN-DSE
//! reproduction.
//!
//! Given a kernel ([`hls_ir::Kernel`]) and a pragma configuration
//! ([`design_space::DesignPoint`]), [`MerlinSimulator::evaluate`] returns the
//! design's validity, cycle count, resource counts/utilization, and a
//! modelled toolchain wall-clock. The model reproduces the *mechanisms* the
//! real stack applies:
//!
//! * fine-grained pipelining fully unrolls sub-loops and runs at an II set by
//!   memory ports and recurrences;
//! * coarse-grained pipelining overlaps sub-loop stages;
//! * `parallel` replicates hardware — a real speedup for independent or
//!   reduction loops, useless for true loop-carried dependences;
//! * Merlin's automatic memory optimizations: small interface arrays are
//!   burst-cached on-chip, `tile` creates per-tile caches, unit-stride DDR
//!   accesses coalesce onto the 512-bit bus, indirect gathers do not bank;
//! * invalid configurations are classified as synthesis timeouts, refused
//!   parallelization/partitioning, or Merlin transformation errors.
//!
//! ## Quickstart
//!
//! ```
//! use design_space::DesignSpace;
//! use hls_ir::kernels;
//! use merlin_sim::MerlinSimulator;
//!
//! let kernel = kernels::stencil();
//! let space = DesignSpace::from_kernel(&kernel);
//! let sim = MerlinSimulator::new();
//!
//! let result = sim.evaluate(&kernel, &space, &space.default_point());
//! println!("{} cycles, {} DSPs, valid={}", result.cycles, result.counts.dsp, result.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod fpga;
mod latency;
pub mod memory;
mod oracle;
mod resource;
mod result;
mod settings;
mod sim;
mod walk;

pub use fpga::Fpga;
pub use oracle::{FaultConfig, FaultyOracle, HlsOracle, OracleFailure};
pub use latency::LoopReport;
pub use result::{HlsResult, ResourceCounts, Utilization, Validity};
pub use settings::{loop_setting, LoopSetting};
pub use sim::{
    MerlinSimulator, REFUSE_NEST_PARALLEL, REFUSE_PARTITION, TIMEOUT_MINUTES,
    TIMEOUT_OP_INSTANCES,
};
pub use walk::{total_op_instances, visit_statements, Frame};
