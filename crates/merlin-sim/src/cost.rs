//! Operator and memory cost tables.
//!
//! Latencies and resource footprints approximate Vitis HLS operator
//! characterization at ~250 MHz on UltraScale+: single-precision adders take
//! a few cycles and a couple of DSPs, dividers are long and LUT-hungry,
//! narrow integer math is cheap. Absolute values matter less than their
//! *ratios*, which shape the nonlinear pragma/latency/resource interactions
//! the GNN has to learn.

use hls_ir::{OpMix, ScalarType};
use serde::{Deserialize, Serialize};

/// Latency (cycles) and resource cost of one operator instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Pipeline latency in cycles.
    pub latency: u64,
    /// DSP slices.
    pub dsp: u64,
    /// LUTs.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
}

/// Cost of a floating-point add/sub.
pub fn fadd_cost(ty: ScalarType) -> OpCost {
    if ty == ScalarType::F64 {
        OpCost { latency: 5, dsp: 3, lut: 420, ff: 650 }
    } else {
        OpCost { latency: 4, dsp: 2, lut: 250, ff: 400 }
    }
}

/// Cost of a floating-point multiply.
pub fn fmul_cost(ty: ScalarType) -> OpCost {
    if ty == ScalarType::F64 {
        OpCost { latency: 4, dsp: 8, lut: 220, ff: 330 }
    } else {
        OpCost { latency: 3, dsp: 3, lut: 120, ff: 200 }
    }
}

/// Cost of a floating-point divide.
pub fn fdiv_cost(ty: ScalarType) -> OpCost {
    if ty == ScalarType::F64 {
        OpCost { latency: 28, dsp: 0, lut: 1800, ff: 2800 }
    } else {
        OpCost { latency: 14, dsp: 0, lut: 900, ff: 1400 }
    }
}

/// Cost of an integer add/sub at the given width.
pub fn iadd_cost(ty: ScalarType) -> OpCost {
    let w = u64::from(ty.bit_width());
    OpCost { latency: 1, dsp: 0, lut: w, ff: w }
}

/// Cost of an integer multiply: narrow multipliers fit one DSP, wide ones
/// need three.
pub fn imul_cost(ty: ScalarType) -> OpCost {
    let w = u64::from(ty.bit_width());
    let (latency, dsp) = if w <= 18 { (1, 1) } else { (3, 3) };
    OpCost { latency, dsp, lut: w * 2, ff: w * 2 }
}

/// Cost of a comparison / select.
pub fn cmp_cost(ty: ScalarType) -> OpCost {
    let w = u64::from(ty.bit_width());
    OpCost { latency: 1, dsp: 0, lut: w / 2 + 8, ff: w / 2 }
}

/// Cost of bitwise logic / shift / table-index math.
pub fn logic_cost(ty: ScalarType) -> OpCost {
    let w = u64::from(ty.bit_width());
    OpCost { latency: 1, dsp: 0, lut: w / 2 + 4, ff: w / 4 }
}

/// Aggregate op-instance counts of a statement, element type `ty`,
/// replicated `copies` times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpInstances {
    /// Total operator instances.
    pub count: u64,
    /// Summed resource cost.
    pub dsp: u64,
    /// Summed LUTs.
    pub lut: u64,
    /// Summed FFs.
    pub ff: u64,
    /// Critical-path latency of one statement instance.
    pub critical_path: u64,
}

impl OpInstances {
    /// Accumulates another instance block.
    pub fn add(&mut self, other: &OpInstances) {
        self.count += other.count;
        self.dsp += other.dsp;
        self.lut += other.lut;
        self.ff += other.ff;
        self.critical_path = self.critical_path.max(other.critical_path);
    }
}

/// Expands an [`OpMix`] into operator instances for `copies` replicas.
///
/// The critical path of one statement approximates a balanced expression
/// tree: the slowest operator's latency plus `log2(#ops + 1)` chaining
/// levels.
pub fn expand_ops(ops: &OpMix, ty: ScalarType, copies: u64) -> OpInstances {
    let table: [(u32, OpCost); 7] = [
        (ops.fadd, fadd_cost(ty)),
        (ops.fmul, fmul_cost(ty)),
        (ops.fdiv, fdiv_cost(ty)),
        (ops.iadd, iadd_cost(ty)),
        (ops.imul, imul_cost(ty)),
        (ops.cmp, cmp_cost(ty)),
        (ops.logic, logic_cost(ty)),
    ];
    let mut out = OpInstances::default();
    let mut max_lat = 0u64;
    for (n, cost) in table {
        let n = u64::from(n);
        if n == 0 {
            continue;
        }
        out.count += n * copies;
        out.dsp += n * copies * cost.dsp;
        out.lut += n * copies * cost.lut;
        out.ff += n * copies * cost.ff;
        max_lat = max_lat.max(cost.latency);
    }
    let total = u64::from(ops.total());
    out.critical_path = if total == 0 {
        1
    } else {
        max_lat + (64 - (total + 1).leading_zeros() as u64).max(1)
    };
    out
}

/// Off-chip (DDR/AXI) memory parameters.
pub mod mem {
    /// AXI data bus width in bits (one 512-bit beat per cycle when bursting).
    pub const BUS_BITS: u64 = 512;
    /// Cycles to set up a burst transaction.
    pub const BURST_SETUP: u64 = 40;
    /// Latency of an isolated (non-burst) DDR access.
    pub const RANDOM_LAT: u64 = 60;
    /// Latency of an on-chip (BRAM) access.
    pub const ON_CHIP_LAT: u64 = 2;
    /// Read/write ports per BRAM bank.
    pub const PORTS_PER_BANK: u64 = 2;
    /// Largest interface array (in bits) Merlin fully caches on-chip.
    pub const CACHE_LIMIT_BITS: u64 = 1 << 20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_ops_use_dsps() {
        assert!(fadd_cost(ScalarType::F32).dsp > 0);
        assert!(fmul_cost(ScalarType::F64).dsp > fmul_cost(ScalarType::F32).dsp);
        assert_eq!(fdiv_cost(ScalarType::F32).dsp, 0);
    }

    #[test]
    fn narrow_integer_mul_is_cheap() {
        assert!(imul_cost(ScalarType::I8).dsp < imul_cost(ScalarType::I32).dsp);
        assert!(imul_cost(ScalarType::I8).latency < imul_cost(ScalarType::I32).latency);
    }

    #[test]
    fn expand_scales_with_copies() {
        let mix = OpMix { fadd: 1, fmul: 1, ..OpMix::default() };
        let one = expand_ops(&mix, ScalarType::F32, 1);
        let eight = expand_ops(&mix, ScalarType::F32, 8);
        assert_eq!(eight.count, 8 * one.count);
        assert_eq!(eight.dsp, 8 * one.dsp);
        // Critical path is per-instance, not per-copy.
        assert_eq!(eight.critical_path, one.critical_path);
    }

    #[test]
    fn empty_mix_has_unit_path() {
        let e = expand_ops(&OpMix::default(), ScalarType::F32, 4);
        assert_eq!(e.count, 0);
        assert_eq!(e.critical_path, 1);
    }

    #[test]
    fn critical_path_grows_with_op_count() {
        let small = expand_ops(&OpMix { fadd: 1, ..OpMix::default() }, ScalarType::F32, 1);
        let big = expand_ops(&OpMix { fadd: 15, ..OpMix::default() }, ScalarType::F32, 1);
        assert!(big.critical_path > small.critical_path);
    }
}
