//! The resource model: DSP / BRAM / LUT / FF counts of a configured design.

use crate::cost::expand_ops;
use crate::memory::MemoryPlan;
use crate::result::ResourceCounts;
use crate::settings::loop_setting;
use crate::walk::visit_statements;
use design_space::{DesignPoint, DesignSpace, PipelineOpt};
use hls_ir::{Kernel, ScalarType};

/// Static per-kernel infrastructure (AXI interconnect, control state
/// machine, Merlin runtime glue).
const BASE_LUT: u64 = 40_000;
const BASE_FF: u64 = 50_000;
const BASE_BRAM: u64 = 60;
const BASE_DSP: u64 = 4;

/// Per interface-array AXI master adapter.
const AXI_LUT: u64 = 4_000;
const AXI_FF: u64 = 6_000;
const AXI_BRAM: u64 = 8;

/// Per-loop control logic, extra when pipelined.
const LOOP_LUT: u64 = 150;
const LOOP_FF: u64 = 200;
const PIPE_LUT: u64 = 250;
const PIPE_FF: u64 = 400;

/// Computes resource counts of a design: replicated operators, memory plan
/// BRAMs, per-loop control and static infrastructure.
pub fn kernel_resources(
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    plan: &MemoryPlan,
) -> ResourceCounts {
    let mut counts = ResourceCounts {
        dsp: BASE_DSP,
        bram18: BASE_BRAM,
        lut: BASE_LUT,
        ff: BASE_FF,
    };

    // Operators, replicated by the enclosing unroll factors.
    visit_statements(kernel, space, point, |frames, stmt| {
        let copies: u64 = frames.iter().map(|fr| fr.factor).product();
        let float_ty = stmt
            .accesses()
            .iter()
            .map(|a| kernel.array(a.array).elem())
            .filter(|t| t.is_float())
            .max_by_key(|t| t.bit_width())
            .unwrap_or(ScalarType::F32);
        // Integer/logic ops sized by the widest integer array touched.
        let int_ty = stmt
            .accesses()
            .iter()
            .map(|a| kernel.array(a.array).elem())
            .filter(|t| !t.is_float())
            .max_by_key(|t| t.bit_width())
            .unwrap_or(ScalarType::I32);
        let mut fl = *stmt.ops();
        fl.iadd = 0;
        fl.imul = 0;
        fl.cmp = 0;
        fl.logic = 0;
        let mut int = *stmt.ops();
        int.fadd = 0;
        int.fmul = 0;
        int.fdiv = 0;
        let f = expand_ops(&fl, float_ty, copies);
        let i = expand_ops(&int, int_ty, copies);
        counts.dsp += f.dsp + i.dsp;
        counts.lut += f.lut + i.lut;
        counts.ff += f.ff + i.ff;
    });

    // Memory plan BRAMs.
    counts.bram18 += plan.total_brams();

    // Interface adapters.
    let n_iface = kernel.arrays().iter().filter(|a| a.kind().is_interface()).count() as u64;
    counts.lut += AXI_LUT * n_iface;
    counts.ff += AXI_FF * n_iface;
    counts.bram18 += AXI_BRAM * n_iface;

    // Loop control.
    for info in kernel.loops() {
        let set = loop_setting(space, point, info.id);
        counts.lut += LOOP_LUT;
        counts.ff += LOOP_FF;
        if set.pipeline != PipelineOpt::Off {
            counts.lut += PIPE_LUT;
            counts.ff += PIPE_FF;
        }
    }

    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::plan_memory;
    use design_space::PragmaValue;
    use hls_ir::{kernels, PragmaKind};

    fn resources_of(kernel: &Kernel, point: &DesignPoint) -> ResourceCounts {
        let space = DesignSpace::from_kernel(kernel);
        let plan = plan_memory(kernel, &space, point);
        kernel_resources(kernel, &space, point, &plan)
    }

    #[test]
    fn default_design_is_small() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let c = resources_of(&k, &space.default_point());
        assert!(c.dsp < 100, "got {} DSPs", c.dsp);
        assert!(c.lut < 200_000);
    }

    #[test]
    fn unrolling_multiplies_dsps() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let base = resources_of(&k, &space.default_point());
        let l2 = k.loop_by_label("L2").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l2, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(32));
        let unrolled = resources_of(&k, &p);
        assert!(unrolled.dsp > base.dsp + 100, "32x fmul+fadd: {} vs {}", unrolled.dsp, base.dsp);
    }

    #[test]
    fn partitioning_multiplies_brams() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let base = resources_of(&k, &space.default_point());
        let l2 = k.loop_by_label("L2").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l2, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(64));
        let unrolled = resources_of(&k, &p);
        assert!(unrolled.bram18 > base.bram18, "{} vs {}", unrolled.bram18, base.bram18);
    }

    #[test]
    fn pipelining_adds_control_logic() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let base = resources_of(&k, &space.default_point());
        let l0 = k.loop_by_label("L0").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l0, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(design_space::PipelineOpt::Coarse),
        );
        let piped = resources_of(&k, &p);
        assert!(piped.lut > base.lut);
        assert!(piped.ff > base.ff);
    }
}
