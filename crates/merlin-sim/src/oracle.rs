//! Fault-injecting HLS oracle layer.
//!
//! Real DSE campaigns drive a flaky toolchain: Merlin/HLS invocations crash,
//! hang past their time budget, or emit truncated reports the wrapper cannot
//! parse. The analytical [`MerlinSimulator`] never does any of that, so code
//! built on it is never exercised against failure. This module closes that
//! gap:
//!
//! * [`HlsOracle`] — the common interface over "something that can run HLS".
//!   [`MerlinSimulator`] implements it infallibly; [`FaultyOracle`] wraps any
//!   oracle and injects failures.
//! * [`OracleFailure`] — the failure taxonomy a driver must handle: transient
//!   tool crashes, spurious timeouts, corrupted reports (all retryable), and
//!   fatal environment errors (not retryable).
//! * [`FaultConfig`] — per-failure-mode rates plus a seed.
//!
//! Fault decisions are **stateless**: each `(seed, kernel, point, attempt)`
//! tuple is hashed to a uniform draw, so the same configuration always fails
//! (or succeeds) the same way regardless of evaluation order, interleaving,
//! or process restarts. That property is what lets a checkpoint/resume run
//! replay the exact fault sequence of an uninterrupted run.

use crate::result::HlsResult;
use crate::sim::MerlinSimulator;
use design_space::{DesignPoint, DesignSpace};
use hls_ir::Kernel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One way an HLS invocation can fail before producing a usable report.
///
/// This is *tool-level* failure — distinct from [`crate::Validity`], which
/// classifies designs the tool successfully analysed and rejected. A refused
/// parallel factor is a valid answer; a segfault is not.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleFailure {
    /// The tool process died (segfault, OOM kill, license hiccup).
    /// Transient: a retry may succeed.
    ToolCrash {
        /// Human-readable crash description.
        detail: String,
    },
    /// The invocation exceeded its wall-clock budget for environmental
    /// reasons (loaded machine, stuck NFS), not because the design is a
    /// genuine [`crate::Validity::Timeout`]. Transient.
    SpuriousTimeout,
    /// The tool exited "successfully" but its report was truncated or
    /// garbled and could not be parsed. Transient.
    CorruptReport {
        /// What was wrong with the report.
        detail: String,
    },
    /// A non-recoverable environment error (missing binary, bad install).
    /// Retrying cannot help.
    Fatal {
        /// What is broken.
        detail: String,
    },
}

impl OracleFailure {
    /// Whether a retry of the same invocation could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, OracleFailure::Fatal { .. })
    }

    /// Short stable identifier of the failure mode (for logs and stats).
    pub fn kind(&self) -> &'static str {
        match self {
            OracleFailure::ToolCrash { .. } => "tool-crash",
            OracleFailure::SpuriousTimeout => "spurious-timeout",
            OracleFailure::CorruptReport { .. } => "corrupt-report",
            OracleFailure::Fatal { .. } => "fatal",
        }
    }
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::ToolCrash { detail } => write!(f, "tool crash: {detail}"),
            OracleFailure::SpuriousTimeout => write!(f, "spurious timeout"),
            OracleFailure::CorruptReport { detail } => write!(f, "corrupt report: {detail}"),
            OracleFailure::Fatal { detail } => write!(f, "fatal oracle error: {detail}"),
        }
    }
}

impl std::error::Error for OracleFailure {}

/// Anything that can evaluate a design point through the HLS toolchain.
///
/// `attempt` numbers retries of the *same* point (0 for the first try); a
/// fault-injecting oracle uses it so that retries can draw a different
/// outcome while the overall sequence stays deterministic.
///
/// Oracles are `Send + Sync`: the evaluation harness shares one oracle
/// across a worker pool, so implementations must keep any mutable state
/// behind interior synchronization (the in-tree oracles are plain data
/// and decide faults statelessly from `(seed, point, attempt)`).
pub trait HlsOracle: Send + Sync {
    /// Runs one HLS invocation.
    fn run(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
        attempt: u32,
    ) -> Result<HlsResult, OracleFailure>;

    /// Diagnostic name of the oracle.
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The analytical simulator never fails at tool level.
impl HlsOracle for MerlinSimulator {
    fn run(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
        _attempt: u32,
    ) -> Result<HlsResult, OracleFailure> {
        Ok(self.evaluate(kernel, space, point))
    }

    fn name(&self) -> &'static str {
        "merlin-sim"
    }
}

impl<T: HlsOracle + ?Sized> HlsOracle for &T {
    fn run(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
        attempt: u32,
    ) -> Result<HlsResult, OracleFailure> {
        (**self).run(kernel, space, point, attempt)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Per-failure-mode injection rates (each in `[0, 1]`, summing to at most 1)
/// plus the seed that makes the fault sequence reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability of [`OracleFailure::ToolCrash`] per attempt.
    pub crash_rate: f64,
    /// Probability of [`OracleFailure::SpuriousTimeout`] per attempt.
    pub timeout_rate: f64,
    /// Probability of [`OracleFailure::CorruptReport`] per attempt.
    pub corrupt_rate: f64,
    /// Probability of [`OracleFailure::Fatal`] per attempt.
    pub fatal_rate: f64,
    /// Seed of the deterministic fault stream.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all.
    pub fn none() -> Self {
        FaultConfig { crash_rate: 0.0, timeout_rate: 0.0, corrupt_rate: 0.0, fatal_rate: 0.0, seed: 0 }
    }

    /// Splits one overall fault rate across the transient modes in realistic
    /// proportions (crashes dominate, then timeouts, then garbled reports;
    /// no fatal faults). This is what the CLI's `--fault-rate` maps to.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1], got {rate}");
        FaultConfig {
            crash_rate: rate * 0.5,
            timeout_rate: rate * 0.3,
            corrupt_rate: rate * 0.2,
            fatal_rate: 0.0,
            seed,
        }
    }

    /// Total per-attempt failure probability.
    pub fn total_rate(&self) -> f64 {
        self.crash_rate + self.timeout_rate + self.corrupt_rate + self.fatal_rate
    }

    /// Whether this configuration can ever inject a fault.
    pub fn is_disabled(&self) -> bool {
        self.total_rate() <= 0.0
    }

    /// The fault (if any) injected for this `(kernel, point, attempt)`.
    ///
    /// Pure function of the config and its arguments: no interior state, so
    /// evaluation order and process restarts cannot change the outcome.
    pub fn fault_for(
        &self,
        kernel_name: &str,
        point: &DesignPoint,
        attempt: u32,
    ) -> Option<OracleFailure> {
        if self.is_disabled() {
            return None;
        }
        let draw = unit_draw(self.seed, kernel_name, point, attempt);
        let mut threshold = self.crash_rate;
        if draw < threshold {
            return Some(OracleFailure::ToolCrash {
                detail: format!("merlin_flow exited with signal 11 (attempt {attempt})"),
            });
        }
        threshold += self.timeout_rate;
        if draw < threshold {
            return Some(OracleFailure::SpuriousTimeout);
        }
        threshold += self.corrupt_rate;
        if draw < threshold {
            return Some(OracleFailure::CorruptReport {
                detail: format!("perf report truncated mid-record (attempt {attempt})"),
            });
        }
        threshold += self.fatal_rate;
        if draw < threshold {
            return Some(OracleFailure::Fatal {
                detail: "toolchain install is broken (vivado_hls not found)".to_string(),
            });
        }
        None
    }
}

/// Hashes the fault-decision tuple to a uniform draw in `[0, 1)`.
fn unit_draw(seed: u64, kernel_name: &str, point: &DesignPoint, attempt: u32) -> f64 {
    // FNV-1a over the tuple, then a SplitMix64 finalizer to decorrelate
    // nearby inputs (FNV alone is too linear in its low bits).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(kernel_name.as_bytes());
    eat(&[0xff]); // separator: kernel name cannot bleed into point values
    for v in point.values() {
        eat(v.to_string().as_bytes());
        eat(&[0xfe]);
    }
    eat(&attempt.to_le_bytes());

    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An [`HlsOracle`] wrapper that injects seeded failures around an inner
/// oracle. With a zero-rate [`FaultConfig`] it is a transparent pass-through.
#[derive(Debug, Clone)]
pub struct FaultyOracle<O = MerlinSimulator> {
    inner: O,
    config: FaultConfig,
}

impl<O: HlsOracle> FaultyOracle<O> {
    /// Wraps `inner`, injecting faults per `config`.
    pub fn new(inner: O, config: FaultConfig) -> Self {
        FaultyOracle { inner, config }
    }

    /// The fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: HlsOracle> HlsOracle for FaultyOracle<O> {
    fn run(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
        attempt: u32,
    ) -> Result<HlsResult, OracleFailure> {
        if let Some(failure) = self.config.fault_for(kernel.name(), point, attempt) {
            return Err(failure);
        }
        self.inner.run(kernel, space, point, attempt)
    }

    fn name(&self) -> &'static str {
        "faulty-oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::kernels;

    fn setup() -> (Kernel, DesignSpace) {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        (k, space)
    }

    /// Deterministic spread of points across the space (no rand dependency).
    fn sample(space: &DesignSpace, n: usize, seed: u64) -> Vec<DesignPoint> {
        (0..n as u64)
            .map(|i| {
                let mut z = (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                space.point_at(u128::from(z ^ (z >> 31)) % space.size())
            })
            .collect()
    }

    #[test]
    fn oracles_and_results_are_send_and_sync() {
        // The execution pool shares oracles by reference across worker
        // threads and ships results back over channels; every piece of the
        // oracle stack has to stay plain shareable data.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MerlinSimulator>();
        assert_send_sync::<FaultyOracle<MerlinSimulator>>();
        assert_send_sync::<FaultConfig>();
        assert_send_sync::<HlsResult>();
        assert_send_sync::<OracleFailure>();
        assert_send_sync::<&dyn HlsOracle>();
    }

    #[test]
    fn zero_rate_is_transparent() {
        let (k, space) = setup();
        let sim = MerlinSimulator::new();
        let oracle = FaultyOracle::new(MerlinSimulator::new(), FaultConfig::none());
        let p = space.default_point();
        let direct = sim.evaluate(&k, &space, &p);
        let wrapped = oracle.run(&k, &space, &p, 0).expect("no faults at rate 0");
        assert_eq!(direct.validity, wrapped.validity);
        assert_eq!(direct.cycles, wrapped.cycles);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let (k, space) = setup();
        let cfg = FaultConfig::uniform(0.4, 77);
        let a = FaultyOracle::new(MerlinSimulator::new(), cfg);
        let b = FaultyOracle::new(MerlinSimulator::new(), cfg);
        for (i, p) in sample(&space, 64, 5).iter().enumerate() {
            for attempt in 0..3 {
                let ra = a.run(&k, &space, p, attempt).map_err(|e| e.kind());
                let rb = b.run(&k, &space, p, attempt).map_err(|e| e.kind());
                assert_eq!(
                    ra.as_ref().map(|r| r.cycles),
                    rb.as_ref().map(|r| r.cycles),
                    "divergent outcome at point {i} attempt {attempt}"
                );
                assert_eq!(ra.err(), rb.err());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (k, space) = setup();
        let a = FaultyOracle::new(MerlinSimulator::new(), FaultConfig::uniform(0.5, 1));
        let b = FaultyOracle::new(MerlinSimulator::new(), FaultConfig::uniform(0.5, 2));
        let points = sample(&space, 64, 5);
        let pattern = |o: &FaultyOracle| -> Vec<bool> {
            points.iter().map(|p| o.run(&k, &space, p, 0).is_err()).collect()
        };
        assert_ne!(pattern(&a), pattern(&b), "fault streams should depend on the seed");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let (k, space) = setup();
        let cfg = FaultConfig::uniform(0.3, 9);
        let points = sample(&space, 400, 3);
        let mut failures = 0usize;
        for p in &points {
            if cfg.fault_for(k.name(), p, 0).is_some() {
                failures += 1;
            }
        }
        let rate = failures as f64 / points.len() as f64;
        assert!((0.15..=0.45).contains(&rate), "observed fault rate {rate} far from 0.3");
    }

    #[test]
    fn attempts_redraw_independently() {
        let (k, space) = setup();
        let cfg = FaultConfig::uniform(0.5, 13);
        // Some point that fails on attempt 0 must succeed on a later attempt:
        // that is what makes the failures transient rather than permanent.
        let mut saw_recovery = false;
        for p in sample(&space, 64, 7) {
            if cfg.fault_for(k.name(), &p, 0).is_some()
                && (1..4).any(|a| cfg.fault_for(k.name(), &p, a).is_none())
            {
                saw_recovery = true;
                break;
            }
        }
        assert!(saw_recovery, "retries never recover at rate 0.5 — faults look permanent");
    }

    #[test]
    fn fatal_faults_are_not_retryable() {
        let fatal = OracleFailure::Fatal { detail: "x".into() };
        assert!(!fatal.is_retryable());
        assert!(OracleFailure::SpuriousTimeout.is_retryable());
        assert!(OracleFailure::ToolCrash { detail: "x".into() }.is_retryable());
        assert!(OracleFailure::CorruptReport { detail: "x".into() }.is_retryable());
    }

    #[test]
    fn uniform_split_sums_to_rate() {
        let cfg = FaultConfig::uniform(0.2, 0);
        assert!((cfg.total_rate() - 0.2).abs() < 1e-12);
        assert_eq!(cfg.fatal_rate, 0.0);
    }
}
