//! The public simulator: validity rules, evaluation, tool-runtime model.

use crate::fpga::Fpga;
use crate::latency::{kernel_cycles, kernel_cycles_with_report, LoopReport};
use crate::memory::plan_memory;
use crate::resource::kernel_resources;
use crate::result::{HlsResult, ResourceCounts, Utilization, Validity};
use crate::settings::{loop_setting, max_nest_parallel, subtree_has_variable_bound};
use crate::walk::total_op_instances;
use design_space::{rules, DesignPoint, DesignSpace, PipelineOpt};
use hls_ir::Kernel;

/// Synthesis is declared timed-out (> 4 h) beyond this many replicated
/// operator instances.
pub const TIMEOUT_OP_INSTANCES: u64 = 1 << 17;
/// The tool refuses nests whose combined parallel factor exceeds this.
pub const REFUSE_NEST_PARALLEL: u64 = 4096;
/// The tool refuses array partitioning beyond this many banks.
pub const REFUSE_PARTITION: u64 = 1024;
/// Modelled wall-clock (minutes) of a synthesis that hits the timeout.
pub const TIMEOUT_MINUTES: f64 = 240.0;

/// Deterministic analytical model of the Merlin Compiler + HLS toolchain.
///
/// # Examples
///
/// ```
/// use design_space::DesignSpace;
/// use hls_ir::kernels;
/// use merlin_sim::MerlinSimulator;
///
/// let kernel = kernels::gemm_ncubed();
/// let space = DesignSpace::from_kernel(&kernel);
/// let sim = MerlinSimulator::new();
/// let result = sim.evaluate(&kernel, &space, &space.default_point());
/// assert!(result.is_valid());
/// assert!(result.cycles > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MerlinSimulator {
    fpga: Fpga,
}

impl MerlinSimulator {
    /// Creates a simulator targeting the paper's VCU1525 board.
    pub fn new() -> Self {
        Self { fpga: Fpga::vcu1525() }
    }

    /// Creates a simulator for a custom FPGA target.
    pub fn with_fpga(fpga: Fpga) -> Self {
        Self { fpga }
    }

    /// The FPGA target.
    pub fn fpga(&self) -> &Fpga {
        &self.fpga
    }

    /// Classifies a configuration. Fast structural checks (Merlin errors,
    /// refused factors) come first; the timeout check models synthesis
    /// effort, which grows with replicated operators and netlist size.
    pub fn check_validity(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Validity {
        let point = rules::canonicalize(kernel, space, point);

        // Merlin cannot fully unroll data-dependent sub-loop bounds under fg.
        for info in kernel.loops() {
            let set = loop_setting(space, &point, info.id);
            if set.pipeline == PipelineOpt::Fine && subtree_has_variable_bound(kernel, info.id) {
                return Validity::MerlinError;
            }
        }
        if max_nest_parallel(kernel, space, &point) > REFUSE_NEST_PARALLEL {
            return Validity::Refused;
        }
        let plan = plan_memory(kernel, space, &point);
        if plan.max_banks() > REFUSE_PARTITION {
            return Validity::Refused;
        }
        if total_op_instances(kernel, space, &point) > TIMEOUT_OP_INSTANCES {
            return Validity::Timeout;
        }
        let counts = kernel_resources(kernel, space, &point, &plan);
        if synth_minutes(total_op_instances(kernel, space, &point), plan.total_brams(), &counts)
            >= TIMEOUT_MINUTES
        {
            return Validity::Timeout;
        }
        Validity::Valid
    }

    /// Produces the per-loop synthesis report of a valid design (pragmas
    /// applied, achieved II, per-loop cycles) — the information Vitis HLS's
    /// loop table exposes, useful for explaining *why* a design is fast or
    /// slow.
    ///
    /// Returns `None` for invalid configurations.
    pub fn report(
        &self,
        kernel: &Kernel,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Option<Vec<LoopReport>> {
        let canonical = rules::canonicalize(kernel, space, point);
        if self.check_validity(kernel, space, &canonical) != Validity::Valid {
            return None;
        }
        let plan = plan_memory(kernel, space, &canonical);
        let (_, reports) = kernel_cycles_with_report(kernel, space, &canonical, &plan);
        Some(reports)
    }

    /// Evaluates a design point: validity, cycles, resources, utilization
    /// and the modelled toolchain wall-clock.
    ///
    /// The point is canonicalized first (pragmas under an `fg` pipeline are
    /// ignored), matching the real tool's behaviour.
    pub fn evaluate(&self, kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> HlsResult {
        let canonical = rules::canonicalize(kernel, space, point);
        let validity = self.check_validity(kernel, space, &canonical);
        let instances = total_op_instances(kernel, space, &canonical);

        let result = match validity {
            Validity::Valid => {
                let plan = plan_memory(kernel, space, &canonical);
                let raw_cycles = kernel_cycles(kernel, space, &canonical, &plan);
                let cycles = apply_tool_noise(kernel.name(), &canonical, raw_cycles);
                let counts = kernel_resources(kernel, space, &canonical, &plan);
                let util = counts.utilization(&self.fpga);
                let synth_minutes = synth_minutes(instances, plan.total_brams(), &counts);
                HlsResult { validity, cycles, counts, util, synth_minutes }
            }
            Validity::Timeout => HlsResult {
                validity,
                cycles: 0,
                counts: ResourceCounts::default(),
                util: Utilization::default(),
                synth_minutes: TIMEOUT_MINUTES,
            },
            Validity::Refused | Validity::MerlinError => HlsResult {
                validity,
                cycles: 0,
                counts: ResourceCounts::default(),
                util: Utilization::default(),
                synth_minutes: 10.0,
            },
        };
        gdse_obs::metrics::counter_inc("sim.evals");
        gdse_obs::metrics::gauge_add("sim.modelled_hls_minutes", result.synth_minutes);
        result
    }
}

/// Modelled synthesis wall-clock in minutes, growing with design complexity:
/// replicated operators dominate HLS scheduling time, while huge netlists
/// (DSP/LUT counts several times the device) stall logic synthesis.
fn synth_minutes(op_instances: u64, brams: u64, counts: &ResourceCounts) -> f64 {
    (3.0
        + op_instances as f64 / 600.0
        + brams as f64 / 50.0
        + counts.dsp as f64 / 200.0
        + counts.lut as f64 / 40_000.0)
        .min(TIMEOUT_MINUTES)
}

/// Deterministic +/-4% jitter emulating tool heuristics (placement luck,
/// scheduling tie-breaks) that no analytical model captures.
fn apply_tool_noise(kernel: &str, point: &DesignPoint, cycles: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kernel.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    for v in point.values() {
        let tag = format!("{v}");
        for b in tag.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
    }
    let jitter = (h % 81) as i64 - 40; // in [-40, 40] per-mille
    let adjusted = cycles as i64 + (cycles as i64 * jitter) / 1000;
    adjusted.max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::PragmaValue;
    use hls_ir::{kernels, PragmaKind};

    #[test]
    fn default_points_are_valid_for_all_kernels() {
        let sim = MerlinSimulator::new();
        for k in kernels::all_kernels() {
            let space = DesignSpace::from_kernel(&k);
            let r = sim.evaluate(&k, &space, &space.default_point());
            assert!(r.is_valid(), "{} default invalid: {:?}", k.name(), r.validity);
            assert!(r.cycles > 0);
            assert!(r.util.fits(0.8), "{} default should fit easily", k.name());
        }
    }

    #[test]
    fn fg_over_variable_bound_is_merlin_error() {
        let k = kernels::spmv_crs();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l0, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        let sim = MerlinSimulator::new();
        assert_eq!(sim.evaluate(&k, &space, &p).validity, Validity::MerlinError);
    }

    #[test]
    fn excessive_unroll_times_out() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let mut p = space.default_point();
        for label in ["L0", "L1", "L2"] {
            let id = k.loop_by_label(label).unwrap();
            p.set_value(
                space.slot_index(id, PragmaKind::Parallel).unwrap(),
                PragmaValue::Parallel(64),
            );
        }
        let sim = MerlinSimulator::new();
        let r = sim.evaluate(&k, &space, &p);
        assert!(
            matches!(r.validity, Validity::Timeout | Validity::Refused),
            "64^3-way replication must not synthesize: {:?}",
            r.validity
        );
        assert!(!r.is_valid());
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn loop_report_covers_every_loop() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let mut p = space.default_point();
        let l1 = k.loop_by_label("L1").unwrap();
        p.set_value(
            space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        let report = sim.report(&k, &space, &p).expect("valid design");
        // fg on L1 swallows L2 into its unrolled body, so L2 has no row; L0
        // and L1 do.
        let labels: Vec<&str> = report.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"L0"));
        assert!(labels.contains(&"L1"));
        let l1_row = report.iter().find(|r| r.label == "L1").unwrap();
        assert_eq!(l1_row.pipeline, "fg");
        assert!(l1_row.ii >= 1);
        // The outermost loop's cycles dominate.
        let l0_row = report.iter().find(|r| r.label == "L0").unwrap();
        assert!(l0_row.cycles >= l1_row.cycles);
    }

    #[test]
    fn report_is_none_for_invalid_designs() {
        let k = kernels::spmv_crs();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l0, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        assert!(MerlinSimulator::new().report(&k, &space, &p).is_none());
    }

    #[test]
    fn valid_designs_report_synth_time() {
        let k = kernels::stencil();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let r = sim.evaluate(&k, &space, &space.default_point());
        assert!(r.synth_minutes >= 3.0);
        assert!(r.synth_minutes <= TIMEOUT_MINUTES);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let k = kernels::atax();
        let space = DesignSpace::from_kernel(&k);
        let p = space.point_at(space.size() - 1);
        let sim = MerlinSimulator::new();
        assert_eq!(sim.evaluate(&k, &space, &p), sim.evaluate(&k, &space, &p));
    }

    #[test]
    fn pruned_points_evaluate_like_their_canonical_form() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l0 = k.loop_by_label("L0").unwrap();
        let l2 = k.loop_by_label("L2").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l0, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        let mut q = p.clone();
        q.set_value(space.slot_index(l2, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(8));
        let sim = MerlinSimulator::new();
        assert_eq!(sim.evaluate(&k, &space, &p), sim.evaluate(&k, &space, &q));
    }

    #[test]
    fn good_design_is_much_faster_than_default() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let sim = MerlinSimulator::new();
        let base = sim.evaluate(&k, &space, &space.default_point()).cycles;
        // A sensible expert configuration: fg-pipeline the j loop (unrolls
        // the dot-product), parallelize i by 4.
        let l0 = k.loop_by_label("L0").unwrap();
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(PipelineOpt::Fine),
        );
        p.set_value(space.slot_index(l0, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(4));
        let r = sim.evaluate(&k, &space, &p);
        assert!(r.is_valid());
        assert!(
            r.cycles * 20 < base,
            "expert design should be >20x faster: {} vs {}",
            r.cycles,
            base
        );
    }

    #[test]
    fn jitter_is_small_and_bounded() {
        let base = 1_000_000u64;
        let a = apply_tool_noise("k1", &DesignPoint::new(vec![PragmaValue::Parallel(2)]), base);
        assert!(a >= base - base * 41 / 1000);
        assert!(a <= base + base * 41 / 1000);
    }
}
