//! Execution-tree walking: visits every statement with its enclosing loop
//! context, inlining function calls and applying fine-grained-pipeline
//! unrolling.

use crate::settings::loop_setting;
use design_space::{DesignPoint, DesignSpace, PipelineOpt};
use hls_ir::{BodyItem, Kernel, LoopId, Statement};

/// One enclosing loop on the path to a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The loop.
    pub loop_id: LoopId,
    /// Its source label.
    pub label: String,
    /// Trip count.
    pub trip: u64,
    /// Hardware replication factor at this level: the parallel factor, or
    /// the full trip count when an ancestor's fine-grained pipeline unrolls
    /// this loop completely.
    pub factor: u64,
    /// Whether this loop is fully unrolled by an ancestor's `fg` pipeline.
    pub under_fg: bool,
    /// Tile factor at this level.
    pub tile: u64,
    /// Pipeline mode of this loop.
    pub pipeline: PipelineOpt,
}

impl Frame {
    /// Iterations executed sequentially at this level (trip / factor).
    pub fn seq_trips(&self) -> u64 {
        (self.trip + self.factor - 1) / self.factor.max(1)
    }
}

/// Calls `f` for every statement in execution order with the stack of
/// enclosing [`Frame`]s (outermost first). Function calls are inlined;
/// `fg`-pipelined loops mark their entire subtree `under_fg`, which sets
/// every nested loop's `factor` to its full trip count.
pub fn visit_statements(
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    mut f: impl FnMut(&[Frame], &Statement),
) {
    let mut frames = Vec::new();
    walk_items(kernel, space, point, kernel.top_function().body(), &mut frames, false, &mut f);
}

fn walk_items(
    kernel: &Kernel,
    space: &DesignSpace,
    point: &DesignPoint,
    items: &[BodyItem],
    frames: &mut Vec<Frame>,
    under_fg: bool,
    f: &mut impl FnMut(&[Frame], &Statement),
) {
    for item in items {
        match item {
            BodyItem::Stmt(s) => f(frames, s),
            BodyItem::Call(callee) => {
                if let Some(func) = kernel.function(callee) {
                    walk_items(kernel, space, point, func.body(), frames, under_fg, f);
                }
            }
            BodyItem::Loop(l) => {
                let id = kernel.loop_by_label(l.label()).expect("indexed loop");
                let set = loop_setting(space, point, id);
                let factor =
                    if under_fg { l.trip_count() } else { u64::from(set.parallel).min(l.trip_count()) };
                let child_fg = under_fg || set.pipeline == PipelineOpt::Fine;
                frames.push(Frame {
                    loop_id: id,
                    label: l.label().to_string(),
                    trip: l.trip_count(),
                    factor,
                    under_fg,
                    tile: u64::from(set.tile),
                    pipeline: if under_fg { PipelineOpt::Off } else { set.pipeline },
                });
                walk_items(kernel, space, point, l.body(), frames, child_fg, f);
                frames.pop();
            }
        }
    }
}

/// Total operator instances after replication: each statement's op count
/// times the product of enclosing `factor`s. This is the synthesis
/// "complexity" that drives timeout modelling.
pub fn total_op_instances(kernel: &Kernel, space: &DesignSpace, point: &DesignPoint) -> u64 {
    let mut total = 0u64;
    visit_statements(kernel, space, point, |frames, stmt| {
        let copies: u64 = frames.iter().map(|fr| fr.factor).product();
        total = total.saturating_add(u64::from(stmt.ops().total()).saturating_mul(copies));
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use design_space::{PragmaValue};
    use hls_ir::{kernels, PragmaKind};

    #[test]
    fn default_point_has_unit_factors() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let p = space.default_point();
        let mut seen = 0;
        visit_statements(&k, &space, &p, |frames, _| {
            seen += 1;
            assert!(frames.iter().all(|f| f.factor == 1));
        });
        assert_eq!(seen, 2); // dot_acc and c_store
    }

    #[test]
    fn fg_unrolls_subtree() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let l1 = k.loop_by_label("L1").unwrap();
        let mut p = space.default_point();
        p.set_value(
            space.slot_index(l1, PragmaKind::Pipeline).unwrap(),
            PragmaValue::Pipeline(design_space::PipelineOpt::Fine),
        );
        visit_statements(&k, &space, &p, |frames, stmt| {
            if stmt.name() == "dot_acc" {
                let l2 = frames.last().unwrap();
                assert!(l2.under_fg);
                assert_eq!(l2.factor, 64, "L2 fully unrolled under fg L1");
            }
        });
    }

    #[test]
    fn calls_are_inlined() {
        let k = kernels::aes();
        let space = DesignSpace::from_kernel(&k);
        let p = space.default_point();
        let mut names = Vec::new();
        visit_statements(&k, &space, &p, |frames, stmt| {
            names.push((stmt.name().to_string(), frames.len()));
        });
        assert!(names.contains(&("sub_shift_mix".to_string(), 2)));
    }

    #[test]
    fn op_instances_scale_with_parallel() {
        let k = kernels::gemm_ncubed();
        let space = DesignSpace::from_kernel(&k);
        let base = total_op_instances(&k, &space, &space.default_point());
        let l2 = k.loop_by_label("L2").unwrap();
        let mut p = space.default_point();
        p.set_value(space.slot_index(l2, PragmaKind::Parallel).unwrap(), PragmaValue::Parallel(8));
        let unrolled = total_op_instances(&k, &space, &p);
        assert!(unrolled > 4 * base, "8x unroll of the hot statement dominates");
    }
}
